#!/usr/bin/env python
"""Regenerate (and optionally re-pin) the committed sample traces.

The sample trace files under ``src/repro/traces/data/`` are a pure
function of the :data:`repro.traces.library.SAMPLE_TRACES` registry —
seeded content, gzip mtime pinned to zero — so this tool can rebuild
them byte-for-byte at any time.  Run it after changing the registry or
the generator, then commit both the files and the refreshed hash pins::

    PYTHONPATH=src python tools/gen_traces.py --pin

``--check`` instead verifies every committed file on disk against its
pinned hash and exits non-zero on drift (used by the trace-smoke CI
job).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.traces.library import (  # noqa: E402
    SAMPLE_TRACES,
    ensure_sample_trace,
    sample_trace_path,
)
from repro.traces.source import trace_content_sha256  # noqa: E402

LIBRARY_PY = Path(__file__).resolve().parents[1] / "src/repro/traces/library.py"


def regenerate(
    names: list[str], force: bool, verify: bool = True
) -> dict[str, str]:
    hashes: dict[str, str] = {}
    for name in names:
        path = sample_trace_path(name)
        if force and path.exists():
            path.unlink()
        path = ensure_sample_trace(name, verify=verify)
        hashes[name] = trace_content_sha256(path)
        print(f"{name:>14}  {hashes[name]}  {path.name}")
    return hashes


def pin(hashes: dict[str, str]) -> None:
    """Rewrite the ``sha256=`` pins in library.py's registry literals."""
    text = LIBRARY_PY.read_text()
    for name, digest in hashes.items():
        pattern = re.compile(
            r'(SampleTrace\(\s*"%s",[^)]*?)(?:,\s*sha256="[0-9a-f]*")?\s*\)'
            % re.escape(name),
            re.DOTALL,
        )
        replacement = r'\1, sha256="%s")' % digest
        text, count = pattern.subn(replacement, text)
        if count != 1:
            raise SystemExit(f"could not pin {name} in {LIBRARY_PY}")
    LIBRARY_PY.write_text(text)
    print(f"pinned {len(hashes)} hash(es) into {LIBRARY_PY}")


def check(names: list[str]) -> int:
    bad = 0
    for name in names:
        sample = SAMPLE_TRACES[name]
        path = sample_trace_path(name)
        if not path.exists():
            print(f"{name:>14}  MISSING  {path}")
            bad += 1
            continue
        actual = trace_content_sha256(path)
        if sample.sha256 and actual != sample.sha256:
            print(f"{name:>14}  DRIFT  {actual} != pinned {sample.sha256}")
            bad += 1
        else:
            print(f"{name:>14}  ok  {actual}")
    return bad


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*", help="samples (default: committed)")
    parser.add_argument(
        "--all", action="store_true", help="include non-committed samples"
    )
    parser.add_argument(
        "--force", action="store_true", help="regenerate even if present"
    )
    parser.add_argument(
        "--pin", action="store_true", help="rewrite sha256 pins in library.py"
    )
    parser.add_argument(
        "--check", action="store_true", help="verify files against pins"
    )
    args = parser.parse_args(argv)

    names = args.names or [
        n
        for n, s in SAMPLE_TRACES.items()
        if s.committed or args.all
    ]
    for name in names:
        if name not in SAMPLE_TRACES:
            parser.error(
                f"unknown sample {name!r} "
                f"(known: {', '.join(sorted(SAMPLE_TRACES))})"
            )

    if args.check:
        return 1 if check(names) else 0
    # When re-pinning, the on-file pins may be stale by construction, so
    # skip the generator/registry cross-check until the pins are rewritten.
    hashes = regenerate(names, force=args.force, verify=not args.pin)
    if args.pin:
        pin({n: h for n, h in hashes.items() if SAMPLE_TRACES[n].committed})
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
