"""Figure 12 — batching discipline: static vs empty-slot vs full batching.

Sweeps time-based static batching over the paper's durations plus eslot
and full batching on a mix set including Case Studies I and II.  Expected
shape (paper): very small static durations degenerate to FR-FCFS-like
unfairness (most requests marked -> no batch boundary), very large
durations also eliminate batching; full batching gives the best average
fairness and throughput.
"""

import os

from conftest import run_once

from repro.experiments.ablations import batching_choice_sweep


def test_fig12_batching_choice(benchmark, runner4):
    durations = [400, 1600, 3200, 12800, 25600]
    count = max(1, int(os.environ.get("REPRO_WORKLOADS", "4")) // 2)
    result = run_once(
        benchmark,
        lambda: batching_choice_sweep(durations=durations, count=count, runner=runner4),
    )
    print()
    print(result.report("Figure 12: batching choice"))

    summary = result.summary()
    for vals in summary.values():
        assert vals["unfairness"] >= 1.0
        assert vals["wspeedup"] > 0
    # Empty-slot batching admits late arrivals into the current batch, so
    # it cannot lose throughput relative to full batching.
    assert summary["eslot"]["wspeedup"] >= 0.95 * summary["full"]["wspeedup"]
    # Full batching's starvation-freedom bounds its worst-case latency at
    # or below the static variants' (which give no strict guarantee).
    full_wc = max(r.worst_case_latency for r in result.variants["full"])
    static_wc = max(
        r.worst_case_latency
        for label, results in result.variants.items()
        if label.startswith("st-")
        for r in results
    )
    assert full_wc <= 1.3 * static_wc
    # NOTE (recorded in EXPERIMENTS.md): the paper's *average* fairness
    # advantage of full batching over well-tuned static durations does not
    # reproduce at this substrate scale — with shallow per-bank queues the
    # batch-boundary miss penalty outweighs the capture effects batching
    # prevents; the per-thread effects (streaming-thread punishment by
    # eslot/static) are visible in the case-study slowdowns.
