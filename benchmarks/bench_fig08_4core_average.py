"""Figure 8 — 4-core aggregate: unfairness and throughput over many mixes.

Runs the ten sample mixes from the figure plus ``REPRO_WORKLOADS``
pseudo-random category-balanced mixes (paper: 100) and reports
geometric-mean unfairness and weighted/hmean speedup per scheduler.
Expected shape (paper): FR-FCFS most unfair; the QoS schedulers (NFQ,
STFM, PAR-BS) cluster at much lower unfairness with PAR-BS/STFM ahead on
throughput.
"""

from conftest import bench_workloads, run_once

from repro.experiments.aggregate import run_aggregate


def test_fig8_4core_average(benchmark, runner4):
    count = bench_workloads(4)
    result = run_once(
        benchmark,
        lambda: run_aggregate(4, count=count, runner=runner4, include_sample_mixes=True),
    )
    print()
    print(result.report())

    summary = result.summary()
    assert summary["PAR-BS"]["unfairness"] < summary["FR-FCFS"]["unfairness"]
    assert summary["STFM"]["unfairness"] < summary["FR-FCFS"]["unfairness"]
    # Throughput: PAR-BS comparable to the best previous scheduler.
    best_prev = max(
        summary[s]["wspeedup"] for s in ("FR-FCFS", "FCFS", "NFQ", "STFM")
    )
    assert summary["PAR-BS"]["wspeedup"] > 0.93 * best_prev
