"""Figure 9 — the 8-core mixed workload.

mcf + xml-parser + cactusADM + astar + hmmer + h264ref + gromacs + bzip2
(3 intensive + 5 non-intensive; only mcf has very high bank-level
parallelism).  Expected shape (paper): every previous scheduler slows mcf
heavily because its concurrent accesses get serialized by interference
from seven other threads; PAR-BS preserves mcf's parallelism and achieves
the best fairness and throughput.
"""

from conftest import run_once

from repro.experiments.case_studies import run_case_study


def test_fig9_8core_mix(benchmark, runner8):
    result = run_once(
        benchmark, lambda: run_case_study("fig9_8core_mix", runner=runner8)
    )
    print()
    print(result.report())

    mcf = {name: r.slowdowns()[0] for name, r in result.results.items()}
    unf = {name: r.unfairness for name, r in result.results.items()}
    assert mcf["PAR-BS"] <= mcf["NFQ"] + 0.1
    assert mcf["PAR-BS"] <= mcf["STFM"] + 0.1
    assert unf["PAR-BS"] < 1.25 * min(unf["STFM"], unf["NFQ"])
