"""Table 3: alone-run characterization of all 28 benchmarks.

Regenerates the paper's benchmark-characterization table from the
calibrated synthetic traces.  Expected shape: MPKI tracks the published
values closely; row-buffer hit rates and BLP match their targets within
the calibration tolerance; AST/req separates low-MLP (high AST) from
high-MLP (low AST) benchmarks.
"""

from conftest import run_once

from repro.experiments.characterization import run_characterization
from repro.workloads.profiles import PROFILES, profile


def test_table3_characterization(benchmark, runner4):
    result = run_once(benchmark, lambda: run_characterization(runner=runner4))
    print()
    print(result.report())

    measured = {p.name: stats for p, stats, _ in result.rows}
    # The BLP dichotomy must be preserved: the highest-BLP benchmark (mcf)
    # measures well above the lowest (gromacs/matlab).
    assert measured["mcf"].blp > 2.5 * measured["gromacs"].blp
    # Row-locality dichotomy: libquantum streams, GemsFDTD does not.
    assert measured["libquantum"].row_hit_rate > 0.85
    assert measured["GemsFDTD"].row_hit_rate < 0.45
    # Intensity ordering: matlab is the most intensive benchmark.
    assert measured["matlab"].mcpi == max(s.mcpi for s in measured.values())
