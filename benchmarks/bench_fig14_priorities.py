"""Figure 14 — system-level thread priorities and opportunistic service.

Left: four lbm copies with PAR-BS priorities 1-1-2-8 vs NFQ/STFM weights
8-8-4-1.  Right: omnetpp prioritized while libquantum/milc/astar receive
purely opportunistic service (PAR-BS) or weight-1 service vs weight 8192
(NFQ/STFM).  Expected shape (paper): every scheduler respects the
ordering; PAR-BS serves the high-priority threads best (it preserves their
bank-level parallelism), and its opportunistic mode gives the critical
thread nearly its alone-run performance.
"""

from conftest import run_once

from repro.experiments.priorities import run_opportunistic, run_weighted_lbm


def test_fig14_weighted_lbm(benchmark, runner4):
    result = run_once(benchmark, lambda: run_weighted_lbm(runner=runner4))
    print()
    print(result.report())

    parbs = result.slowdowns("PAR-BS-pri-1-1-2-8")
    # Priority ordering respected: level 1 < level 2 < level 8 slowdowns.
    assert max(parbs[0], parbs[1]) < parbs[2] < parbs[3]
    # PAR-BS's high-priority copies beat the weighted NFQ/STFM equivalents.
    nfq = result.slowdowns("NFQ-shares-8-8-4-1")
    stfm = result.slowdowns("STFM-weights-8-8-4-1")
    assert min(parbs[0], parbs[1]) <= 1.1 * min(nfq[0], nfq[1])
    assert min(parbs[0], parbs[1]) <= 1.1 * min(stfm[0], stfm[1])


def test_fig14_opportunistic(benchmark, runner4):
    result = run_once(benchmark, lambda: run_opportunistic(runner=runner4))
    print()
    print(result.report())

    parbs = result.slowdowns("PAR-BS-L-L-0-L")
    # The critical thread (omnetpp, index 2) runs nearly undisturbed.
    assert parbs[2] < 1.3
    assert parbs[2] == min(parbs)
    # PAR-BS serves the critical thread at least as well as the
    # large-weight approximations in NFQ/STFM.
    assert parbs[2] <= 1.1 * result.slowdowns("NFQ-1-1-8K-1")[2]
    assert parbs[2] <= 1.1 * result.slowdowns("STFM-1-1-8K-1")[2]
