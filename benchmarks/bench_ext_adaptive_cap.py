"""Extension — adaptive Marking-Cap (the paper's future-work suggestion).

Section 8.3.1 notes "it is possible to improve our mechanism by making the
Marking-Cap adaptive."  This bench compares the self-tuning cap
(:class:`repro.core.batcher.AdaptiveCapBatcher`) against fixed caps 1 and
5 and the uncapped scheduler over a small mix set.  Expected shape: the
adaptive cap tracks the fixed sweet spot (no worse than a few percent on
fairness and throughput) without per-workload tuning.
"""

import os

from conftest import run_once

from repro.experiments.ablations import SweepResult, _mix_set
from repro.experiments.reporting import format_table


def test_ext_adaptive_marking_cap(benchmark, runner4):
    count = max(1, int(os.environ.get("REPRO_WORKLOADS", "4")) // 2)

    def run():
        mixes = _mix_set(count, include_case_studies=True, seed=42)
        variants = {
            "c=1": [runner4.run_workload(m, "PAR-BS", marking_cap=1) for m in mixes],
            "c=5": [runner4.run_workload(m, "PAR-BS", marking_cap=5) for m in mixes],
            "no-c": [runner4.run_workload(m, "PAR-BS", marking_cap=None) for m in mixes],
            "adaptive": [
                runner4.run_workload(m, "PAR-BS", batching="adaptive") for m in mixes
            ],
        }
        return SweepResult(variants=variants, mixes=mixes)

    result = run_once(benchmark, run)
    summary = result.summary()
    print()
    print(
        format_table(
            ["variant", "unfairness", "wspeedup", "hspeedup"],
            [
                [label, v["unfairness"], v["wspeedup"], v["hspeedup"]]
                for label, v in summary.items()
            ],
            title="Extension: adaptive Marking-Cap",
        )
    )

    # The adaptive cap must stay competitive with the best fixed setting.
    best_ws = max(v["wspeedup"] for v in summary.values())
    best_unf = min(v["unfairness"] for v in summary.values())
    assert summary["adaptive"]["wspeedup"] >= 0.93 * best_ws
    assert summary["adaptive"]["unfairness"] <= 1.25 * best_unf
