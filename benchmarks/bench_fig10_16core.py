"""Figure 10 — 16-core aggregate.

Runs 16-core mixes (two of the figure's named mixes plus random ones) and
reports geometric-mean unfairness and throughput.  Expected shape (paper):
the DRAM system becomes a bigger bottleneck at 16 cores; STFM and PAR-BS
remain far fairer than FR-FCFS/FCFS/NFQ, with PAR-BS best on both metrics.
"""

from conftest import bench_workloads, run_once

from repro.experiments.aggregate import run_aggregate


def test_fig10_16core_average(benchmark, runner16):
    count = bench_workloads(16)
    result = run_once(
        benchmark,
        lambda: run_aggregate(16, count=count, runner=runner16),
    )
    print()
    print(result.report())

    summary = result.summary()
    # At the default mix count the 16-core sample is statistically thin
    # (the paper used 12 mixes); assert the robust shapes only.
    assert summary["PAR-BS"]["unfairness"] < max(
        summary["FR-FCFS"]["unfairness"], summary["FCFS"]["unfairness"]
    )
    best_prev = max(
        summary[s]["wspeedup"] for s in ("FR-FCFS", "FCFS", "NFQ", "STFM")
    )
    assert summary["PAR-BS"]["wspeedup"] > 0.9 * best_prev
    # Batching keeps the worst-case latency bounded at 16 cores.
    assert summary["PAR-BS"]["wc_latency"] < 1.5 * summary["STFM"]["wc_latency"]
