"""Figure 6 — Case Study II: non-intensive 4-core workload.

matlab + h264ref + omnetpp + hmmer (only omnetpp has high bank-level
parallelism).  Expected shape (paper): PAR-BS is the only scheduler that
does not significantly penalize the high-BLP thread (omnetpp) and achieves
the best fairness; under PAR-BS the least intensive thread (h264ref) is
the one slowed most, but less than under other schedulers' worst cases.
"""

from conftest import run_once

from repro.experiments.case_studies import run_case_study


def test_fig6_case_study_2(benchmark, runner4):
    result = run_once(
        benchmark, lambda: run_case_study("fig6_case_study_2", runner=runner4)
    )
    print()
    print(result.report())

    omnetpp = {name: r.slowdowns()[2] for name, r in result.results.items()}
    unf = {name: r.unfairness for name, r in result.results.items()}
    # PAR-BS keeps omnetpp's slowdown lower than NFQ does (parallelism
    # restoration, paper Section 8.1.2).
    assert omnetpp["PAR-BS"] <= omnetpp["NFQ"] + 0.1
    # PAR-BS fairness beats STFM's on this workload.
    assert unf["PAR-BS"] <= 1.1 * unf["STFM"]
