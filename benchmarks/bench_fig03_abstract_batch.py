"""Figure 3: within-batch scheduling in the abstract cost model.

Regenerates the FCFS / FR-FCFS / PAR-BS batch-completion-time comparison.
Expected shape: PAR-BS < FR-FCFS < FCFS average completion time, with the
spread-out thread (Thread 1) finishing in exactly one latency unit under
PAR-BS.
"""

from conftest import run_once

from repro.experiments.abstract_fig3 import run_fig3


def test_fig3_abstract_batch(benchmark):
    result = run_once(benchmark, run_fig3)
    print()
    print(result.report())
    fcfs = result.schedules["fcfs"].average_completion
    frfcfs = result.schedules["fr-fcfs"].average_completion
    parbs = result.schedules["par-bs"].average_completion
    assert parbs < frfcfs < fcfs
