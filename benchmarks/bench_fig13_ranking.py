"""Figure 13 — within-batch scheduling ablations.

Compares Max-Total (PAR-BS) against Total-Max, random and round-robin
rankings and against rank-free FR-FCFS/FCFS within batches (batching
without parallelism-awareness), plus STFM for reference — on random mixes
and on the two homogeneous workloads of the figure (4x lbm, 4x matlab).
Expected shape (paper): the shortest-job-first rankings (Max-Total,
Total-Max) beat random/round-robin and no-rank on throughput; the
parallelism benefit is large for the high-BLP workload (4x lbm) and
negligible for the low-BLP one (4x matlab).
"""

import os

from conftest import run_once

from repro.experiments.ablations import ranking_scheme_sweep


def test_fig13_within_batch_ranking(benchmark, runner4):
    count = max(1, int(os.environ.get("REPRO_WORKLOADS", "4")) // 2)
    extra = [["lbm"] * 4, ["matlab"] * 4]
    result = run_once(
        benchmark,
        lambda: ranking_scheme_sweep(count=count, runner=runner4, extra_mixes=extra),
    )
    print()
    print(result.report("Figure 13: within-batch ranking (all mixes)"))
    print("\n4x lbm hmean speedups:")
    for variant in result.variants:
        r = result.variants[variant][0]
        print(f"  {variant:<18} {r.hmean_speedup:.3f}")

    summary = result.summary()
    sjf = summary["max-total(PAR-BS)"]["hspeedup"]
    # Shortest-job-first ranking sustains throughput vs the non-SJF
    # alternatives (paper: 5.7%-9.8% better than random/round-robin).
    assert sjf >= 0.97 * summary["total-max"]["hspeedup"]
    assert sjf >= summary["random"]["hspeedup"] * 0.98
    # Parallelism-awareness matters on the high-BLP homogeneous workload.
    lbm_par = result.variants["max-total(PAR-BS)"][0].weighted_speedup
    lbm_norank = result.variants["no-rank(FCFS)"][0].weighted_speedup
    assert lbm_par > 0.98 * lbm_norank
