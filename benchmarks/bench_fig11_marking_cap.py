"""Figure 11 — effect of Marking-Cap on PAR-BS.

Sweeps the cap over the paper's x-axis (1..10, 20, no cap) on a mix set
including Case Studies I and II.  Expected shape (paper): very small caps
destroy row-buffer locality (worst throughput, streaming threads like
libquantum/matlab slowed hardest); throughput recovers by cap ≈ 5; very
large / no cap drifts back toward FR-FCFS-like unfairness.
"""

import os

from conftest import run_once

from repro.experiments.ablations import marking_cap_sweep


def test_fig11_marking_cap(benchmark, runner4):
    caps = [1, 2, 3, 5, 8, 10, 20, None]
    count = max(1, int(os.environ.get("REPRO_WORKLOADS", "4")) // 2)
    result = run_once(
        benchmark,
        lambda: marking_cap_sweep(caps=caps, count=count, runner=runner4),
    )
    print()
    print(result.report("Figure 11: Marking-Cap sweep"))
    print("\nCase Study I slowdowns (cap=1 vs cap=5):")
    for cap in ("c=1", "c=5"):
        print(f"  {cap}: {result.case_slowdowns(cap, 0)}")

    summary = result.summary()
    # Cap 1 punishes the streaming thread (libquantum, Case Study I): its
    # row streaks are chopped at every (tiny) batch boundary.
    libq_tight = result.case_slowdowns("c=1", 0)["libquantum"]
    libq_five = result.case_slowdowns("c=5", 0)["libquantum"]
    assert libq_tight > libq_five
    # Beyond the point where the cap stops binding the sweep converges to
    # the uncapped behaviour.
    assert abs(summary["c=20"]["wspeedup"] - summary["no-c"]["wspeedup"]) < 0.05
    # NOTE (recorded in EXPERIMENTS.md): with this substrate's shallower
    # per-bank queues the paper's aggregate throughput *minimum* at cap 1
    # does not reproduce — the locality loss is visible per-thread (above)
    # but not in average weighted speedup.
