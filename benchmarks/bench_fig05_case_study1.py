"""Figure 5 — Case Study I: memory-intensive 4-core workload.

libquantum + mcf + GemsFDTD + xalancbmk under the five schedulers.
Expected shape (paper): FR-FCFS is the most unfair (it favors the
streaming thread libquantum); the QoS-aware schedulers reduce unfairness;
PAR-BS hurts mcf — the thread with the highest bank-level parallelism —
least among the QoS schedulers.
"""

from conftest import run_once

from repro.experiments.case_studies import run_case_study


def test_fig5_case_study_1(benchmark, runner4):
    result = run_once(
        benchmark, lambda: run_case_study("fig5_case_study_1", runner=runner4)
    )
    print()
    print(result.report())

    unf = {name: r.unfairness for name, r in result.results.items()}
    mcf = {name: r.slowdowns()[1] for name, r in result.results.items()}
    # QoS schedulers are fairer than (or comparable to) FR-FCFS.
    assert unf["PAR-BS"] < 1.2 * unf["FR-FCFS"]
    assert unf["STFM"] < 1.2 * unf["FR-FCFS"]
    # PAR-BS protects mcf's bank-level parallelism best among QoS schedulers.
    assert mcf["PAR-BS"] <= mcf["NFQ"] + 0.1
    assert mcf["PAR-BS"] <= mcf["STFM"] + 0.1
