"""Shared fixtures for the reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper and
prints a paper-vs-measured report.  Scales are sized for a laptop; raise
them to tighten statistics:

* ``REPRO_BENCH_INSTRUCTIONS`` — instructions per thread (default 100 000;
  the paper simulates 150 M).
* ``REPRO_WORKLOADS`` — random mixes per aggregate experiment (paper: 100
  4-core / 16 8-core / 12 16-core).

Alone-run baselines are cached per core count across all benchmarks in the
session, and persistently on disk across sessions (``REPRO_CACHE_DIR``;
``REPRO_CACHE=0`` disables).  Set ``REPRO_JOBS=N`` to fan independent
simulations out over N worker processes.
"""

from __future__ import annotations

import pytest

from repro.config import baseline_system
from repro.envknobs import read_int, read_optional_int
from repro.sim.diskcache import GLOBAL_STATS
from repro.sim.pool import default_jobs
from repro.sim.runner import ExperimentRunner


def bench_instructions() -> int:
    return read_int("REPRO_BENCH_INSTRUCTIONS", 100_000, floor=20_000)


def bench_workloads(num_cores: int) -> int:
    env = read_optional_int("REPRO_WORKLOADS", floor=1)
    if env is not None:
        return env
    return {4: 8, 8: 3, 16: 2}[num_cores]


@pytest.fixture(scope="session")
def runner4() -> ExperimentRunner:
    return ExperimentRunner(
        baseline_system(4), instructions=bench_instructions(), jobs=default_jobs()
    )


@pytest.fixture(scope="session")
def runner8() -> ExperimentRunner:
    return ExperimentRunner(
        baseline_system(8), instructions=bench_instructions(), jobs=default_jobs()
    )


@pytest.fixture(scope="session")
def runner16() -> ExperimentRunner:
    return ExperimentRunner(
        baseline_system(16), instructions=bench_instructions(), jobs=default_jobs()
    )


def pytest_terminal_summary(terminalreporter) -> None:
    """Report how much work the persistent simulation cache saved."""
    stats = dict(GLOBAL_STATS)
    if any(stats.values()):
        terminalreporter.write_line(
            "repro disk cache: {hits} hits, {misses} misses, "
            "{writes} writes".format(**stats)
        )


def run_once(benchmark, func):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
