"""Table 4 — cross-system summary (4/8/16 cores).

Geometric-mean unfairness, weighted/hmean speedup, AST/req and worst-case
request latency per scheduler and system size, plus the PAR-BS-vs-STFM
deltas the paper headlines.  Expected shape (paper): PAR-BS provides the
best fairness and throughput at every core count, the lowest AST/req, and
a far lower worst-case latency than the other QoS schedulers (batching
bounds request deferral).
"""

from conftest import bench_workloads, run_once

from repro.experiments.aggregate import run_aggregate
from repro.experiments.summary import Table4Result


def test_table4_summary(benchmark, runner4, runner8, runner16):
    def run():
        aggregates = {
            4: run_aggregate(4, count=bench_workloads(4), runner=runner4),
            8: run_aggregate(8, count=bench_workloads(8), runner=runner8),
            16: run_aggregate(16, count=bench_workloads(16), runner=runner16),
        }
        return Table4Result(aggregates=aggregates)

    result = run_once(benchmark, run)
    print()
    print(result.report())

    # The 16-core row is statistically thin at default mix counts (the
    # paper used 12 mixes); assert the robust shapes on 4 and 8 cores and
    # the latency bound everywhere.
    for cores in (4, 8):
        summary = result.aggregates[cores].summary()
        assert summary["PAR-BS"]["unfairness"] < summary["FR-FCFS"]["unfairness"]
    for cores in (4, 8, 16):
        summary = result.aggregates[cores].summary()
        # Batching bounds worst-case latency relative to the other QoS
        # schedulers (paper: 1.46X-2.26X lower than STFM).
        assert (
            summary["PAR-BS"]["wc_latency"]
            < 1.5 * min(summary["STFM"]["wc_latency"], summary["NFQ"]["wc_latency"])
        )
