"""Table 1 — additional hardware state of a PAR-BS implementation.

Reproduces the bit-count accounting of Section 6: for the paper's example
configuration (8-core CMP, 128-entry request buffer, 8 banks) the extra
state beyond FR-FCFS — marked bits, thread ranks/ids, ranking counters and
the Marking-Cap register — totals exactly 1412 bits.
"""

from conftest import run_once

from repro.core.hardware import hardware_cost


def test_table1_hardware_cost(benchmark):
    cost = run_once(benchmark, lambda: hardware_cost(8, 128, 8))
    print()
    print("Table 1 (8 cores, 128-entry buffer, 8 banks):")
    print(cost.breakdown())
    assert cost.total_bits == 1412  # exact paper value

    print("\nScaling with system size:")
    for threads, buffer_size, banks in ((4, 128, 8), (8, 128, 8), (16, 128, 8)):
        c = hardware_cost(threads, buffer_size, banks)
        print(f"  {threads:2d} cores: {c.total_bits} bits")
