"""Simulator-throughput microbenchmark (not a paper artifact).

Measures raw simulation speed — processed events per second and simulated
DRAM cycles per second — on a fixed 4-core workload (the paper's Case
Study I mix) so hot-path optimizations can be compared across commits.
Emits one JSON object so results are machine-diffable::

    PYTHONPATH=src python benchmarks/bench_simrate.py
    PYTHONPATH=src python benchmarks/bench_simrate.py --scheduler FR-FCFS \
        --instructions 50000
    PYTHONPATH=src python benchmarks/bench_simrate.py --backend fast
    PYTHONPATH=src python benchmarks/bench_simrate.py --backend fast --profile

``--backend`` selects the simulation backend (``python`` reference object
model or the ``fast`` flat-array kernel — bit-identical event trajectories,
so the deterministic event/cycle counts must agree).  ``--profile`` wraps
the measured run in :mod:`cProfile` and writes a cumtime-sorted report next
to the baseline JSON.

The committed throughput baseline lives in ``BENCH_simrate.json`` at the
repository root: per-scheduler events/sec and simulated cycles/sec for all
five policies, per backend, plus the fast-backend speedup gate
(``fast_gate``).  Two maintenance modes operate on it::

    # refresh the baseline (run on the reference machine after perf work)
    PYTHONPATH=src python benchmarks/bench_simrate.py --update-baseline

    # regression gate: fail if any scheduler's events/sec drops more than
    # --tolerance (default 20%) below the committed baseline, or the fast
    # backend falls under fast_gate (min_ratio x the frozen reference)
    PYTHONPATH=src python benchmarks/bench_simrate.py --check

Baselines are machine-specific; the check is meant to catch large
algorithmic regressions, hence the generous default tolerance.  The
``fast_gate`` reference numbers are different: they are the *frozen*
python-backend throughput of the commit that introduced the fast backend,
a ratchet that ``--update-baseline`` never rewrites — the fast backend
must stay ``min_ratio`` times faster than the simulator it replaced, not
merely faster than last week's build.

Also runs under pytest (``pytest benchmarks/bench_simrate.py``) as a
smoke check that throughput is measurable and sane.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.config import baseline_system
from repro.experiments.paper_values import SCHEDULERS
from repro.sim.factory import make_scheduler
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_simrate.json"

# Case Study I (Figure 5): one streaming thread, one high-BLP thread and
# two mid-intensity threads — exercises every scheduler code path.
WORKLOAD = ("libquantum", "mcf", "GemsFDTD", "xalancbmk")

# Fast-backend speedup ratchet.  ``reference`` is the python-backend
# events/sec of the pre-fast-backend build on the reference machine,
# frozen forever; the fast backend must sustain ``min_ratio`` times these
# numbers — per policy, since the policies stress different code paths
# (``min_ratio`` may also be a single number applied to every policy).
# Shared-path optimizations that also speed the python backend raise the
# rolling per-backend baselines above but never loosen this gate.
# Throughput is counted in *logical* events (processed + elided): the
# fast backend coalesces provably no-op bank wakes instead of dispatching
# them, and the logical count is what matches the reference trajectory.
FAST_GATE = {
    "reference": {
        "FR-FCFS": 128361.8,
        "FCFS": 131606.7,
        "NFQ": 117118.1,
        "STFM": 83539.8,
        "PAR-BS": 104806.4,
    },
    # Floors sit ~20% under the best-of-4 ratios measured on the
    # reference machine (FR-FCFS 3.7x, FCFS 3.5x, PAR-BS 3.6x, STFM 3.1x,
    # NFQ 2.9x) so CI noise cannot flake the gate; ratchet them upward as
    # the kernels improve.  The 10x roadmap target needs a compiled
    # arbitration core — see ROADMAP.md.
    "min_ratio": {
        "FR-FCFS": 3.0,
        "FCFS": 2.8,
        "NFQ": 2.3,
        "STFM": 2.4,
        "PAR-BS": 2.9,
    },
}


def measure(
    scheduler: str = "PAR-BS",
    instructions: int = 100_000,
    seed: int = 0,
    backend: str = "python",
    profile_path: Path | None = None,
) -> dict:
    """Run the fixed workload once and report throughput numbers.

    With ``profile_path``, the measured run executes under
    :mod:`cProfile` and a cumtime-sorted report is written there (the
    wall-clock numbers then include profiling overhead — use them to read
    *where* time goes, not how much).
    """
    config = baseline_system(len(WORKLOAD))
    # cache_dir=None: measure simulation speed, not cache hits.
    runner = ExperimentRunner(
        config, instructions=instructions, seed=seed, cache_dir=None
    )
    traces = [runner.trace_for(b) for b in WORKLOAD]
    system = System(
        config,
        make_scheduler(scheduler, len(WORKLOAD)),
        traces,
        repeat=True,
        backend=backend,
    )
    if profile_path is not None:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        start = time.perf_counter()
        profiler.enable()
        sim_cycles = system.run()
        profiler.disable()
        wall = time.perf_counter() - start
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(40)
        stats.sort_stats("tottime").print_stats(25)
        profile_path.write_text(stream.getvalue())
    else:
        start = time.perf_counter()
        sim_cycles = system.run()
        wall = time.perf_counter() - start
    # Logical events: what the reference trajectory dispatches.  The fast
    # backend processes fewer (it elides provably no-op bank wakes), so
    # counting logical events keeps ``events`` backend-invariant and makes
    # events/sec measure simulation throughput, not dispatch-loop spin.
    events = system.events_logical
    return {
        "workload": list(WORKLOAD),
        "scheduler": scheduler,
        "backend": backend,
        "instructions_per_thread": instructions,
        "events": events,
        "events_processed": system.events_processed,
        "events_elided": system.events_elided,
        "sim_cycles": sim_cycles,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "sim_cycles_per_sec": sim_cycles / wall if wall > 0 else 0.0,
    }


def run_all(
    instructions: int = 100_000,
    seed: int = 0,
    repeats: int = 3,
    backend: str = "python",
) -> dict[str, dict]:
    """Best-of-``repeats`` measurement for every paper scheduler."""
    results: dict[str, dict] = {}
    for scheduler in SCHEDULERS:
        best: dict | None = None
        for _ in range(repeats):
            result = measure(scheduler, instructions, seed, backend)
            if best is None or result["events_per_sec"] > best["events_per_sec"]:
                best = result
        results[scheduler] = best
    return results


def update_baseline(
    path: Path = BASELINE_PATH,
    instructions: int = 100_000,
    seed: int = 0,
    repeats: int = 3,
) -> dict:
    """Measure every scheduler on both backends and (re)write the committed
    baseline file.  ``fast_gate`` is re-emitted verbatim from
    :data:`FAST_GATE` — the ratchet is code, not measurement.

    Every refresh also appends one entry to the baseline's ``history``
    array, so the committed file carries the throughput trend across
    refreshes, not just the latest numbers.  Entries are deliberately
    date-less (a wall-clock date would churn diffs and says nothing a
    ``git log`` of the file doesn't): each holds a monotone ``run``
    counter plus the per-policy events/sec of both backends.
    """
    history: list[dict] = []
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = {}
        history = [
            entry
            for entry in previous.get("history", [])
            if isinstance(entry, dict) and "run" in entry
        ]
    next_run = max((entry["run"] for entry in history), default=0) + 1
    payload = {
        "workload": list(WORKLOAD),
        "instructions_per_thread": instructions,
        "seed": seed,
        "repeats": repeats,
        "backends": {},
        "fast_gate": FAST_GATE,
    }
    history_entry: dict = {"run": next_run}
    for backend in ("python", "fast"):
        results = run_all(instructions, seed, repeats, backend)
        payload["backends"][backend] = {
            "schedulers": {
                name: {
                    "events": r["events"],
                    "sim_cycles": r["sim_cycles"],
                    "events_per_sec": round(r["events_per_sec"], 1),
                    "sim_cycles_per_sec": round(r["sim_cycles_per_sec"], 1),
                }
                for name, r in results.items()
            }
        }
        history_entry[backend] = {
            name: round(r["events_per_sec"], 1) for name, r in results.items()
        }
    history.append(history_entry)
    payload["history"] = history
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_baseline(
    path: Path = BASELINE_PATH,
    tolerance: float = 0.20,
    repeats: int = 3,
    backends: list[str] | None = None,
) -> int:
    """Regression gate against the committed baseline.

    Fails (non-zero return) if any scheduler's measured events/sec falls
    more than ``tolerance`` below its backend's baseline, or — when the
    fast backend is checked — if FR-FCFS/PAR-BS fast throughput falls
    under ``fast_gate`` (``min_ratio`` times the frozen pre-fast-backend
    reference).  Simulated event and cycle counts are deterministic, so a
    drift there is reported too — it means behaviour changed and the
    baseline needs a refresh, not that the machine is slow.
    """
    baseline = json.loads(path.read_text())
    selected = backends if backends is not None else list(baseline["backends"])
    failures: list[str] = []
    measured: dict[str, dict[str, dict]] = {}
    for backend in selected:
        ref_schedulers = baseline["backends"][backend]["schedulers"]
        results = run_all(
            baseline["instructions_per_thread"], baseline["seed"], repeats, backend
        )
        measured[backend] = results
        for name, ref in ref_schedulers.items():
            got = results[name]
            floor = ref["events_per_sec"] * (1.0 - tolerance)
            status = "ok"
            if got["events_per_sec"] < floor:
                status = "REGRESSION"
                failures.append(
                    f"{backend}/{name}: {got['events_per_sec']:.0f} events/sec "
                    f"is below {floor:.0f} (baseline {ref['events_per_sec']:.0f} "
                    f"- {tolerance:.0%})"
                )
            print(
                f"{backend:6s} {name:8s} {got['events_per_sec']:>10.0f} "
                f"events/sec (baseline {ref['events_per_sec']:>10.0f})  {status}"
            )
            if got["events"] != ref["events"] or got["sim_cycles"] != ref["sim_cycles"]:
                print(
                    f"{backend:6s} {name:8s} note: simulated work changed "
                    f"(events {ref['events']} -> {got['events']}, cycles "
                    f"{ref['sim_cycles']} -> {got['sim_cycles']}); refresh the "
                    "baseline if intended"
                )
    gate = baseline.get("fast_gate")
    if gate and "fast" in measured:
        min_ratio = gate["min_ratio"]
        for name, reference in gate["reference"].items():
            # Per-policy ratios (dict) with a scalar fallback for older
            # baseline files.
            ratio = (
                min_ratio.get(name, 0.0)
                if isinstance(min_ratio, dict)
                else min_ratio
            )
            floor = reference * ratio
            got = measured["fast"][name]["events_per_sec"]
            status = "ok" if got >= floor else "GATE FAIL"
            print(
                f"gate   {name:8s} {got:>10.0f} events/sec "
                f"(needs {floor:>10.0f} = {ratio:g}x frozen {reference:.0f})  "
                f"{status}"
            )
            if got < floor:
                failures.append(
                    f"fast_gate/{name}: {got:.0f} events/sec is under the "
                    f"{ratio:g}x ratchet ({floor:.0f}, frozen python "
                    f"reference {reference:.0f})"
                )
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_simrate_smoke() -> None:
    """Throughput is measurable and the run did real work."""
    result = measure(instructions=30_000)
    print()
    print(json.dumps(result, indent=2))
    assert result["events"] > 10_000
    assert result["sim_cycles"] > 10_000
    assert result["events_per_sec"] > 0
    assert result["sim_cycles_per_sec"] > 0


def test_fast_backend_simrate_matches_python() -> None:
    """The fast backend does the same simulated work (bit-identical event
    trajectory), so its deterministic counters must equal the python run's."""
    reference = measure(instructions=30_000, backend="python")
    fast = measure(instructions=30_000, backend="fast")
    assert fast["events"] == reference["events"]
    assert fast["sim_cycles"] == reference["sim_cycles"]


def test_probe_overhead_within_gate() -> None:
    """The disabled observability layer must cost (almost) nothing.

    Every instrumentation site guards on a ``None`` probe, so with tracing
    off the simulation must do exactly the baseline's work (deterministic
    event/cycle counts unchanged) at a throughput inside the committed
    regression gate.  Best-of-3 to shake scheduler-noise out of the wall
    clock, same discipline as ``--check``.
    """
    baseline = json.loads(BASELINE_PATH.read_text())
    ref = baseline["backends"]["python"]["schedulers"]["PAR-BS"]
    instructions = baseline["instructions_per_thread"]
    best: dict | None = None
    for _ in range(3):
        result = measure("PAR-BS", instructions, baseline["seed"])
        if best is None or result["events_per_sec"] > best["events_per_sec"]:
            best = result
    # Probes off ⇒ behaviour bit-identical to the committed baseline.
    assert best["events"] == ref["events"], (
        "event count drifted with tracing disabled — probes are not "
        "zero-overhead no-ops"
    )
    assert best["sim_cycles"] == ref["sim_cycles"]
    # And throughput stays inside the standard 20% regression gate.
    floor = ref["events_per_sec"] * 0.8
    assert best["events_per_sec"] >= floor, (
        f"{best['events_per_sec']:.0f} events/sec under tracing-disabled "
        f"floor {floor:.0f}"
    )


def test_metrics_probe_overhead_within_gate() -> None:
    """The metrics registry must be invisible to the simulation hot path.

    Metrics default *on*, so the committed baseline already includes
    whatever they cost — the enabled run must sit inside the standard
    20% regression gate.  Turning them off may change nothing but the
    probe: every site then holds exactly ``None`` (one ``is not None``
    test, zero added per-event branches), so the deterministic
    event/cycle counts must be bit-identical between the two runs and
    against the committed baseline.
    """
    import os

    from repro.obs.metrics import metrics_from_env, reset_metrics

    baseline = json.loads(BASELINE_PATH.read_text())
    ref = baseline["backends"]["python"]["schedulers"]["PAR-BS"]
    instructions = baseline["instructions_per_thread"]

    def best_of(repeats: int) -> dict:
        best: dict | None = None
        for _ in range(repeats):
            result = measure("PAR-BS", instructions, baseline["seed"])
            if best is None or result["events_per_sec"] > best["events_per_sec"]:
                best = result
        return best

    saved = os.environ.pop("REPRO_METRICS", None)
    try:
        assert metrics_from_env() is not None  # default: on
        enabled = best_of(3)
        os.environ["REPRO_METRICS"] = "0"
        assert metrics_from_env() is None  # probe-or-None: exactly None
        disabled = best_of(3)
    finally:
        if saved is None:
            os.environ.pop("REPRO_METRICS", None)
        else:
            os.environ["REPRO_METRICS"] = saved
        reset_metrics()
    # Off is bit-identical to on, and both match the committed baseline.
    for key in ("events", "events_processed", "events_elided", "sim_cycles"):
        assert disabled[key] == enabled[key], (
            f"{key} drifted when metrics were disabled — a probe is doing "
            "work beyond the None check"
        )
    assert enabled["events"] == ref["events"]
    assert enabled["sim_cycles"] == ref["sim_cycles"]
    # Metrics-enabled throughput stays inside the standard 20% gate.
    floor = ref["events_per_sec"] * 0.8
    assert enabled["events_per_sec"] >= floor, (
        f"{enabled['events_per_sec']:.0f} events/sec under metrics-enabled "
        f"floor {floor:.0f}"
    )


def test_progress_hook_overhead_within_gate() -> None:
    """The work-queue heartbeat hook must be invisible to the hot path.

    Lease heartbeats ride the simulator's existing watchdog checkpoint:
    with no hook installed the added cost is one module-global ``None``
    test every ``_WATCHDOG_CHECK_EVENTS`` processed events, and with a
    hook installed the callback fires at that same checkpoint cadence —
    never per event.  Both runs must do bit-identical simulated work
    (the hook observes, it cannot steer) and stay inside the standard
    20% regression gate; a long enough run must actually fire the hook.
    """
    from repro.sim import pool
    from repro.sim.system import _WATCHDOG_CHECK_EVENTS

    baseline = json.loads(BASELINE_PATH.read_text())
    ref = baseline["backends"]["python"]["schedulers"]["PAR-BS"]
    instructions = baseline["instructions_per_thread"]

    def best_of(repeats: int) -> dict:
        best: dict | None = None
        for _ in range(repeats):
            result = measure("PAR-BS", instructions, baseline["seed"])
            if best is None or result["events_per_sec"] > best["events_per_sec"]:
                best = result
        return best

    unhooked = best_of(3)
    ticks: list[int] = []
    with pool.sim_progress(ticks.append):
        hooked = best_of(3)
    # Hooked and unhooked do identical simulated work, matching baseline.
    for key in ("events", "events_processed", "events_elided", "sim_cycles"):
        assert hooked[key] == unhooked[key], (
            f"{key} drifted with a progress hook installed — the hook is "
            "doing work beyond observing"
        )
    assert unhooked["events"] == ref["events"]
    assert unhooked["sim_cycles"] == ref["sim_cycles"]
    # The callback fires once per watchdog checkpoint, no more.
    assert len(ticks) == 3 * (hooked["events"] // _WATCHDOG_CHECK_EVENTS)
    # Hooked throughput stays inside the standard 20% gate.
    floor = ref["events_per_sec"] * 0.8
    assert hooked["events_per_sec"] >= floor, (
        f"{hooked['events_per_sec']:.0f} events/sec under progress-hook "
        f"floor {floor:.0f}"
    )
    # And a run past the checkpoint interval genuinely heartbeats.
    watchdog_instructions = _WATCHDOG_CHECK_EVENTS
    ticks.clear()
    with pool.sim_progress(ticks.append):
        long_run = measure("PAR-BS", watchdog_instructions, baseline["seed"])
    assert long_run["events"] >= _WATCHDOG_CHECK_EVENTS
    assert ticks, "progress hook never fired past the watchdog interval"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scheduler", default="PAR-BS")
    parser.add_argument("--instructions", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument(
        "--backend",
        choices=("python", "fast"),
        default=None,
        help="simulation backend to measure (default: python; with --check, "
        "restricts the gate to one backend instead of checking both)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the measurement under cProfile and write a cumtime-sorted "
        "report next to the baseline JSON (single-measure mode only)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--update-baseline",
        action="store_true",
        help="measure all schedulers on both backends and rewrite the "
        "committed baseline (fast_gate stays frozen)",
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="fail if events/sec regresses past --tolerance vs the baseline "
        "or the fast backend falls under fast_gate",
    )
    args = parser.parse_args(argv)
    if args.profile and (args.update_baseline or args.check):
        parser.error("--profile applies to single-measure mode only")
    if args.update_baseline:
        payload = update_baseline(
            args.baseline, args.instructions, args.seed, args.repeats
        )
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    if args.check:
        backends = [args.backend] if args.backend is not None else None
        return check_baseline(args.baseline, args.tolerance, args.repeats, backends)
    backend = args.backend or "python"
    profile_path = None
    if args.profile:
        safe = args.scheduler.replace("/", "_")
        profile_path = args.baseline.with_name(
            f"BENCH_simrate.{safe}.{backend}.profile.txt"
        )
    result = measure(
        args.scheduler, args.instructions, args.seed, backend, profile_path
    )
    json.dump(result, sys.stdout, indent=2)
    print()
    if profile_path is not None:
        print(f"profile written to {profile_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
