"""Simulator-throughput microbenchmark (not a paper artifact).

Measures raw simulation speed — processed events per second and simulated
DRAM cycles per second — on a fixed 4-core workload (the paper's Case
Study I mix) so hot-path optimizations can be compared across commits.
Emits one JSON object so results are machine-diffable::

    PYTHONPATH=src python benchmarks/bench_simrate.py
    PYTHONPATH=src python benchmarks/bench_simrate.py --scheduler FR-FCFS \
        --instructions 50000

The committed throughput baseline lives in ``BENCH_simrate.json`` at the
repository root: per-scheduler events/sec and simulated cycles/sec for all
five policies.  Two maintenance modes operate on it::

    # refresh the baseline (run on the reference machine after perf work)
    PYTHONPATH=src python benchmarks/bench_simrate.py --update-baseline

    # regression gate: fail if any scheduler's events/sec drops more than
    # --tolerance (default 20%) below the committed baseline
    PYTHONPATH=src python benchmarks/bench_simrate.py --check

Baselines are machine-specific; the check is meant to catch large
algorithmic regressions, hence the generous default tolerance.

Also runs under pytest (``pytest benchmarks/bench_simrate.py``) as a
smoke check that throughput is measurable and sane.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.config import baseline_system
from repro.experiments.paper_values import SCHEDULERS
from repro.sim.factory import make_scheduler
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_simrate.json"

# Case Study I (Figure 5): one streaming thread, one high-BLP thread and
# two mid-intensity threads — exercises every scheduler code path.
WORKLOAD = ("libquantum", "mcf", "GemsFDTD", "xalancbmk")


def measure(
    scheduler: str = "PAR-BS",
    instructions: int = 100_000,
    seed: int = 0,
) -> dict:
    """Run the fixed workload once and report throughput numbers."""
    config = baseline_system(len(WORKLOAD))
    # cache_dir=None: measure simulation speed, not cache hits.
    runner = ExperimentRunner(
        config, instructions=instructions, seed=seed, cache_dir=None
    )
    traces = [runner.trace_for(b) for b in WORKLOAD]
    system = System(
        config, make_scheduler(scheduler, len(WORKLOAD)), traces, repeat=True
    )
    start = time.perf_counter()
    sim_cycles = system.run()
    wall = time.perf_counter() - start
    events = system.events_processed
    return {
        "workload": list(WORKLOAD),
        "scheduler": scheduler,
        "instructions_per_thread": instructions,
        "events": events,
        "sim_cycles": sim_cycles,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "sim_cycles_per_sec": sim_cycles / wall if wall > 0 else 0.0,
    }


def run_all(
    instructions: int = 100_000, seed: int = 0, repeats: int = 3
) -> dict[str, dict]:
    """Best-of-``repeats`` measurement for every paper scheduler."""
    results: dict[str, dict] = {}
    for scheduler in SCHEDULERS:
        best: dict | None = None
        for _ in range(repeats):
            result = measure(scheduler, instructions, seed)
            if best is None or result["events_per_sec"] > best["events_per_sec"]:
                best = result
        results[scheduler] = best
    return results


def update_baseline(
    path: Path = BASELINE_PATH,
    instructions: int = 100_000,
    seed: int = 0,
    repeats: int = 3,
) -> dict:
    """Measure all schedulers and (re)write the committed baseline file."""
    results = run_all(instructions, seed, repeats)
    payload = {
        "workload": list(WORKLOAD),
        "instructions_per_thread": instructions,
        "seed": seed,
        "repeats": repeats,
        "schedulers": {
            name: {
                "events": r["events"],
                "sim_cycles": r["sim_cycles"],
                "events_per_sec": round(r["events_per_sec"], 1),
                "sim_cycles_per_sec": round(r["sim_cycles_per_sec"], 1),
            }
            for name, r in results.items()
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_baseline(
    path: Path = BASELINE_PATH, tolerance: float = 0.20, repeats: int = 3
) -> int:
    """Regression gate against the committed baseline.

    Fails (non-zero return) if any scheduler's measured events/sec falls
    more than ``tolerance`` below the baseline.  Simulated event and cycle
    counts are deterministic, so a drift there is reported too — it means
    behaviour changed and the baseline needs a refresh, not that the
    machine is slow.
    """
    baseline = json.loads(path.read_text())
    results = run_all(
        baseline["instructions_per_thread"], baseline["seed"], repeats
    )
    failures: list[str] = []
    for name, ref in baseline["schedulers"].items():
        got = results[name]
        floor = ref["events_per_sec"] * (1.0 - tolerance)
        status = "ok"
        if got["events_per_sec"] < floor:
            status = "REGRESSION"
            failures.append(
                f"{name}: {got['events_per_sec']:.0f} events/sec is below "
                f"{floor:.0f} (baseline {ref['events_per_sec']:.0f} "
                f"- {tolerance:.0%})"
            )
        print(
            f"{name:8s} {got['events_per_sec']:>10.0f} events/sec "
            f"(baseline {ref['events_per_sec']:>10.0f})  {status}"
        )
        if got["events"] != ref["events"] or got["sim_cycles"] != ref["sim_cycles"]:
            print(
                f"{name:8s} note: simulated work changed "
                f"(events {ref['events']} -> {got['events']}, cycles "
                f"{ref['sim_cycles']} -> {got['sim_cycles']}); refresh the "
                "baseline if intended"
            )
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_simrate_smoke() -> None:
    """Throughput is measurable and the run did real work."""
    result = measure(instructions=30_000)
    print()
    print(json.dumps(result, indent=2))
    assert result["events"] > 10_000
    assert result["sim_cycles"] > 10_000
    assert result["events_per_sec"] > 0
    assert result["sim_cycles_per_sec"] > 0


def test_probe_overhead_within_gate() -> None:
    """The disabled observability layer must cost (almost) nothing.

    Every instrumentation site guards on a ``None`` probe, so with tracing
    off the simulation must do exactly the baseline's work (deterministic
    event/cycle counts unchanged) at a throughput inside the committed
    regression gate.  Best-of-3 to shake scheduler-noise out of the wall
    clock, same discipline as ``--check``.
    """
    baseline = json.loads(BASELINE_PATH.read_text())
    ref = baseline["schedulers"]["PAR-BS"]
    instructions = baseline["instructions_per_thread"]
    best: dict | None = None
    for _ in range(3):
        result = measure("PAR-BS", instructions, baseline["seed"])
        if best is None or result["events_per_sec"] > best["events_per_sec"]:
            best = result
    # Probes off ⇒ behaviour bit-identical to the committed baseline.
    assert best["events"] == ref["events"], (
        "event count drifted with tracing disabled — probes are not "
        "zero-overhead no-ops"
    )
    assert best["sim_cycles"] == ref["sim_cycles"]
    # And throughput stays inside the standard 20% regression gate.
    floor = ref["events_per_sec"] * 0.8
    assert best["events_per_sec"] >= floor, (
        f"{best['events_per_sec']:.0f} events/sec under tracing-disabled "
        f"floor {floor:.0f}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scheduler", default="PAR-BS")
    parser.add_argument("--instructions", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--tolerance", type=float, default=0.20)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--update-baseline",
        action="store_true",
        help="measure all schedulers and rewrite the committed baseline",
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="fail if events/sec regresses past --tolerance vs the baseline",
    )
    args = parser.parse_args(argv)
    if args.update_baseline:
        payload = update_baseline(
            args.baseline, args.instructions, args.seed, args.repeats
        )
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    if args.check:
        return check_baseline(args.baseline, args.tolerance, args.repeats)
    result = measure(args.scheduler, args.instructions, args.seed)
    json.dump(result, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
