"""Simulator-throughput microbenchmark (not a paper artifact).

Measures raw simulation speed — processed events per second and simulated
DRAM cycles per second — on a fixed 4-core workload (the paper's Case
Study I mix) so hot-path optimizations can be compared across commits.
Emits one JSON object so results are machine-diffable::

    PYTHONPATH=src python benchmarks/bench_simrate.py
    PYTHONPATH=src python benchmarks/bench_simrate.py --scheduler FR-FCFS \
        --instructions 50000

Also runs under pytest (``pytest benchmarks/bench_simrate.py``) as a
smoke check that throughput is measurable and sane.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import baseline_system
from repro.sim.factory import make_scheduler
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System

# Case Study I (Figure 5): one streaming thread, one high-BLP thread and
# two mid-intensity threads — exercises every scheduler code path.
WORKLOAD = ("libquantum", "mcf", "GemsFDTD", "xalancbmk")


def measure(
    scheduler: str = "PAR-BS",
    instructions: int = 100_000,
    seed: int = 0,
) -> dict:
    """Run the fixed workload once and report throughput numbers."""
    config = baseline_system(len(WORKLOAD))
    # cache_dir=None: measure simulation speed, not cache hits.
    runner = ExperimentRunner(
        config, instructions=instructions, seed=seed, cache_dir=None
    )
    traces = [runner.trace_for(b) for b in WORKLOAD]
    system = System(
        config, make_scheduler(scheduler, len(WORKLOAD)), traces, repeat=True
    )
    start = time.perf_counter()
    sim_cycles = system.run()
    wall = time.perf_counter() - start
    events = system.events_processed
    return {
        "workload": list(WORKLOAD),
        "scheduler": scheduler,
        "instructions_per_thread": instructions,
        "events": events,
        "sim_cycles": sim_cycles,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "sim_cycles_per_sec": sim_cycles / wall if wall > 0 else 0.0,
    }


def test_simrate_smoke() -> None:
    """Throughput is measurable and the run did real work."""
    result = measure(instructions=30_000)
    print()
    print(json.dumps(result, indent=2))
    assert result["events"] > 10_000
    assert result["sim_cycles"] > 10_000
    assert result["events_per_sec"] > 0
    assert result["sim_cycles_per_sec"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scheduler", default="PAR-BS")
    parser.add_argument("--instructions", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    result = measure(args.scheduler, args.instructions, args.seed)
    json.dump(result, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
