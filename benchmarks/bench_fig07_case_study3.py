"""Figure 7 — Case Study III: four identical copies of lbm.

With identical threads, every scheduler is (nearly) perfectly fair; the
schedulers differ only in throughput.  Expected shape (paper): PAR-BS has
the best weighted/hmean speedup because it services each copy's requests
in parallel; NFQ is worst because its deadline balancing interleaves the
copies in each bank and destroys their row-buffer hit rates.
"""

from conftest import run_once

from repro.experiments.case_studies import run_case_study


def test_fig7_case_study_3(benchmark, runner4):
    result = run_once(
        benchmark, lambda: run_case_study("fig7_case_study_3", runner=runner4)
    )
    print()
    print(result.report())

    for name, r in result.results.items():
        assert r.unfairness < 1.4, f"{name} unfair on identical threads"
    ws = {name: r.weighted_speedup for name, r in result.results.items()}
    assert ws["PAR-BS"] >= max(ws.values()) - 0.05  # best or tied
    assert ws["NFQ"] <= ws["PAR-BS"]
