"""Exact JSON round-tripping of result records for the campaign store.

The campaign store persists full :class:`~repro.metrics.summary.WorkloadResult`
payloads (including per-thread results and the optional telemetry digest)
and the resume/report machinery depends on a loaded result comparing
**equal** to the original object — Python floats round-trip exactly
through ``json`` (repr-based), so the only work here is structural:
rebuilding the frozen dataclasses and restoring the int dict keys that
JSON forces to strings (thread ids in telemetry maps).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any

from ..metrics.summary import ThreadResult, WorkloadResult
from ..obs.sampler import TelemetrySummary

__all__ = [
    "result_from_dict",
    "result_from_json",
    "result_to_dict",
    "result_to_json",
]


def result_to_dict(result: WorkloadResult) -> dict[str, Any]:
    """A JSON-serializable dict capturing the full result payload."""
    telemetry = None
    if result.telemetry is not None:
        t = result.telemetry
        telemetry = {
            "sample_interval": t.sample_interval,
            "samples": [dict(s) for s in t.samples],
            "latency": {str(k): dict(v) for k, v in t.latency.items()},
            "bus": dict(t.bus),
        }
    return {
        "scheduler": result.scheduler,
        "workload": list(result.workload),
        "threads": [asdict(t) for t in result.threads],
        "sim_cycles": result.sim_cycles,
        "extra": dict(result.extra),
        "telemetry": telemetry,
        "events_processed": result.events_processed,
        "events_elided": result.events_elided,
        "min_rebuilds": result.min_rebuilds,
    }


def _intkeys(mapping: dict[str, Any]) -> dict[int, Any]:
    return {int(k): v for k, v in mapping.items()}


def result_from_dict(data: dict[str, Any]) -> WorkloadResult:
    """Rebuild a :class:`WorkloadResult` equal to the one serialized."""
    telemetry = None
    raw = data.get("telemetry")
    if raw is not None:
        samples = []
        for sample in raw["samples"]:
            sample = dict(sample)
            if "threads" in sample:
                sample["threads"] = _intkeys(sample["threads"])
            samples.append(sample)
        telemetry = TelemetrySummary(
            sample_interval=raw["sample_interval"],
            samples=tuple(samples),
            latency={int(k): dict(v) for k, v in raw["latency"].items()},
            bus=dict(raw["bus"]),
        )
    return WorkloadResult(
        scheduler=data["scheduler"],
        workload=tuple(data["workload"]),
        threads=tuple(ThreadResult(**t) for t in data["threads"]),
        sim_cycles=data["sim_cycles"],
        extra=dict(data.get("extra", {})),
        telemetry=telemetry,
        # Event counters arrived with schema v3; rows stored by older
        # code simply predate the accounting (0 = "not recorded").
        events_processed=data.get("events_processed", 0),
        events_elided=data.get("events_elided", 0),
        min_rebuilds=data.get("min_rebuilds", 0),
    )


def result_to_json(result: WorkloadResult) -> str:
    """Compact canonical JSON for one result (the store's payload column)."""
    return json.dumps(result_to_dict(result), sort_keys=True, separators=(",", ":"))


def result_from_json(text: str) -> WorkloadResult:
    return result_from_dict(json.loads(text))
