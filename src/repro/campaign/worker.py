"""The queue-consumer worker loop: drain one campaign through leases.

This is the execution half of the distributed campaign engine.  The
protocol half lives in :mod:`repro.campaign.queue`; this module turns it
into a drain loop that both entry points share:

* the in-process path — :func:`repro.campaign.orchestrator.run_campaign`
  delegates here, so a plain ``campaign run`` *is* a one-worker drain;
* the distributed path — every ``campaign work --db ...`` process runs
  this same loop against the shared store, claiming jobs the others
  haven't.

The loop per iteration: reclaim expired leases (dead/hung peers), settle
keys that peers finished, claim the next runnable job in grid order, and
execute it under a heartbeat — the simulator's watchdog checkpoint
renews the lease mid-simulation via :func:`repro.sim.pool.sim_progress`,
so a lease outlives any job whose worker is actually alive.  Completion
is fenced by :meth:`LeaseQueue.complete`: if this worker was presumed
dead and its job reclaimed, the commit is rejected and the job's fate
belongs to the reclaiming peer (``lost`` in :class:`WorkerStats`).

Job-level failures are retried locally with capped exponential backoff
(``retries`` attempts, exactly the old orchestrator semantics); pool
generations, no-progress timeouts, respawns and the serial fallback are
ported intact from the pre-queue orchestrator for ``jobs > 1``.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..config import baseline_system
from ..guard.chaos import ChaosPlan
from ..metrics.summary import WorkloadResult
from ..obs.config import TraceConfig
from ..obs.metrics import job_metrics, metrics_from_env
from ..sim import pool
from ..sim.pool import POOL_INCIDENT_LIMIT, SimJob, terminate_pool
from .queue import Lease, LeaseQueue, default_heartbeat_s
from .spec import CampaignJob, CampaignSpec
from .store import ResultStore

__all__ = ["LeaseLost", "WorkerStats", "drain_campaign"]

logger = logging.getLogger(__name__)

_MAX_BACKOFF_S = 8.0


class LeaseLost(RuntimeError):
    """This worker's lease was reclaimed mid-job: abandon the job (its
    fate belongs to whoever holds the live lease now)."""


@dataclass
class WorkerStats:
    """What one drain loop actually did (one worker's view)."""

    worker_id: str = ""  # the queue identity this drain claimed under
    claimed: int = 0  # leases successfully claimed
    completed: int = 0  # fenced commits that landed
    failed: int = 0  # local retries exhausted; recorded as failed
    retried: int = 0  # local resubmissions after a job error
    requeued: int = 0  # jobs requeued after a pool incident
    reclaimed: int = 0  # expired peer leases this worker reclaimed
    fenced: int = 0  # own commits rejected by the fencing token
    lost: int = 0  # jobs abandoned mid-run (lease reclaimed)
    foreign_done: int = 0  # jobs a peer completed while we drained
    failed_elsewhere: int = 0  # jobs a peer failed while we waited
    left_leased: int = 0  # jobs still leased to live peers at exit

    def resolved(self) -> int:
        return self.completed + self.failed


@dataclass
class _Callbacks:
    """Optional notification hooks (the orchestrator's stats/probe glue)."""

    on_done: Callable[[CampaignJob, WorkloadResult, float, int, str], None] | None = None
    on_failed: Callable[[CampaignJob, BaseException, int], None] | None = None
    on_retrying: Callable[[CampaignJob, int], None] | None = None
    on_requeued: Callable[[int], None] | None = None
    on_foreign: Callable[[CampaignJob, str], None] | None = None


def _sim_job(job: CampaignJob, trace: TraceConfig, cache_dir: str | None) -> SimJob:
    return SimJob(
        config=baseline_system(job.num_cores),
        workload=job.workload,
        scheduler=job.scheduler,
        scheduler_kwargs=job.kwargs_dict(),
        instructions=job.instructions,
        seed=job.seed,
        cache_dir=cache_dir,
        trace=trace,
        trace_files=job.trace_files,
        decoder=job.decoder,
    )


class _Drain:
    """One worker's drain of one campaign (state shared by the serial and
    pool paths)."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        *,
        keys: Sequence[str] | None,
        worker_id: str | None,
        jobs: int,
        lease_s: float | None,
        heartbeat_s: float | None,
        poll_s: float,
        retries: int,
        backoff_s: float,
        job_timeout_s: float | None,
        chaos: ChaosPlan | None,
        hard_kill: bool,
        wait_for_peers: bool,
        max_jobs: int | None,
        trace: TraceConfig | None,
        cache_dir: str | None,
        callbacks: _Callbacks,
        clock: Callable[[], float],
    ) -> None:
        self.spec = spec
        self.store = store
        self.queue = LeaseQueue(
            store,
            spec.fingerprint(),
            worker_id=worker_id,
            lease_s=lease_s,
            clock=clock,
        )
        self.heartbeat_s = (
            heartbeat_s
            if heartbeat_s is not None
            else default_heartbeat_s(self.queue.lease_s)
        )
        self.jobs = max(1, jobs)
        self.poll_s = poll_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.job_timeout_s = job_timeout_s
        self.chaos = chaos
        self.hard_kill = hard_kill
        self.wait_for_peers = wait_for_peers
        self.max_jobs = max_jobs
        self.trace = trace if trace is not None else (TraceConfig.from_env() or TraceConfig())
        if cache_dir == "auto":
            from ..sim.diskcache import cache_enabled, default_cache_dir

            cache_dir = str(default_cache_dir()) if cache_enabled() else None
        self.cache_dir = cache_dir
        self.cb = callbacks
        self.stats = WorkerStats(worker_id=self.queue.worker_id)

        grid = spec.expand()
        self.by_key = {job.key: job for job in grid}
        self.store.register(spec, grid)
        wanted = set(keys) if keys is not None else None
        statuses = store.statuses(job.key for job in grid)
        self.unresolved: list[str] = [
            job.key
            for job in grid
            if (wanted is None or job.key in wanted)
            and statuses.get(job.key) != "done"
        ]

    # -- bookkeeping ---------------------------------------------------------
    def _budget_left(self) -> bool:
        return self.max_jobs is None or self.stats.resolved() < self.max_jobs

    def _resolve(self, key: str) -> None:
        self.unresolved.remove(key)

    def _progress_done(
        self, lease: Lease, result: WorkloadResult, wall: float, attempt: int, pid: int
    ) -> None:
        events_per_sec = result.events_logical / wall if wall > 0 else None
        self.store.record_progress(
            lease.key,
            attempt,
            str(pid),
            "done",
            wall_time_s=wall,
            events_per_sec=events_per_sec,
            metrics=job_metrics(result),
        )
        registry = metrics_from_env()
        if registry is not None:
            registry.counter("campaign.jobs_ran").inc()
            registry.histogram("campaign.job_wall_s").observe(wall)
        if self.cb.on_done is not None:
            self.cb.on_done(self.by_key[lease.key], result, wall, attempt, str(pid))

    def _commit(
        self, lease: Lease, result: WorkloadResult, wall: float, attempt: int, pid: int
    ) -> bool:
        """Fenced completion; False means a peer owns the job now."""
        if self.queue.complete(lease, result, wall_time_s=wall):
            self.stats.completed += 1
            self._progress_done(lease, result, wall, attempt, pid)
            self._resolve(lease.key)
            return True
        self.stats.fenced += 1
        self.stats.lost += 1
        logger.warning(
            "worker %s: commit of %s fenced off (lease reclaimed); "
            "leaving the job to its new owner",
            self.queue.worker_id,
            lease.key[:12],
        )
        return False

    def _give_up(self, lease: Lease, error: BaseException, attempt: int) -> None:
        if not self.queue.fail(lease, f"{type(error).__name__}: {error}"):
            self.stats.fenced += 1
            self.stats.lost += 1
            return
        self.store.record_progress(lease.key, attempt, None, "failed")
        self.stats.failed += 1
        logger.warning(
            "campaign %s: job %s failed: %s",
            self.spec.name,
            lease.key[:16],
            error,
        )
        if self.cb.on_failed is not None:
            self.cb.on_failed(self.by_key[lease.key], error, attempt)
        self._resolve(lease.key)

    def _retrying(self, key: str, attempt: int) -> None:
        self.stats.retried += 1
        self.store.record_progress(key, attempt, None, "retrying")
        if self.cb.on_retrying is not None:
            self.cb.on_retrying(self.by_key[key], attempt)

    def _settle_foreign(self) -> None:
        """Resolve keys whose fate peers decided (done elsewhere)."""
        if not self.unresolved:
            return
        statuses = self.store.statuses(self.unresolved)
        for key in list(self.unresolved):
            if statuses.get(key) == "done":
                self.stats.foreign_done += 1
                self._resolve(key)
                if self.cb.on_foreign is not None:
                    self.cb.on_foreign(self.by_key[key], "done")

    def _reclaim(self) -> None:
        reclaimed = self.queue.reclaim_expired()
        self.stats.reclaimed += len(reclaimed)

    # -- one leased execution (serial / fallback path) ------------------------
    def _heartbeat_tick(self, lease_box: list[Lease], frozen: bool):
        next_beat = [time.monotonic() + self.heartbeat_s]

        def tick(_events: int) -> None:
            if frozen:
                return
            now = time.monotonic()
            if now < next_beat[0]:
                return
            renewed = self.queue.heartbeat(lease_box[0])
            if renewed is None:
                raise LeaseLost(lease_box[0].key)
            lease_box[0] = renewed
            next_beat[0] = now + self.heartbeat_s

        return tick

    def _run_leased(self, lease: Lease) -> None:
        """Execute one claimed job with local retries, heartbeats, and a
        fenced commit.  Resolves the key unless the lease was lost."""
        job = self.by_key[lease.key]
        sim = _sim_job(job, self.trace, self.cache_dir)
        frozen = self.chaos is not None and self.chaos.freeze_heartbeats(lease.key)
        if frozen:
            logger.warning(
                "chaos: freezing heartbeats for %s on %s",
                lease.key[:12],
                self.queue.worker_id,
            )
        lease_box = [lease]
        tick = self._heartbeat_tick(lease_box, frozen)
        for attempt in range(self.retries + 1):
            try:
                if self.chaos is not None:
                    self.chaos.maybe_kill_leaseholder(
                        lease.key, hard=self.hard_kill
                    )
                with pool.sim_progress(tick):
                    result, wall, worker_pid = pool.run_job_timed(sim)
            except LeaseLost:
                self.stats.lost += 1
                logger.warning(
                    "worker %s: lease on %s reclaimed mid-run; abandoning",
                    self.queue.worker_id,
                    lease.key[:12],
                )
                return
            except KeyboardInterrupt:
                # Best-effort: hand the job straight back to the queue
                # instead of making peers wait out the lease.
                self.queue.release(lease_box[0])
                raise
            except Exception as exc:
                if attempt >= self.retries:
                    self._give_up(lease_box[0], exc, attempt)
                    return
                self._retrying(lease.key, attempt)
                time.sleep(min(self.backoff_s * (2**attempt), _MAX_BACKOFF_S))
                # The lease may be near expiry after the backoff; a fenced
                # renewal here means the job is no longer ours to retry.
                renewed = self.queue.heartbeat(lease_box[0])
                if renewed is None:
                    self.stats.lost += 1
                    return
                lease_box[0] = renewed
            else:
                self._commit(lease_box[0], result, wall, attempt, worker_pid)
                return

    # -- serial drain ---------------------------------------------------------
    def _drain_serial(self) -> None:
        idle_logged = False
        while self.unresolved and self._budget_left():
            self._reclaim()
            self._settle_foreign()
            if not self.unresolved:
                break
            lease = self.queue.claim_next(self.unresolved)
            if lease is not None:
                idle_logged = False
                self.stats.claimed += 1
                self._run_leased(lease)
                continue
            # Everything left is done (settled next pass) or leased to a
            # live peer: wait for them — their lease expiry is our upper
            # bound — or leave if asked not to.
            if not self.wait_for_peers:
                self.stats.left_leased += len(self.unresolved)
                logger.info(
                    "worker %s: %d jobs still leased to peers; leaving",
                    self.queue.worker_id,
                    len(self.unresolved),
                )
                return
            if not idle_logged:
                idle_logged = True
                logger.info(
                    "worker %s: waiting on %d jobs leased to peers",
                    self.queue.worker_id,
                    len(self.unresolved),
                )
            time.sleep(self.poll_s)

    # -- pool drain (ported generational machinery) ---------------------------
    def _claim_all(self) -> dict[str, Lease]:
        held: dict[str, Lease] = {}
        claimable = list(self.unresolved)
        while claimable:
            lease = self.queue.claim_next(claimable)
            if lease is None:
                break
            self.stats.claimed += 1
            held[lease.key] = lease
            claimable.remove(lease.key)
        return held

    def _renew_held(self, held: dict[str, Lease], frozen: set[str]) -> list[str]:
        """Renew every held lease; returns keys fenced out (lost)."""
        lost: list[str] = []
        for key, lease in list(held.items()):
            if key in frozen:
                continue
            renewed = self.queue.heartbeat(lease)
            if renewed is None:
                lost.append(key)
                del held[key]
            else:
                held[key] = renewed
        return lost

    def _drain_pool(self) -> None:
        while self.unresolved and self._budget_left():
            self._reclaim()
            self._settle_foreign()
            if not self.unresolved:
                break
            held = self._claim_all()
            if not held:
                if not self.wait_for_peers:
                    self.stats.left_leased += len(self.unresolved)
                    return
                time.sleep(self.poll_s)
                continue
            frozen: set[str] = set()
            if self.chaos is not None:
                for key in held:
                    if self.chaos.freeze_heartbeats(key):
                        frozen.add(key)
                        logger.warning(
                            "chaos: freezing heartbeats for %s on %s",
                            key[:12],
                            self.queue.worker_id,
                        )
            self._pool_generations(held, frozen)

    def _pool_generations(self, held: dict[str, Lease], frozen: set[str]) -> None:
        """Run the held jobs over pool generations with incident recovery
        — the pre-queue orchestrator's machinery, minus result commits
        (those go through the fenced queue) plus lease renewal."""
        remaining: list[tuple[str, int]] = [(key, 0) for key in held]
        incidents = 0
        while remaining:
            if incidents >= POOL_INCIDENT_LIMIT:
                pool.POOL_STATS["serial_fallbacks"] += 1
                logger.warning(
                    "worker pool failed %d times; running %d unfinished jobs "
                    "serially",
                    incidents,
                    len(remaining),
                )
                for key, _attempt in remaining:
                    lease = held.pop(key, None)
                    if lease is None:
                        continue
                    self._run_leased(lease)
                return
            executor = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(remaining))
            )
            inflight: dict[Future, tuple[str, int, float]] = {}
            requeue: list[tuple[str, int]] = []
            broken: str | None = None

            def submit(key: str, attempt: int) -> bool:
                job = self.by_key[key]
                try:
                    future = executor.submit(
                        pool.run_job_timed,
                        _sim_job(job, self.trace, self.cache_dir),
                    )
                except BrokenProcessPool:
                    requeue.append((key, attempt))
                    return False
                inflight[future] = (key, attempt, time.perf_counter())
                return True

            try:
                for position, (key, attempt) in enumerate(remaining):
                    if not submit(key, attempt):
                        requeue.extend(remaining[position + 1 :])
                        broken = "pool broken at submit"
                        break
                next_beat = time.monotonic() + self.heartbeat_s
                progress_deadline = (
                    time.monotonic() + self.job_timeout_s
                    if self.job_timeout_s is not None
                    else None
                )
                while inflight and broken is None:
                    now = time.monotonic()
                    timeout = next_beat - now
                    if progress_deadline is not None:
                        timeout = min(timeout, progress_deadline - now)
                    finished, _pending = wait(
                        inflight,
                        timeout=max(0.01, timeout),
                        return_when=FIRST_COMPLETED,
                    )
                    now = time.monotonic()
                    if now >= next_beat:
                        for key in self._renew_held(held, frozen):
                            logger.warning(
                                "worker %s: lease on %s reclaimed mid-run",
                                self.queue.worker_id,
                                key[:12],
                            )
                        next_beat = now + self.heartbeat_s
                    if not finished:
                        if (
                            progress_deadline is not None
                            and now >= progress_deadline
                        ):
                            pool.POOL_STATS["timeouts"] += 1
                            broken = (
                                f"no job finished within "
                                f"{self.job_timeout_s:g}s (pool presumed hung)"
                            )
                            break
                        continue
                    if progress_deadline is not None:
                        progress_deadline = now + self.job_timeout_s
                    for future in finished:
                        key, attempt, _started = inflight.pop(future)
                        try:
                            result, wall, worker_pid = future.result()
                        except BrokenProcessPool:
                            requeue.append((key, attempt))
                            broken = "worker died"
                        except Exception as exc:
                            lease = held.get(key)
                            if lease is None:
                                self.stats.lost += 1
                                continue
                            if attempt >= self.retries:
                                self._give_up(lease, exc, attempt)
                                held.pop(key, None)
                                continue
                            self._retrying(key, attempt)
                            time.sleep(
                                min(
                                    self.backoff_s * (2**attempt),
                                    _MAX_BACKOFF_S,
                                )
                            )
                            renewed = self.queue.heartbeat(lease)
                            if renewed is None:
                                self.stats.lost += 1
                                held.pop(key, None)
                                continue
                            held[key] = renewed
                            submit(key, attempt + 1)
                        else:
                            lease = held.pop(key, None)
                            if lease is None:
                                self.stats.lost += 1
                                continue
                            self._commit(lease, result, wall, attempt, worker_pid)
            except KeyboardInterrupt:
                terminate_pool(executor)
                for lease in held.values():
                    self.queue.release(lease)
                logger.error(
                    "campaign interrupted: %d results committed, %d jobs "
                    "dropped (resume with `repro campaign resume`)",
                    self.stats.completed,
                    len(inflight),
                )
                raise
            except BaseException:
                terminate_pool(executor)
                raise
            if broken is None and not requeue:
                executor.shutdown()
                return
            terminate_pool(executor)
            incidents += 1
            pool.POOL_STATS["respawns"] += 1
            remaining = requeue + [
                (key, attempt) for key, attempt, _started in inflight.values()
            ]
            # Drop anything whose lease we lost while the pool was broken.
            remaining = [entry for entry in remaining if entry[0] in held]
            self.stats.requeued += len(remaining)
            if self.cb.on_requeued is not None:
                self.cb.on_requeued(len(remaining))
            logger.warning(
                "worker pool incident (%s); respawning pool for %d unfinished "
                "jobs",
                broken or "submit failure",
                len(remaining),
            )

    # -- entry ----------------------------------------------------------------
    def run(self) -> WorkerStats:
        if self.jobs <= 1 or len(self.unresolved) <= 1:
            self._drain_serial()
        else:
            self._drain_pool()
        return self.stats


def drain_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    *,
    keys: Sequence[str] | None = None,
    worker_id: str | None = None,
    jobs: int = 1,
    lease_s: float | None = None,
    heartbeat_s: float | None = None,
    poll_s: float = 0.5,
    retries: int = 2,
    backoff_s: float = 0.5,
    job_timeout_s: float | None = None,
    chaos: ChaosPlan | None = None,
    hard_kill: bool = False,
    wait_for_peers: bool = True,
    max_jobs: int | None = None,
    trace: TraceConfig | None = None,
    cache_dir: str | None = "auto",
    on_done=None,
    on_failed=None,
    on_retrying=None,
    on_requeued=None,
    on_foreign=None,
    clock: Callable[[], float] = time.time,
) -> WorkerStats:
    """Drain ``spec``'s runnable jobs from ``store`` as one worker.

    ``keys`` restricts the drain to a subset of the grid (the
    orchestrator's ``--limit`` path); ``jobs`` fans execution over a
    local process pool while claims/heartbeats/commits stay in this
    process.  ``hard_kill`` marks a top-level ``campaign work`` process:
    chaos ``leasekill`` faults exit hard (leaving the lease to expire)
    instead of raising.  ``wait_for_peers=False`` returns as soon as
    every remaining job is leased to a live peer instead of polling
    until they settle.  ``max_jobs`` bounds how many jobs this call
    resolves locally (tests and smoke runs).
    """
    drain = _Drain(
        spec,
        store,
        keys=keys,
        worker_id=worker_id,
        jobs=jobs,
        lease_s=lease_s,
        heartbeat_s=heartbeat_s,
        poll_s=poll_s,
        retries=retries,
        backoff_s=backoff_s,
        job_timeout_s=job_timeout_s,
        chaos=chaos,
        hard_kill=hard_kill,
        wait_for_peers=wait_for_peers,
        max_jobs=max_jobs,
        trace=trace,
        cache_dir=cache_dir,
        callbacks=_Callbacks(
            on_done=on_done,
            on_failed=on_failed,
            on_retrying=on_retrying,
            on_requeued=on_requeued,
            on_foreign=on_foreign,
        ),
        clock=clock,
    )
    return drain.run()
