"""SQLite-backed campaign result store.

One database holds any number of campaigns; each campaign row pins the
spec (name, canonical JSON, content fingerprint) and each job row holds
one grid cell — its content-hash key, grid coordinates, lifecycle status
(``pending``/``done``/``failed``), and, once simulated, the full
serialized :class:`~repro.metrics.summary.WorkloadResult` payload.

Durability properties the orchestrator builds on:

* the connection runs in WAL mode with ``synchronous=NORMAL``, so one
  writer streams results while ``campaign status``/``report`` readers
  query concurrently;
* every result lands in its own transaction (`record_result`), so an
  interrupted run loses at most the in-flight simulations — never a
  recorded one, and never a torn row;
* a ``schema_version`` table gates forward migrations: opening an older
  database upgrades it in place inside a transaction, and opening a
  *newer* database than this code understands refuses loudly instead of
  corrupting it.

The default database lives next to the simulation disk cache
(``<REPRO_CACHE_DIR>/campaigns.sqlite``) and can be pointed elsewhere
with ``REPRO_CAMPAIGN_DB``.
"""

from __future__ import annotations

import json
import logging
import os
import random
import sqlite3
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from ..envknobs import read_float
from ..sim.diskcache import cache_enabled, default_cache_dir
from .serde import result_from_json, result_to_json
from .spec import CampaignJob, CampaignSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..metrics.summary import WorkloadResult

__all__ = ["ResultStore", "SCHEMA_VERSION", "STORE_STATS", "default_db_path"]
# (results_for/failures_for are the grid-faithful, cross-campaign queries.)

logger = logging.getLogger(__name__)

SCHEMA_VERSION = 4

# Default ``PRAGMA busy_timeout`` in seconds; raise via
# ``REPRO_STORE_BUSY_TIMEOUT_S`` when many workers share one database.
_BUSY_TIMEOUT_DEFAULT_S = 30.0

# Operational counters of this process's store traffic, folded into the
# metrics plane by :func:`repro.obs.metrics.collect_process_metrics`.
STORE_STATS = {"commit_retries": 0}

# Transient-commit retry policy: SQLite raises OperationalError for lock
# contention ("database is locked") — and chaos injection mimics exactly
# that — so result commits back off and retry before giving up.
_COMMIT_RETRIES = 4
_COMMIT_BACKOFF_S = 0.05
_COMMIT_BACKOFF_MAX_S = 1.0

# Forward migrations: version -> SQL applied to reach it from version-1.
# Version 1 is the base schema; later entries must only ever be appended.
_MIGRATIONS: dict[int, Sequence[str]] = {
    1: (
        """CREATE TABLE campaigns (
            fingerprint TEXT PRIMARY KEY,
            name        TEXT NOT NULL,
            spec_json   TEXT NOT NULL,
            instructions INTEGER NOT NULL
        )""",
        """CREATE TABLE jobs (
            key         TEXT PRIMARY KEY,
            campaign    TEXT NOT NULL REFERENCES campaigns(fingerprint),
            num_cores   INTEGER NOT NULL,
            mix_index   INTEGER NOT NULL,
            variant     TEXT NOT NULL,
            scheduler   TEXT NOT NULL,
            workload_json TEXT NOT NULL,
            kwargs_json TEXT NOT NULL,
            seed        INTEGER NOT NULL,
            instructions INTEGER NOT NULL,
            status      TEXT NOT NULL DEFAULT 'pending'
                        CHECK (status IN ('pending', 'done', 'failed')),
            attempts    INTEGER NOT NULL DEFAULT 0,
            error       TEXT,
            result_json TEXT
        )""",
        "CREATE INDEX jobs_by_campaign ON jobs (campaign, status)",
    ),
    # v2: record per-job simulation wall time (populated by the
    # orchestrator; NULL for rows recorded by older code).
    2: ("ALTER TABLE jobs ADD COLUMN wall_time_s REAL",),
    # v3: the observability plane.  ``progress`` holds one row per job
    # *attempt* (worker id, wall time, throughput, the deterministic
    # per-job metrics blob) feeding ``campaign watch``; campaigns gain
    # the run manifest and the merged operational-metrics snapshot.
    # Existing job/campaign rows are untouched (additive only).
    3: (
        """CREATE TABLE progress (
            key         TEXT NOT NULL,
            attempt     INTEGER NOT NULL,
            worker      TEXT,
            status      TEXT NOT NULL,
            wall_time_s REAL,
            events_per_sec REAL,
            metrics_json TEXT,
            updated_at  REAL,
            PRIMARY KEY (key, attempt)
        )""",
        "ALTER TABLE campaigns ADD COLUMN manifest_json TEXT",
        "ALTER TABLE campaigns ADD COLUMN metrics_json TEXT",
    ),
    # v4: the distributed work-queue.  ``leases`` holds at most one live
    # lease per job key (who is running it, until when); ``jobs`` gains a
    # monotone fencing counter bumped on every claim so a reclaimed
    # worker's late commit can be rejected; ``campaigns`` counts how many
    # leases were reclaimed from dead/hung workers.  Additive only.
    4: (
        "ALTER TABLE jobs ADD COLUMN lease_seq INTEGER NOT NULL DEFAULT 0",
        """CREATE TABLE leases (
            key         TEXT PRIMARY KEY,
            campaign    TEXT NOT NULL,
            worker_id   TEXT NOT NULL,
            attempt     INTEGER NOT NULL,
            claimed_at  REAL NOT NULL,
            heartbeat_at REAL NOT NULL,
            lease_deadline REAL NOT NULL
        )""",
        "CREATE INDEX leases_by_campaign ON leases (campaign, lease_deadline)",
        "ALTER TABLE campaigns ADD COLUMN reclaims INTEGER NOT NULL DEFAULT 0",
    ),
}


def default_db_path() -> str:
    """Database location: ``REPRO_CAMPAIGN_DB``, else next to the disk
    cache; an in-memory database when caching is disabled entirely."""
    env = os.environ.get("REPRO_CAMPAIGN_DB")
    if env:
        return env
    if not cache_enabled():
        return ":memory:"
    return str(default_cache_dir() / "campaigns.sqlite")


class ResultStore:
    """Transactional store for campaign job results (one SQLite file)."""

    def __init__(self, path: str | Path | None = None) -> None:
        raw = str(path) if path is not None else default_db_path()
        self.path = raw
        # Optional :class:`~repro.guard.chaos.ChaosPlan`: when set, result
        # commits are subjected to injected OperationalErrors (exercising
        # the same retry path real lock contention takes).
        self.chaos = None
        if raw != ":memory:":
            Path(raw).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(raw)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        busy_s = read_float(
            "REPRO_STORE_BUSY_TIMEOUT_S", _BUSY_TIMEOUT_DEFAULT_S, floor=0.0
        )
        self._conn.execute(f"PRAGMA busy_timeout={int(busy_s * 1000)}")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._migrate()

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- schema --------------------------------------------------------------
    def schema_version(self) -> int:
        row = self._conn.execute("SELECT version FROM schema_version").fetchone()
        return int(row["version"])

    def _migrate(self) -> None:
        conn = self._conn
        conn.execute(
            "CREATE TABLE IF NOT EXISTS schema_version (version INTEGER NOT NULL)"
        )
        # Concurrent openers of a fresh (or stale) database race to apply
        # the same DDL — N ``campaign work`` processes pointed at one new
        # shared store all arrive here at once.  BEGIN IMMEDIATE takes the
        # write lock *before* the version read, so exactly one connection
        # upgrades and the rest wait on busy_timeout, then see the
        # finished schema and fall through.
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute("SELECT version FROM schema_version").fetchone()
            current = int(row["version"]) if row is not None else 0
            if current > SCHEMA_VERSION:
                raise RuntimeError(
                    f"campaign database {self.path!r} has schema v{current}, "
                    f"newer than this code (v{SCHEMA_VERSION}); refusing to touch it"
                )
            if current < SCHEMA_VERSION:
                for version in range(current + 1, SCHEMA_VERSION + 1):
                    for statement in _MIGRATIONS[version]:
                        conn.execute(statement)
                if row is None:
                    conn.execute(
                        "INSERT INTO schema_version (version) VALUES (?)",
                        (SCHEMA_VERSION,),
                    )
                else:
                    conn.execute(
                        "UPDATE schema_version SET version = ?",
                        (SCHEMA_VERSION,),
                    )
            conn.execute("COMMIT")
        except BaseException:
            if conn.in_transaction:
                conn.execute("ROLLBACK")
            raise

    # -- registration --------------------------------------------------------
    def register(self, spec: CampaignSpec, jobs: Sequence[CampaignJob]) -> int:
        """Upsert the campaign row and insert any jobs not yet present.

        Existing job rows (including completed ones) are left untouched —
        that is the resume contract.  Returns the number of newly inserted
        jobs.
        """
        fingerprint = spec.fingerprint()
        conn = self._conn
        with conn:
            conn.execute(
                "INSERT INTO campaigns (fingerprint, name, spec_json, instructions) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT(fingerprint) DO UPDATE SET name = excluded.name",
                (
                    fingerprint,
                    spec.name,
                    json.dumps(spec.to_dict(), sort_keys=True),
                    spec.resolved_instructions(),
                ),
            )
            before = conn.total_changes
            conn.executemany(
                "INSERT OR IGNORE INTO jobs "
                "(key, campaign, num_cores, mix_index, variant, scheduler, "
                " workload_json, kwargs_json, seed, instructions) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        job.key,
                        fingerprint,
                        job.num_cores,
                        job.mix_index,
                        job.variant,
                        job.scheduler,
                        json.dumps(list(job.workload)),
                        json.dumps(job.kwargs_dict(), sort_keys=True),
                        job.seed,
                        job.instructions,
                    )
                    for job in jobs
                ],
            )
            return conn.total_changes - before

    # -- job lifecycle -------------------------------------------------------
    def statuses(self, keys: Iterable[str]) -> dict[str, str]:
        """Status by job key (absent keys are simply missing)."""
        out: dict[str, str] = {}
        keys = list(keys)
        for start in range(0, len(keys), 500):
            chunk = keys[start : start + 500]
            marks = ",".join("?" * len(chunk))
            for row in self._conn.execute(
                f"SELECT key, status FROM jobs WHERE key IN ({marks})", chunk
            ):
                out[row["key"]] = row["status"]
        return out

    def _commit_with_retry(self, key: str, sql: str, params: tuple) -> None:
        """One-row commit resilient to transient ``OperationalError``
        (lock contention under concurrent workers, chaos injection):
        capped exponential backoff with jitter — so N workers that
        collide on the same lock don't retry in lockstep — then
        re-raise."""
        for attempt in range(_COMMIT_RETRIES + 1):
            try:
                if self.chaos is not None:
                    self.chaos.sqlite_hiccup(key)
                with self._conn:
                    self._conn.execute(sql, params)
                return
            except sqlite3.OperationalError as exc:
                if attempt >= _COMMIT_RETRIES:
                    raise
                STORE_STATS["commit_retries"] += 1
                delay = min(
                    _COMMIT_BACKOFF_S * (2**attempt), _COMMIT_BACKOFF_MAX_S
                )
                delay *= 0.5 + random.random() * 0.5
                logger.warning(
                    "store commit for %s hit %s; retrying in %.2fs",
                    key[:12],
                    exc,
                    delay,
                )
                time.sleep(delay)

    def record_result(
        self, key: str, result: "WorkloadResult", wall_time_s: float | None = None
    ) -> None:
        """Persist one finished simulation (its own committed transaction)."""
        self._commit_with_retry(
            key,
            "UPDATE jobs SET status = 'done', result_json = ?, error = NULL, "
            "attempts = attempts + 1, wall_time_s = ? WHERE key = ?",
            (result_to_json(result), wall_time_s, key),
        )

    def record_failure(self, key: str, error: str) -> None:
        """Mark one job failed (kept pending-equivalent for future resumes)."""
        self._commit_with_retry(
            key,
            "UPDATE jobs SET status = 'failed', error = ?, "
            "attempts = attempts + 1 WHERE key = ?",
            (error[:2000], key),
        )

    # -- progress (schema v3) ------------------------------------------------
    def record_progress(
        self,
        key: str,
        attempt: int,
        worker: str | None,
        status: str,
        *,
        wall_time_s: float | None = None,
        events_per_sec: float | None = None,
        metrics: dict | None = None,
    ) -> None:
        """Upsert one (job, attempt) heartbeat row for ``campaign watch``.

        ``metrics`` is the deterministic per-job blob from
        :func:`repro.obs.metrics.job_metrics`; wall time and throughput
        are worker-measured and explicitly non-deterministic.
        """
        self._commit_with_retry(
            key,
            "INSERT INTO progress (key, attempt, worker, status, wall_time_s, "
            " events_per_sec, metrics_json, updated_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?) "
            "ON CONFLICT(key, attempt) DO UPDATE SET "
            " worker = excluded.worker, status = excluded.status, "
            " wall_time_s = excluded.wall_time_s, "
            " events_per_sec = excluded.events_per_sec, "
            " metrics_json = excluded.metrics_json, "
            " updated_at = excluded.updated_at",
            (
                key,
                attempt,
                worker,
                status,
                wall_time_s,
                events_per_sec,
                json.dumps(metrics, sort_keys=True) if metrics is not None else None,
                time.time(),
            ),
        )

    def progress_for(self, keys: Iterable[str]) -> dict[str, dict]:
        """Latest-attempt progress row per job key (absent keys missing)."""
        out: dict[str, dict] = {}
        keys = list(keys)
        for start in range(0, len(keys), 500):
            chunk = keys[start : start + 500]
            marks = ",".join("?" * len(chunk))
            for row in self._conn.execute(
                f"SELECT * FROM progress WHERE key IN ({marks})", chunk
            ):
                prev = out.get(row["key"])
                if prev is not None and prev["attempt"] >= row["attempt"]:
                    continue
                out[row["key"]] = {
                    "key": row["key"],
                    "attempt": int(row["attempt"]),
                    "worker": row["worker"],
                    "status": row["status"],
                    "wall_time_s": row["wall_time_s"],
                    "events_per_sec": row["events_per_sec"],
                    "metrics": (
                        json.loads(row["metrics_json"])
                        if row["metrics_json"] is not None
                        else None
                    ),
                    "updated_at": row["updated_at"],
                }
        return out

    # -- manifests and campaign metrics (schema v3) ---------------------------
    def set_manifest(self, fingerprint: str, manifest: dict) -> None:
        """Pin the run manifest of a campaign (overwritten each run; the
        manifest is a pure function of spec + environment, so a resume
        under the same knobs writes the same bytes)."""
        self._commit_with_retry(
            fingerprint,
            "UPDATE campaigns SET manifest_json = ? WHERE fingerprint = ?",
            (json.dumps(manifest, sort_keys=True), fingerprint),
        )

    def manifest(self, fingerprint: str) -> dict | None:
        row = self._conn.execute(
            "SELECT manifest_json FROM campaigns WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None or row["manifest_json"] is None:
            return None
        return json.loads(row["manifest_json"])

    def merge_metrics(self, fingerprint: str, snapshot: dict) -> None:
        """Fold one process's operational-metrics snapshot into the
        campaign's stored snapshot (counters sum, gauges max, histograms
        bucket-wise — see :class:`repro.obs.metrics.MetricsRegistry`)."""
        from ..obs.metrics import MetricsRegistry

        existing = self.metrics(fingerprint)
        registry = MetricsRegistry()
        if existing is not None:
            registry.merge(existing)
        registry.merge(snapshot)
        self._commit_with_retry(
            fingerprint,
            "UPDATE campaigns SET metrics_json = ? WHERE fingerprint = ?",
            (json.dumps(registry.snapshot(), sort_keys=True), fingerprint),
        )

    def metrics(self, fingerprint: str) -> dict | None:
        """The campaign's merged operational-metrics snapshot, if any."""
        row = self._conn.execute(
            "SELECT metrics_json FROM campaigns WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None or row["metrics_json"] is None:
            return None
        return json.loads(row["metrics_json"])

    # -- leases (schema v4) ---------------------------------------------------
    def leases_for(
        self, keys: Iterable[str], now: float | None = None
    ) -> dict[str, dict]:
        """Live lease rows for specific job keys (absent keys missing).

        Each row carries ``expired`` relative to ``now`` (wall clock by
        default) so readers can distinguish in-flight work from leases
        awaiting reclamation.
        """
        if now is None:
            now = time.time()
        out: dict[str, dict] = {}
        keys = list(keys)
        for start in range(0, len(keys), 500):
            chunk = keys[start : start + 500]
            marks = ",".join("?" * len(chunk))
            for row in self._conn.execute(
                f"SELECT * FROM leases WHERE key IN ({marks})", chunk
            ):
                out[row["key"]] = {
                    "key": row["key"],
                    "campaign": row["campaign"],
                    "worker_id": row["worker_id"],
                    "attempt": int(row["attempt"]),
                    "claimed_at": float(row["claimed_at"]),
                    "heartbeat_at": float(row["heartbeat_at"]),
                    "lease_deadline": float(row["lease_deadline"]),
                    "expired": float(row["lease_deadline"]) <= now,
                }
        return out

    def reclaim_count(self, fingerprint: str) -> int:
        """How many leases this campaign has reclaimed from dead workers."""
        row = self._conn.execute(
            "SELECT reclaims FROM campaigns WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        return int(row["reclaims"]) if row is not None else 0

    def spec_for(self, fingerprint: str) -> CampaignSpec:
        """Rehydrate the registered spec by fingerprint (unique-prefix
        match accepted, mirroring git's short-hash ergonomics for the
        ``campaign work --fingerprint`` CLI)."""
        rows = self._conn.execute(
            "SELECT fingerprint, spec_json FROM campaigns "
            "WHERE fingerprint LIKE ? ORDER BY fingerprint",
            (fingerprint + "%",),
        ).fetchall()
        exact = [r for r in rows if r["fingerprint"] == fingerprint]
        if exact:
            rows = exact
        if not rows:
            raise KeyError(
                f"no campaign with fingerprint {fingerprint!r} in {self.path!r}"
            )
        if len(rows) > 1:
            matches = ", ".join(r["fingerprint"][:12] for r in rows)
            raise KeyError(
                f"fingerprint prefix {fingerprint!r} is ambiguous ({matches})"
            )
        from .spec import spec_from_dict

        return spec_from_dict(json.loads(rows[0]["spec_json"]))

    # -- queries -------------------------------------------------------------
    def counts(self, fingerprint: str) -> dict[str, int]:
        out = {"pending": 0, "done": 0, "failed": 0, "total": 0}
        for row in self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM jobs WHERE campaign = ? "
            "GROUP BY status",
            (fingerprint,),
        ):
            out[row["status"]] = int(row["n"])
            out["total"] += int(row["n"])
        return out

    def result(self, key: str) -> "WorkloadResult | None":
        row = self._conn.execute(
            "SELECT result_json FROM jobs WHERE key = ? AND status = 'done'",
            (key,),
        ).fetchone()
        if row is None or row["result_json"] is None:
            return None
        return result_from_json(row["result_json"])

    def results(self, fingerprint: str) -> dict[str, "WorkloadResult"]:
        """All completed results of a campaign, keyed by job key.

        Only covers rows registered *under* this campaign; jobs shared
        with an earlier campaign (same content hash) live under that
        campaign's row.  Grid-faithful readers use :meth:`results_for`
        with the expanded job keys instead.
        """
        return {
            row["key"]: result_from_json(row["result_json"])
            for row in self._conn.execute(
                "SELECT key, result_json FROM jobs "
                "WHERE campaign = ? AND status = 'done'",
                (fingerprint,),
            )
            if row["result_json"] is not None
        }

    def results_for(self, keys: Iterable[str]) -> dict[str, "WorkloadResult"]:
        """Completed results for specific job keys, regardless of which
        campaign originally registered them (job identity is the content
        hash, so identical cells are shared across campaigns)."""
        out: dict[str, "WorkloadResult"] = {}
        keys = list(keys)
        for start in range(0, len(keys), 500):
            chunk = keys[start : start + 500]
            marks = ",".join("?" * len(chunk))
            for row in self._conn.execute(
                f"SELECT key, result_json FROM jobs "
                f"WHERE key IN ({marks}) AND status = 'done'",
                chunk,
            ):
                if row["result_json"] is not None:
                    out[row["key"]] = result_from_json(row["result_json"])
        return out

    def failures_for(self, keys: Iterable[str]) -> dict[str, str]:
        """Error text for specific failed job keys (cross-campaign)."""
        out: dict[str, str] = {}
        keys = list(keys)
        for start in range(0, len(keys), 500):
            chunk = keys[start : start + 500]
            marks = ",".join("?" * len(chunk))
            for row in self._conn.execute(
                f"SELECT key, error FROM jobs "
                f"WHERE key IN ({marks}) AND status = 'failed'",
                chunk,
            ):
                out[row["key"]] = row["error"] or ""
        return out

    def failures(self, fingerprint: str) -> dict[str, str]:
        """Error text by job key for failed jobs."""
        return {
            row["key"]: row["error"] or ""
            for row in self._conn.execute(
                "SELECT key, error FROM jobs "
                "WHERE campaign = ? AND status = 'failed'",
                (fingerprint,),
            )
        }

    def campaigns(self) -> list[dict]:
        """Summary row per stored campaign (for ``campaign status``)."""
        out = []
        for row in self._conn.execute(
            "SELECT fingerprint, name, instructions FROM campaigns ORDER BY name"
        ):
            entry = {
                "fingerprint": row["fingerprint"],
                "name": row["name"],
                "instructions": int(row["instructions"]),
            }
            entry.update(self.counts(row["fingerprint"]))
            out.append(entry)
        return out
