"""Paper-figure reporting straight from the campaign store.

Everything here is a pure query: no simulation, no randomness, no
wall-clock — the same store contents always render byte-identical
output.  That property is load-bearing: the resume tests compare the
report of an interrupted-then-resumed campaign against an uninterrupted
one byte for byte.

Three views:

* :func:`status_report` — job lifecycle counts (what ``campaign status``
  prints), per campaign and per core count;
* :func:`campaign_report` — the paper's aggregate tables: per core count,
  one row per variant with geometric-mean unfairness, weighted/harmonic
  speedup and AST/request plus the worst-case latency, alongside the
  published Table 4 numbers where the variant is one of the paper's five
  schedulers.  Markdown or CSV.  A Marking-Cap campaign (variants
  ``c=1..c=N, no-c``) *is* Figure 11 in this rendering; a multi-core
  campaign is the 4/8/16-core scaling comparison of Figures 8/10.
* :func:`export_rows` / :func:`export_text` — the raw per-job table
  (one row per simulation with headline metrics) as CSV or JSON for
  downstream tooling.
"""

from __future__ import annotations

import csv
import io
import json
import time
from typing import Any

from ..experiments.paper_values import TABLE4
from ..metrics.summary import WorkloadResult, geomean
from .spec import CampaignSpec
from .store import ResultStore

__all__ = [
    "campaign_report",
    "export_rows",
    "export_text",
    "status_report",
    "summary_table",
]

_METRICS = ("unfairness", "wspeedup", "hspeedup", "ast", "wc_latency")


def _fmt(value: float) -> str:
    return format(value, ".4g")


def status_report(
    spec: CampaignSpec, store: ResultStore, *, now: float | None = None
) -> str:
    """Lifecycle counts for one campaign (registers nothing, runs nothing).

    Counts come from the expanded grid's job keys, not the campaign
    foreign key, so cells shared with another campaign (same content
    hash) are counted as done here too.  In-flight work is its own
    bucket: jobs under a live work-queue lease render as ``leased`` with
    the holding worker and lease age instead of being lumped into
    ``pending`` (with no leases the output is byte-identical to the
    pre-queue format — the resume byte-identity tests rely on that).
    ``now`` pins the clock the lease ages are rendered against.
    """
    if now is None:
        now = time.time()
    fingerprint = spec.fingerprint()
    grid = spec.expand()
    statuses = store.statuses(job.key for job in grid)
    done = sum(1 for s in statuses.values() if s == "done")
    failed = sum(1 for s in statuses.values() if s == "failed")
    pending = len(grid) - done - failed
    leases = store.leases_for((job.key for job in grid), now=now)
    live = {
        key: lease
        for key, lease in leases.items()
        if not lease["expired"] and statuses.get(key) != "done"
    }
    expired = sum(1 for lease in leases.values() if lease["expired"])
    reclaimed = store.reclaim_count(fingerprint)
    jobs_line = (
        f"  jobs: {done}/{len(grid)} done, {pending - len(live)} pending, "
        f"{failed} failed"
    )
    if live:
        jobs_line += f", {len(live)} leased"
    if expired or reclaimed:
        jobs_line += f" ({expired} leases expired, {reclaimed} reclaimed)"
    lines = [
        f"campaign {spec.name!r} (fingerprint {fingerprint[:12]})",
        jobs_line,
    ]
    for key in sorted(live):
        lease = live[key]
        lines.append(
            f"  leased {key[:16]}: worker {lease['worker_id']}, "
            f"age {max(0.0, now - lease['claimed_at']):.0f}s, "
            f"attempt {lease['attempt']}"
        )
    if not statuses:
        lines.append(
            f"  not registered in this store yet ({len(grid)} jobs on expansion)"
        )
        return "\n".join(lines)
    for cores in spec.num_cores:
        subset = [job for job in grid if job.num_cores == cores]
        cores_done = sum(1 for job in subset if statuses.get(job.key) == "done")
        lines.append(f"  {cores}-core: {cores_done}/{len(subset)} done")
    failures = store.failures_for(
        job.key for job in grid if statuses.get(job.key) == "failed"
    )
    for key, error in sorted(failures.items())[:5]:
        lines.append(f"  failed {key[:16]}: {error.splitlines()[0] if error else '?'}")
    return "\n".join(lines)


def summary_table(
    spec: CampaignSpec, store: ResultStore
) -> dict[int, dict[str, dict[str, float]]]:
    """``{num_cores: {variant: {metric: value}}}`` over completed jobs.

    Geometric means over every (seed × mix) sample per variant, matching
    :meth:`repro.experiments.aggregate.AggregateResult.summary`; variants
    with no completed jobs for a core count are omitted.
    """
    grid = spec.expand()
    results = store.results_for(job.key for job in grid)
    out: dict[int, dict[str, dict[str, float]]] = {}
    for cores in spec.num_cores:
        per_variant: dict[str, list[WorkloadResult]] = {}
        for job in grid:
            if job.num_cores != cores:
                continue
            result = results.get(job.key)
            if result is not None:
                per_variant.setdefault(job.variant, []).append(result)
        table: dict[str, dict[str, float]] = {}
        for variant in (v.label for v in spec.variants):
            samples = per_variant.get(variant)
            if not samples:
                continue
            table[variant] = {
                "unfairness": geomean([r.unfairness for r in samples]),
                "wspeedup": geomean([r.weighted_speedup for r in samples]),
                "hspeedup": geomean([r.hmean_speedup for r in samples]),
                "ast": geomean(
                    [max(r.avg_stall_per_request, 1e-9) for r in samples]
                ),
                "wc_latency": float(max(r.worst_case_latency for r in samples)),
                "samples": float(len(samples)),
            }
        if table:
            out[cores] = table
    return out


def campaign_report(
    spec: CampaignSpec, store: ResultStore, fmt: str = "markdown"
) -> str:
    """The campaign's aggregate tables as markdown (or CSV)."""
    if fmt not in ("markdown", "csv"):
        raise ValueError(f"unknown report format {fmt!r}; use markdown or csv")
    tables = summary_table(spec, store)
    if fmt == "csv":
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(["num_cores", "variant", "samples", *_METRICS])
        for cores in sorted(tables):
            for variant, vals in tables[cores].items():
                writer.writerow(
                    [cores, variant, int(vals["samples"])]
                    + [_fmt(vals[m]) for m in _METRICS]
                )
        return buf.getvalue()

    lines = [f"# Campaign {spec.name}", ""]
    if spec.description:
        lines += [spec.description, ""]
    grid = spec.expand()
    statuses = store.statuses(job.key for job in grid)
    done = sum(1 for s in statuses.values() if s == "done")
    lines += [
        f"{done}/{len(grid)} jobs done "
        f"({spec.resolved_instructions()} instructions/thread, "
        f"seeds {list(spec.seeds)})",
        "",
    ]
    lines += _manifest_lines(spec, store)
    for cores in sorted(tables):
        table = tables[cores]
        paper = TABLE4.get(cores, {})
        with_paper = any(variant in paper for variant in table)
        lines.append(f"## {cores}-core system")
        lines.append("")
        header = ["variant", "mixes", "unfairness", "wspeedup", "hspeedup", "AST/req", "worst-case lat"]
        if with_paper:
            header += ["unf (paper)", "ws (paper)", "hs (paper)"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for variant, vals in table.items():
            row = [
                variant,
                str(int(vals["samples"])),
                _fmt(vals["unfairness"]),
                _fmt(vals["wspeedup"]),
                _fmt(vals["hspeedup"]),
                _fmt(vals["ast"]),
                str(int(vals["wc_latency"])),
            ]
            if with_paper:
                p = paper.get(variant, {})
                row += [
                    _fmt(p["unfairness"]) if p else "-",
                    _fmt(p["wspeedup"]) if p else "-",
                    _fmt(p["hspeedup"]) if p else "-",
                ]
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    if len(tables) > 1:
        lines.append("## Scaling (PAR-BS-style headline vs core count)")
        lines.append("")
        lines.append("| num_cores | " + " | ".join(v.label for v in spec.variants) + " |")
        lines.append("|" + "|".join("---" for _ in range(len(spec.variants) + 1)) + "|")
        for cores in sorted(tables):
            cells = [
                _fmt(tables[cores][v.label]["unfairness"])
                if v.label in tables[cores]
                else "-"
                for v in spec.variants
            ]
            lines.append(f"| {cores} | " + " | ".join(cells) + " |")
        lines.append("")
        lines.append("(cells are geomean unfairness; lower is better)")
        lines.append("")
    return "\n".join(lines)


def _manifest_lines(spec: CampaignSpec, store: ResultStore) -> list[str]:
    """The ``## Run manifest`` section: stored manifest if the campaign
    ran under schema v3+, else computed fresh.  Manifests carry no
    timestamps, so this stays deterministic for the byte-identity tests
    (same spec + same environment -> same bytes)."""
    from .manifest import build_manifest

    manifest = store.manifest(spec.fingerprint())
    source = "stored"
    if manifest is None:
        manifest = build_manifest(spec)
        source = "computed"
    lines = ["## Run manifest", ""]
    for field in (
        "manifest_version",
        "fingerprint",
        "schema_version",
        "backend",
        "instructions",
        "seeds",
        "num_cores",
        "variants",
        "jobs_total",
    ):
        lines.append(f"- {field}: {manifest.get(field)}")
    traced = manifest.get("trace_files") or {}
    if traced:
        lines.append(f"- decoder: {manifest.get('decoder')}")
        for alias in sorted(traced):
            lines.append(f"- trace_files {alias}: {traced[alias]}")
    env = manifest.get("env") or {}
    for knob in sorted(env):
        lines.append(f"- env {knob}: {env[knob]}")
    lines += [f"- source: {source}", ""]
    return lines


def export_rows(spec: CampaignSpec, store: ResultStore) -> list[dict[str, Any]]:
    """One dict per completed job, in grid order, with headline metrics."""
    grid = spec.expand()
    results = store.results_for(job.key for job in grid)
    rows = []
    for job in grid:
        result = results.get(job.key)
        if result is None:
            continue
        rows.append(
            {
                "key": job.key,
                "num_cores": job.num_cores,
                "seed": job.seed,
                "mix_index": job.mix_index,
                "workload": "+".join(job.workload),
                "variant": job.variant,
                "scheduler": job.scheduler,
                "unfairness": result.unfairness,
                "wspeedup": result.weighted_speedup,
                "hspeedup": result.hmean_speedup,
                "ast": result.avg_stall_per_request,
                "wc_latency": result.worst_case_latency,
                "sim_cycles": result.sim_cycles,
                "row_hit_rate": result.row_hit_rate,
            }
        )
    return rows


def export_text(spec: CampaignSpec, store: ResultStore, fmt: str = "csv") -> str:
    """Per-job export as CSV (default) or JSON lines.

    The JSON form leads with one ``{"manifest": ...}`` object (run
    provenance; see :mod:`repro.campaign.manifest`) followed by one
    object per completed job.  The CSV form is rows only — its header
    and shape are frozen for downstream tooling.
    """
    rows = export_rows(spec, store)
    if fmt == "json":
        from .manifest import build_manifest

        manifest = store.manifest(spec.fingerprint()) or build_manifest(spec)
        head = json.dumps({"manifest": manifest}, sort_keys=True)
        return "\n".join([head] + [json.dumps(row, sort_keys=True) for row in rows]) + "\n"
    if fmt != "csv":
        raise ValueError(f"unknown export format {fmt!r}; use csv or json")
    buf = io.StringIO()
    fields = [
        "key", "num_cores", "seed", "mix_index", "workload", "variant",
        "scheduler", "unfairness", "wspeedup", "hspeedup", "ast",
        "wc_latency", "sim_cycles", "row_hit_rate",
    ]
    writer = csv.DictWriter(buf, fieldnames=fields, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()
