"""Declarative campaign specifications and their deterministic expansion.

A *campaign* is the unit the paper's aggregate results are built from: a
grid of scheduler variants × workload mixes × core counts × seeds, every
cell an independent simulation.  :class:`CampaignSpec` describes that
grid declaratively (loadable from TOML/JSON or built in code) and
:meth:`CampaignSpec.expand` turns it into an ordered list of
:class:`CampaignJob` descriptions, each keyed by a content hash of
everything the simulation depends on — the same fingerprint discipline as
:mod:`repro.sim.diskcache`, so a job's identity survives process
boundaries, interruptions and spec-file reorderings of unrelated axes.

Expansion is deterministic: the same spec always produces the same jobs
in the same order (mix sampling is seeded, see
:func:`repro.workloads.mixes.random_mixes`), which is what lets the
result store resume an interrupted campaign exactly.

Spec files are TOML (or JSON with the same shape)::

    name = "smoke"
    schedulers = ["FR-FCFS", "PAR-BS"]   # shorthand for kwarg-free variants
    marking_caps = [1, 5, "none"]        # expands PAR-BS into one variant/cap
    num_cores = [4]
    mix_count = 2                        # seeded random mixes per core count
    mix_seed = 42
    seeds = [0]                          # simulation seed axis
    instructions = 50000
    mixes = [["mcf", "libquantum", "omnetpp", "hmmer"],  # explicit extras
             "tmix1"]                    # or registered mix names

    [[variants]]                         # fully explicit variants
    label = "eslot"
    scheduler = "PAR-BS"
    kwargs = { batching = "eslot" }

External trace files enter a campaign as ``trace:<name>`` workload
entries — sample-library names, or aliases declared in a
``[trace_files]`` table::

    decoder = "dramsim2"                 # address bit-field layout
    mixes = [["trace:myapp", "trace:stream-hi", "mcf", "libquantum"]]

    [trace_files]
    myapp = "traces/myapp.k6.gz"         # alias -> path (hash computed)
    [trace_files.pinned]
    path = "traces/pinned.mase.gz"       # explicit pin: load fails if the
    sha256 = "3f0c..."                   # file's content drifted

Job identity is *content-addressed*: the job key hashes each trace
entry as ``trace:<sha256-of-decompressed-content>:<decoder>``, never as
an alias or path — so renaming, moving or recompressing a trace file
leaves stored results resumable, while any content change re-simulates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..config import SystemConfig, baseline_system
from ..sim.diskcache import SIM_FINGERPRINT, content_key
from ..sim.factory import make_scheduler
from ..workloads.mixes import (
    CASE_STUDY_1,
    CASE_STUDY_2,
    FIG8_SAMPLE_MIXES,
    SIXTEEN_CORE_MIXES,
    get_mix,
    random_mixes,
)
from ..workloads.profiles import PROFILES

_TRACE_PREFIX = "trace:"

__all__ = [
    "CampaignJob",
    "CampaignSpec",
    "Variant",
    "job_key",
    "load_spec",
    "spec_from_dict",
]


def _freeze_kwargs(kwargs: Mapping[str, Any] | Iterable[tuple[str, Any]]) -> tuple:
    items = kwargs.items() if isinstance(kwargs, Mapping) else kwargs
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class Variant:
    """One scheduler configuration under test, e.g. ``PAR-BS`` with a
    specific Marking-Cap.  ``kwargs`` is a sorted tuple of pairs so the
    variant is hashable and content-hash stable."""

    label: str
    scheduler: str
    kwargs: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("variant label must be non-empty")
        object.__setattr__(self, "kwargs", _freeze_kwargs(self.kwargs))
        # Fail at spec time, not mid-campaign: instantiating the scheduler
        # validates both the name and the keyword arguments.
        try:
            make_scheduler(self.scheduler, 2, **self.kwargs_dict())
        except (ValueError, TypeError) as exc:
            raise ValueError(
                f"variant {self.label!r} is not instantiable: {exc}"
            ) from None

    def kwargs_dict(self) -> dict[str, Any]:
        return dict(self.kwargs)


@dataclass(frozen=True)
class CampaignJob:
    """One cell of the expanded grid: a single independent simulation.

    ``key`` is the full (untruncated) content hash of every input the
    simulation depends on; it is the job's primary key in the result
    store and stays stable across processes and campaign re-expansions.
    """

    key: str
    num_cores: int
    workload: tuple[str, ...]
    mix_index: int  # position in the per-core-count mix list
    variant: str
    scheduler: str
    kwargs: tuple[tuple[str, Any], ...]
    seed: int
    instructions: int
    # External trace wiring carried to the worker: (alias, path) pairs
    # for the spec's ``[trace_files]`` table and the decoder layout.
    # ``key`` already pins the traces by content hash; these are the
    # *locations* the worker reads the bytes from.
    trace_files: tuple[tuple[str, str], ...] = ()
    decoder: str = "dramsim2"

    def kwargs_dict(self) -> dict[str, Any]:
        return dict(self.kwargs)

    def config(self) -> SystemConfig:
        return baseline_system(self.num_cores)


def job_key(
    config: SystemConfig,
    workload: Iterable[str],
    scheduler: str,
    kwargs: Mapping[str, Any] | Iterable[tuple[str, Any]],
    instructions: int,
    seed: int,
) -> str:
    """Content hash identifying one simulation (the store's primary key).

    Hashes exactly the fields :meth:`repro.sim.runner.ExperimentRunner._job_key`
    hashes — a simulation's identity is the same whether it is named by
    the runner, the pool or the campaign store.
    """
    return content_key(
        [
            SIM_FINGERPRINT,
            config,
            list(workload),
            scheduler,
            sorted(_freeze_kwargs(kwargs)),
            instructions,
            seed,
        ]
    )


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative experiment campaign.

    The grid is ``num_cores × seeds × mixes × variants``; per core count
    the mix list is (in order) the 4-core case studies, the paper's named
    sample mixes, explicit ``mixes`` whose length matches, then
    ``mix_count`` seeded category-balanced random mixes.
    """

    name: str
    variants: tuple[Variant, ...]
    num_cores: tuple[int, ...] = (4,)
    mix_count: int | None = None  # None = paper-scaled default; 0 = none
    mix_seed: int = 42
    mixes: tuple[tuple[str, ...], ...] = ()
    include_sample_mixes: bool = False
    include_case_studies: bool = False
    seeds: tuple[int, ...] = (0,)
    instructions: int | None = None  # None = default_instructions()
    description: str = ""
    # External trace files: (alias, path, sha256) triples.  An empty
    # sha256 is resolved from the file at spec-construction time; a
    # provided one is *verified* against the file, so a spec pinning a
    # hash fails at load when the bytes drifted.
    trace_files: tuple[tuple[str, str, str], ...] = ()
    decoder: str = "dramsim2"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        object.__setattr__(self, "variants", tuple(self.variants))
        object.__setattr__(self, "num_cores", tuple(self.num_cores))
        object.__setattr__(
            self, "mixes", tuple(tuple(m) for m in self.mixes)
        )
        object.__setattr__(self, "seeds", tuple(self.seeds))
        if not self.variants:
            raise ValueError("campaign needs at least one variant")
        labels = [v.label for v in self.variants]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate variant labels in {labels}")
        if not self.num_cores or any(c < 1 for c in self.num_cores):
            raise ValueError("num_cores must be a non-empty list of positives")
        if not self.seeds:
            raise ValueError("seeds must be non-empty")
        if self.mix_count is not None and self.mix_count < 0:
            raise ValueError("mix_count must be >= 0")
        if self.instructions is not None and self.instructions < 1:
            raise ValueError("instructions must be positive")
        object.__setattr__(
            self, "trace_files", self._resolve_trace_files(self.trace_files)
        )
        unknown = {
            b
            for mix in self.mixes
            for b in mix
            if not b.startswith(_TRACE_PREFIX) and b not in PROFILES
        }
        if unknown:
            raise ValueError(f"unknown benchmarks in mixes: {sorted(unknown)}")
        aliases = {alias for alias, _path, _sha in self.trace_files}
        from ..traces.library import SAMPLE_TRACES

        unknown_traces = {
            b
            for mix in self.mixes
            for b in mix
            if b.startswith(_TRACE_PREFIX)
            and b[len(_TRACE_PREFIX):] not in aliases
            and b[len(_TRACE_PREFIX):] not in SAMPLE_TRACES
        }
        if unknown_traces:
            raise ValueError(
                f"unknown traces in mixes: {sorted(unknown_traces)} "
                f"(declare them in [trace_files] or use a sample trace: "
                f"{', '.join(sorted(SAMPLE_TRACES))})"
            )
        usable = {len(m) for m in self.mixes}
        cores = set(self.num_cores)
        has_generated = self.mix_count != 0 or self.include_sample_mixes or self.include_case_studies
        if not has_generated and not usable & cores:
            raise ValueError(
                "campaign has no mixes: mix_count=0 and no explicit mix "
                f"matches num_cores={sorted(cores)}"
            )

    # -- external traces -----------------------------------------------------
    @staticmethod
    def _resolve_trace_files(
        entries: Iterable[tuple[str, str, str]],
    ) -> tuple[tuple[str, str, str], ...]:
        """Fill in (and verify) content hashes for the trace-file table."""
        from ..traces.source import trace_content_sha256

        resolved = []
        for alias, path, sha256 in entries:
            if not Path(path).exists():
                raise ValueError(
                    f"trace_files[{alias!r}]: file not found: {path}"
                )
            actual = trace_content_sha256(path)
            if sha256 and actual != sha256:
                raise ValueError(
                    f"trace_files[{alias!r}]: {path} content hash "
                    f"{actual[:12]}... does not match the spec's pinned "
                    f"{sha256[:12]}..."
                )
            resolved.append((alias, str(path), actual))
        return tuple(resolved)

    def trace_hashes(self) -> dict[str, str]:
        """Content hash (sha256) per trace alias the campaign references:
        the ``[trace_files]`` table plus any sample-library names used in
        mixes.  Sample hashes come from the library's pinned registry —
        no file access — except unpinned samples, which are generated on
        demand and hashed."""
        hashes = {alias: sha for alias, _path, sha in self.trace_files}
        from ..traces.library import SAMPLE_TRACES

        for cores in self.num_cores:
            for mix in self.mixes_for(cores):
                for entry in mix:
                    if not entry.startswith(_TRACE_PREFIX):
                        continue
                    name = entry[len(_TRACE_PREFIX):]
                    if name in hashes:
                        continue
                    sample = SAMPLE_TRACES.get(name)
                    if sample is None:
                        continue  # __post_init__ already rejected unknowns
                    if sample.sha256:
                        hashes[name] = sample.sha256
                    else:
                        from ..traces.library import ensure_sample_trace
                        from ..traces.source import trace_content_sha256

                        hashes[name] = trace_content_sha256(
                            ensure_sample_trace(name)
                        )
        return hashes

    def _canonical_mix(
        self, mix: Iterable[str], hashes: Mapping[str, str]
    ) -> list[str]:
        """Mix entries for job-key hashing: ``trace:`` entries become
        ``trace:<sha256>:<decoder>`` (identity independent of alias and
        path); synthetic names pass through, keeping pre-existing job
        keys byte-identical."""
        return [
            f"{_TRACE_PREFIX}{hashes[b[len(_TRACE_PREFIX):]]}:{self.decoder}"
            if b.startswith(_TRACE_PREFIX)
            else b
            for b in mix
        ]

    # -- mixes ---------------------------------------------------------------
    def mixes_for(self, cores: int) -> list[list[str]]:
        """The ordered mix list for one core count (deterministic)."""
        out: list[list[str]] = []
        if self.include_case_studies and cores == 4:
            out.append(list(CASE_STUDY_1))
            out.append(list(CASE_STUDY_2))
        if self.include_sample_mixes:
            if cores == 4:
                out.extend(list(m) for m in FIG8_SAMPLE_MIXES)
            elif cores == 16:
                out.extend(list(m) for m in SIXTEEN_CORE_MIXES.values())
        out.extend(list(m) for m in self.mixes if len(m) == cores)
        if self.mix_count != 0:
            # Local import: aggregate.py imports this module back.
            from ..experiments.aggregate import default_workload_count

            count = (
                self.mix_count
                if self.mix_count is not None
                else default_workload_count(cores)
            )
            out.extend(random_mixes(cores, count=count, seed=self.mix_seed))
        return out

    # -- identity ------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable canonical form (spec files round-trip).

        Trace keys appear only when used, so specs without traces
        serialize — and fingerprint — exactly as before they existed.
        """
        data: dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "variants": [
                {
                    "label": v.label,
                    "scheduler": v.scheduler,
                    "kwargs": {k: val for k, val in v.kwargs},
                }
                for v in self.variants
            ],
            "num_cores": list(self.num_cores),
            "mix_count": self.mix_count,
            "mix_seed": self.mix_seed,
            "mixes": [list(m) for m in self.mixes],
            "include_sample_mixes": self.include_sample_mixes,
            "include_case_studies": self.include_case_studies,
            "seeds": list(self.seeds),
            "instructions": self.instructions,
        }
        if self.trace_files:
            data["trace_files"] = {
                alias: {"path": path, "sha256": sha}
                for alias, path, sha in self.trace_files
            }
        if self.decoder != "dramsim2":
            data["decoder"] = self.decoder
        return data

    def fingerprint(self) -> str:
        """Content hash identifying this spec (the store's campaign key).

        The resolved instruction count is hashed in, so the "same" spec
        under a different ``REPRO_SCALE`` is a different campaign — its
        results are not interchangeable.  Trace files are hashed by
        *content* (paths stripped), so relocating a trace file leaves
        the campaign identity — and its stored results — intact.
        """
        data = self.to_dict()
        if "trace_files" in data:
            data["trace_files"] = {
                alias: {"sha256": entry["sha256"]}
                for alias, entry in data["trace_files"].items()
            }
        return content_key([data, self.resolved_instructions()])

    def resolved_instructions(self) -> int:
        from ..sim.runner import default_instructions

        return self.instructions or default_instructions()

    # -- expansion -----------------------------------------------------------
    def expand(self) -> list[CampaignJob]:
        """The full deterministic job grid, in canonical order.

        Order is cores-major, then seed, then mix, then variant — so all
        variants of one mix are adjacent (the grouping the reports use).
        """
        instructions = self.resolved_instructions()
        hashes = self.trace_hashes()
        carried = tuple((alias, path) for alias, path, _sha in self.trace_files)
        jobs: list[CampaignJob] = []
        for cores in self.num_cores:
            config = baseline_system(cores)
            mixes = self.mixes_for(cores)
            for seed in self.seeds:
                for mix_index, mix in enumerate(mixes):
                    for variant in self.variants:
                        jobs.append(
                            CampaignJob(
                                key=job_key(
                                    config,
                                    self._canonical_mix(mix, hashes),
                                    variant.scheduler,
                                    variant.kwargs,
                                    instructions,
                                    seed,
                                ),
                                num_cores=cores,
                                workload=tuple(mix),
                                mix_index=mix_index,
                                variant=variant.label,
                                scheduler=variant.scheduler,
                                kwargs=variant.kwargs,
                                seed=seed,
                                instructions=instructions,
                                trace_files=carried,
                                decoder=self.decoder,
                            )
                        )
        return jobs

    def describe(self) -> str:
        """Dry-run summary: the grid's shape and size, no simulation."""
        lines = [
            f"campaign {self.name!r} (fingerprint {self.fingerprint()[:12]})",
            f"  instructions/thread: {self.resolved_instructions()}",
            f"  variants ({len(self.variants)}): "
            + ", ".join(v.label for v in self.variants),
            f"  seeds: {list(self.seeds)}",
        ]
        total = 0
        for cores in self.num_cores:
            mixes = self.mixes_for(cores)
            cell = len(mixes) * len(self.variants) * len(self.seeds)
            total += cell
            lines.append(f"  {cores}-core: {len(mixes)} mixes -> {cell} jobs")
        lines.append(f"  total: {total} jobs")
        return "\n".join(lines)


# -- spec files ---------------------------------------------------------------
_CAP_NONE = ("none", "nocap", "no-cap", "null")


def spec_from_dict(data: Mapping[str, Any]) -> CampaignSpec:
    """Build a validated spec from a plain dict (TOML/JSON shape).

    ``schedulers`` is shorthand for kwarg-free variants; ``marking_caps``
    expands the PAR-BS entry into one variant per cap (use ``"none"`` for
    the uncapped point, matching Figure 11's x-axis).  A string entry in
    ``mixes`` names a registered mix (resolved via
    :func:`repro.workloads.mixes.get_mix`, which raises a did-you-mean
    error on typos); ``[trace_files]`` maps aliases onto trace files as
    a bare path or a ``{path, sha256}`` pin.
    """
    data = dict(data)
    if "mixes" in data:
        data["mixes"] = [
            get_mix(m) if isinstance(m, str) else m for m in data["mixes"] or []
        ]
    trace_files: list[tuple[str, str, str]] = []
    for alias, entry in (data.pop("trace_files", None) or {}).items():
        if isinstance(entry, str):
            trace_files.append((str(alias), entry, ""))
        elif isinstance(entry, Mapping) and entry.get("path"):
            trace_files.append(
                (str(alias), str(entry["path"]), str(entry.get("sha256", "")))
            )
        else:
            raise ValueError(
                f"trace_files[{alias!r}] must be a path string or a "
                f"{{path, sha256}} table, got {entry!r}"
            )
    decoder = str(data.pop("decoder", "dramsim2"))
    variants: list[Variant] = []
    caps = data.pop("marking_caps", None)
    for name in data.pop("schedulers", []) or []:
        if caps and str(name).strip().lower() in ("par-bs", "parbs"):
            for cap in caps:
                if isinstance(cap, str) and cap.strip().lower() in _CAP_NONE:
                    cap = None
                label = f"c={cap}" if cap is not None else "no-c"
                variants.append(
                    Variant(label, "PAR-BS", (("marking_cap", cap),))
                )
        else:
            variants.append(Variant(str(name), str(name)))
    if caps and not any(v.scheduler.lower().startswith("par") for v in variants):
        raise ValueError("marking_caps requires PAR-BS in schedulers")
    for entry in data.pop("variants", []) or []:
        scheduler = entry.get("scheduler")
        if not scheduler:
            raise ValueError(f"variant entry missing 'scheduler': {entry!r}")
        variants.append(
            Variant(
                str(entry.get("label") or scheduler),
                str(scheduler),
                _freeze_kwargs(entry.get("kwargs", {})),
            )
        )
    known = {
        "name",
        "description",
        "num_cores",
        "mix_count",
        "mix_seed",
        "mixes",
        "include_sample_mixes",
        "include_case_studies",
        "seeds",
        "instructions",
    }
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown campaign spec keys {sorted(unknown)}; known: "
            f"{sorted(known | {'schedulers', 'marking_caps', 'variants'})}"
        )
    kwargs: dict[str, Any] = {k: data[k] for k in known & set(data)}
    if "num_cores" in kwargs and isinstance(kwargs["num_cores"], int):
        kwargs["num_cores"] = (kwargs["num_cores"],)
    if "seeds" in kwargs and isinstance(kwargs["seeds"], int):
        kwargs["seeds"] = (kwargs["seeds"],)
    if not kwargs.get("name"):
        raise ValueError("campaign spec needs a 'name'")
    return CampaignSpec(
        variants=tuple(variants),
        trace_files=tuple(trace_files),
        decoder=decoder,
        **kwargs,
    )


def load_spec(path: str | Path) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".json":
        return spec_from_dict(json.loads(text))
    try:
        import tomllib
    except ImportError as exc:  # pragma: no cover - Python < 3.11
        raise RuntimeError(
            "TOML campaign specs need Python 3.11+ (tomllib); "
            "use a .json spec instead"
        ) from exc
    return spec_from_dict(tomllib.loads(text))
