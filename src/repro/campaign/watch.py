"""Live campaign progress: the ``campaign watch`` view.

Everything here is a pure query over the store (no simulation), built
from two schema-v3 surfaces: the ``progress`` table's latest-attempt
heartbeat rows (worker, wall time, throughput, per-job metrics blob) and
the campaign row's merged operational-metrics snapshot.

The merged snapshot (:func:`merged_metrics`) namespaces three kinds of
truth into one registry:

* ``sim.*`` — the deterministic per-job counters
  (:func:`repro.obs.metrics.job_metrics`) summed over every completed
  job.  Pure functions of the job grid, so a serial run and a
  ``--jobs N`` run of the same campaign merge to **identical** ``sim.*``
  values — that equality is CI-gated.
* ``ops.*`` — the campaign's stored operational snapshot (cache traffic,
  pool incidents, store retries, chaos injections): honest telemetry,
  never compared across runs.
* ``wall.*`` — worker-measured wall-time distributions.  Explicitly
  excluded from any determinism comparison.

The first two lines of :func:`watch_report` are stable (tests and CI
grep them); rate/ETA lines appear only while jobs are pending and
wall-clock data exists.
"""

from __future__ import annotations

import time

from ..obs.metrics import MetricsRegistry
from .spec import CampaignSpec
from .store import ResultStore

__all__ = ["merged_metrics", "watch_counts", "watch_report"]

# Completion-rate estimation window: the N most recent completions.
_RATE_WINDOW = 10


def watch_counts(spec: CampaignSpec, store: ResultStore) -> dict:
    """Lifecycle counts plus latest-attempt progress rows for one campaign.

    ``done``/``failed``/``pending`` come straight from the jobs table
    (exactly what ``campaign status`` reports); ``retrying`` counts jobs
    whose latest heartbeat is a retry and which have not yet resolved.
    """
    grid = spec.expand()
    statuses = store.statuses(job.key for job in grid)
    done = sum(1 for s in statuses.values() if s == "done")
    failed = sum(1 for s in statuses.values() if s == "failed")
    progress = store.progress_for(job.key for job in grid)
    retrying = sum(
        1
        for job in grid
        if statuses.get(job.key) not in ("done", "failed")
        and (row := progress.get(job.key)) is not None
        and row["status"] == "retrying"
    )
    leases = store.leases_for(job.key for job in grid)
    leased = sum(
        1
        for key, lease in leases.items()
        if not lease["expired"] and statuses.get(key) != "done"
    )
    expired = sum(1 for lease in leases.values() if lease["expired"])
    return {
        "total": len(grid),
        "done": done,
        "failed": failed,
        "pending": len(grid) - done - failed,
        "retrying": retrying,
        # Work-queue visibility (schema v4): live leases held by workers,
        # leases past their deadline awaiting reclamation, and how many
        # leases this campaign has reclaimed from dead workers so far.
        # ``pending`` keeps its grid-minus-resolved meaning (the CLI
        # watch loop exits on it); leased jobs are a subset of pending.
        "leased": leased,
        "expired": expired,
        "reclaimed": store.reclaim_count(spec.fingerprint()),
        "leases": leases,
        "statuses": statuses,
        "progress": progress,
    }


def _prefixed(snapshot: dict, prefix: str) -> dict:
    """A snapshot with every metric name prefixed (for namespace merges)."""
    return {
        "counters": {
            prefix + name: value
            for name, value in snapshot.get("counters", {}).items()
        },
        "gauges": {
            prefix + name: value
            for name, value in snapshot.get("gauges", {}).items()
        },
        "histograms": {
            prefix + name: data
            for name, data in snapshot.get("histograms", {}).items()
        },
    }


def merged_metrics(spec: CampaignSpec, store: ResultStore) -> MetricsRegistry:
    """One registry holding the campaign's ``sim.*``/``ops.*``/``wall.*``
    metrics (see the module docstring for what may be compared)."""
    registry = MetricsRegistry()
    counts = watch_counts(spec, store)
    for row in counts["progress"].values():
        if row["status"] != "done":
            continue
        blob = row["metrics"]
        if blob:
            for name, value in blob.items():
                registry.counter(name).inc(value)
        if row["wall_time_s"] is not None:
            registry.histogram("wall.job_s").observe(row["wall_time_s"])
    ops = store.metrics(spec.fingerprint())
    if ops is not None:
        registry.merge(_prefixed(ops, "ops."))
    # Live queue state straight from the campaign row: unlike the stored
    # ops snapshot (merged only when a run finalizes), the reclaim count
    # is current even while workers are mid-drain.
    reclaims = store.reclaim_count(spec.fingerprint())
    if reclaims:
        registry.gauge("ops.queue.reclaims").set(reclaims)
    return registry


def watch_report(
    spec: CampaignSpec, store: ResultStore, *, now: float | None = None
) -> str:
    """One snapshot of campaign progress, rendered for a terminal."""
    counts = watch_counts(spec, store)
    # Live leases render as their own bucket (and leave "pending" to
    # mean unclaimed work); with no leases the line is byte-identical to
    # the pre-queue format, which tests and CI grep as a substring.
    leased = counts["leased"]
    jobs_line = (
        f"  jobs: {counts['done']}/{counts['total']} done, "
        f"{counts['pending'] - leased} pending, {counts['failed']} failed, "
        f"{counts['retrying']} retrying"
    )
    if leased:
        jobs_line += f", {leased} leased"
    if counts["expired"] or counts["reclaimed"]:
        jobs_line += (
            f" ({counts['expired']} leases expired, "
            f"{counts['reclaimed']} reclaimed)"
        )
    lines = [
        f"campaign {spec.name!r} (fingerprint {spec.fingerprint()[:12]})",
        jobs_line,
    ]
    # Rolling completion rate over the most recent heartbeat window.
    done_times = sorted(
        row["updated_at"]
        for row in counts["progress"].values()
        if row["status"] == "done" and row["updated_at"] is not None
    )
    if counts["pending"] and len(done_times) >= 2:
        window = done_times[-_RATE_WINDOW:]
        span = window[-1] - window[0]
        if span > 0:
            rate = (len(window) - 1) / span
            eta = counts["pending"] / rate
            age = (now if now is not None else time.time()) - window[-1]
            lines.append(
                f"  rate: {rate * 60:.1f} jobs/min, ETA ~{eta:.0f}s "
                f"(last completion {age:.0f}s ago)"
            )
    grid = spec.expand()
    statuses = counts["statuses"]
    lines.append("  by variant:")
    for variant in (v.label for v in spec.variants):
        subset = [job for job in grid if job.variant == variant]
        variant_done = sum(
            1 for job in subset if statuses.get(job.key) == "done"
        )
        lines.append(f"    {variant}: {variant_done}/{len(subset)} done")
    snapshot = merged_metrics(spec, store).snapshot()
    if snapshot["counters"]:
        lines.append("  metrics:")
        for name, value in snapshot["counters"].items():
            lines.append(f"    {name} = {value}")
        wall = snapshot["histograms"].get("wall.job_s")
        if wall is not None and wall["count"]:
            lines.append(
                f"    wall.job_s: n={wall['count']} "
                f"sum={wall['sum']:.2f}s max={wall['max']:.2f}s"
            )
    return "\n".join(lines)
