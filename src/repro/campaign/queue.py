"""Lease/heartbeat/complete work-queue protocol over the result store.

This is the coordination layer that lets N independent worker processes
— on one or many hosts pointed at a shared SQLite database — drain a
single campaign without losing or duplicating a result:

* **claim** — atomically take the next runnable job (not ``done``, no
  live lease) under ``BEGIN IMMEDIATE``, so concurrent claimers
  serialize on SQLite's write lock and each job is handed to exactly one
  worker.  Claiming bumps the job's monotone ``lease_seq`` counter; that
  value is the worker's *fencing token* for this execution.
* **heartbeat** — renew the lease deadline periodically while the
  simulation runs (wired into the simulator's watchdog checkpoint via
  :func:`repro.sim.pool.sim_progress`).  Renewal is fenced: if the lease
  was reclaimed and re-issued, the stale worker gets ``None`` back and
  must abandon the job.
* **reclaim** — any worker may delete leases whose deadline passed
  (the owner died or hung) and re-claim the jobs.  The owning campaign's
  ``reclaims`` counter records each reissue for ``campaign watch``.
* **complete/fail** — commit the result *and* release the lease in one
  transaction, but only if the worker's fencing token still matches the
  live lease.  A reclaimed-then-resurrected worker can therefore never
  double-commit: its token is stale, the commit is rejected, and the
  result recorded by the reclaiming worker stands.

Everything here goes through the store's connection (WAL +
``busy_timeout`` already configured) and tolerates transient
``OperationalError`` — including chaos-injected ones — with jittered
capped backoff.
"""

from __future__ import annotations

import logging
import os
import random
import sqlite3
import time
import uuid
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..envknobs import read_float
from .serde import result_to_json
from .store import ResultStore

if TYPE_CHECKING:  # pragma: no cover
    from ..metrics.summary import WorkloadResult

__all__ = [
    "Lease",
    "LeaseQueue",
    "QUEUE_STATS",
    "default_heartbeat_s",
    "default_lease_s",
]

logger = logging.getLogger(__name__)

# Operational counters of this process's queue traffic, folded into the
# metrics plane as ``worker.*`` by
# :func:`repro.obs.metrics.collect_process_metrics`.
QUEUE_STATS = {
    "leases_claimed": 0,
    "leases_renewed": 0,
    "leases_expired": 0,
    "leases_reclaimed": 0,
    "leases_fenced": 0,
}

_DEFAULT_LEASE_S = 30.0
_TXN_RETRIES = 4
_TXN_BACKOFF_S = 0.05
_TXN_BACKOFF_MAX_S = 1.0
_CHUNK = 500


def default_lease_s() -> float:
    """Lease duration in seconds (``REPRO_LEASE_S``, default 30)."""
    return read_float("REPRO_LEASE_S", _DEFAULT_LEASE_S, floor=0.1)


def default_heartbeat_s(lease_s: float) -> float:
    """Heartbeat period (``REPRO_HEARTBEAT_S``, default a third of the
    lease — three missed beats before anyone may reclaim)."""
    return read_float("REPRO_HEARTBEAT_S", lease_s / 3.0, floor=0.05)


@dataclass(frozen=True)
class Lease:
    """One worker's live claim on one job.

    ``attempt`` is the fencing token: the job's ``lease_seq`` at claim
    time.  Completion/renewal succeed only while the (worker_id, attempt)
    pair matches the live lease row.
    """

    key: str
    worker_id: str
    attempt: int
    deadline: float


def _worker_id() -> str:
    return f"{os.uname().nodename}:{os.getpid()}:{uuid.uuid4().hex[:6]}"


class LeaseQueue:
    """Fenced work-queue over one campaign's jobs in a shared store."""

    def __init__(
        self,
        store: ResultStore,
        fingerprint: str,
        *,
        worker_id: str | None = None,
        lease_s: float | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.store = store
        self.fingerprint = fingerprint
        self.worker_id = worker_id or _worker_id()
        self.lease_s = lease_s if lease_s is not None else default_lease_s()
        self._clock = clock

    # -- transaction plumbing -------------------------------------------------
    def _txn(self, key: str, fn):
        """Run ``fn(conn)`` inside ``BEGIN IMMEDIATE``; retry transient
        ``OperationalError`` (lock contention, chaos injection) with
        jittered capped backoff, then re-raise."""
        conn = self.store._conn
        chaos = self.store.chaos
        for attempt in range(_TXN_RETRIES + 1):
            try:
                if chaos is not None:
                    chaos.sqlite_hiccup(key)
                if conn.in_transaction:  # pragma: no cover - defensive
                    conn.commit()
                conn.execute("BEGIN IMMEDIATE")
                try:
                    out = fn(conn)
                except BaseException:
                    if conn.in_transaction:
                        conn.execute("ROLLBACK")
                    raise
                conn.execute("COMMIT")
                return out
            except sqlite3.OperationalError as exc:
                if attempt >= _TXN_RETRIES:
                    raise
                delay = min(_TXN_BACKOFF_S * (2**attempt), _TXN_BACKOFF_MAX_S)
                delay *= 0.5 + random.random() * 0.5
                logger.warning(
                    "queue txn for %s hit %s; retrying in %.2fs",
                    key[:12],
                    exc,
                    delay,
                )
                time.sleep(delay)

    def _fenced_row(self, conn, lease: Lease):
        row = conn.execute(
            "SELECT worker_id, attempt FROM leases WHERE key = ?",
            (lease.key,),
        ).fetchone()
        if (
            row is None
            or row["worker_id"] != lease.worker_id
            or int(row["attempt"]) != lease.attempt
        ):
            return None
        return row

    # -- protocol -------------------------------------------------------------
    def claim_next(self, keys: Sequence[str]) -> Lease | None:
        """Atomically claim the first runnable job in ``keys`` order.

        Runnable means: registered, not ``done``, and carrying no live
        lease.  An *expired* lease on the key is reclaimed in the same
        transaction (its job is re-issued to this worker).  Returns
        ``None`` when every key is done or leased out to live workers.
        """

        def fn(conn):
            now = self._clock()
            for start in range(0, len(keys), _CHUNK):
                chunk = list(keys[start : start + _CHUNK])
                marks = ",".join("?" * len(chunk))
                status = {
                    row["key"]: row["status"]
                    for row in conn.execute(
                        f"SELECT key, status FROM jobs WHERE key IN ({marks})",
                        chunk,
                    )
                }
                held = {
                    row["key"]: row
                    for row in conn.execute(
                        f"SELECT * FROM leases WHERE key IN ({marks})", chunk
                    )
                }
                for key in chunk:
                    if status.get(key) in (None, "done"):
                        continue
                    stale = held.get(key)
                    if stale is not None:
                        if float(stale["lease_deadline"]) > now:
                            continue  # live lease; someone else is on it
                        conn.execute(
                            "DELETE FROM leases WHERE key = ?", (key,)
                        )
                        conn.execute(
                            "UPDATE campaigns SET reclaims = reclaims + 1 "
                            "WHERE fingerprint = ?",
                            (stale["campaign"],),
                        )
                        QUEUE_STATS["leases_expired"] += 1
                        QUEUE_STATS["leases_reclaimed"] += 1
                        logger.warning(
                            "reclaimed expired lease on %s from %s",
                            key[:12],
                            stale["worker_id"],
                        )
                    conn.execute(
                        "UPDATE jobs SET lease_seq = lease_seq + 1 "
                        "WHERE key = ?",
                        (key,),
                    )
                    seq = int(
                        conn.execute(
                            "SELECT lease_seq FROM jobs WHERE key = ?", (key,)
                        ).fetchone()["lease_seq"]
                    )
                    deadline = now + self.lease_s
                    conn.execute(
                        "INSERT INTO leases (key, campaign, worker_id, attempt,"
                        " claimed_at, heartbeat_at, lease_deadline) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?)",
                        (
                            key,
                            self.fingerprint,
                            self.worker_id,
                            seq,
                            now,
                            now,
                            deadline,
                        ),
                    )
                    QUEUE_STATS["leases_claimed"] += 1
                    return Lease(key, self.worker_id, seq, deadline)
            return None

        return self._txn("claim", fn)

    def heartbeat(self, lease: Lease) -> Lease | None:
        """Renew the lease deadline; ``None`` means fenced out (the lease
        was reclaimed and this worker must abandon the job)."""

        def fn(conn):
            if self._fenced_row(conn, lease) is None:
                QUEUE_STATS["leases_fenced"] += 1
                return None
            now = self._clock()
            deadline = now + self.lease_s
            conn.execute(
                "UPDATE leases SET heartbeat_at = ?, lease_deadline = ? "
                "WHERE key = ?",
                (now, deadline, lease.key),
            )
            QUEUE_STATS["leases_renewed"] += 1
            return replace(lease, deadline=deadline)

        return self._txn(lease.key, fn)

    def complete(
        self,
        lease: Lease,
        result: "WorkloadResult",
        wall_time_s: float | None = None,
    ) -> bool:
        """Fenced commit: persist the result and release the lease in one
        transaction iff the fencing token still matches.  Returns False
        (and changes nothing) for a stale worker."""

        def fn(conn):
            if self._fenced_row(conn, lease) is None:
                QUEUE_STATS["leases_fenced"] += 1
                logger.warning(
                    "fenced: stale worker %s may not commit %s",
                    lease.worker_id,
                    lease.key[:12],
                )
                return False
            conn.execute(
                "UPDATE jobs SET status = 'done', result_json = ?, "
                "error = NULL, attempts = attempts + 1, wall_time_s = ? "
                "WHERE key = ?",
                (result_to_json(result), wall_time_s, lease.key),
            )
            conn.execute("DELETE FROM leases WHERE key = ?", (lease.key,))
            return True

        return self._txn(lease.key, fn)

    def fail(self, lease: Lease, error: str) -> bool:
        """Fenced failure record (job stays retryable on future resumes)."""

        def fn(conn):
            if self._fenced_row(conn, lease) is None:
                QUEUE_STATS["leases_fenced"] += 1
                return False
            conn.execute(
                "UPDATE jobs SET status = 'failed', error = ?, "
                "attempts = attempts + 1 WHERE key = ?",
                (error[:2000], lease.key),
            )
            conn.execute("DELETE FROM leases WHERE key = ?", (lease.key,))
            return True

        return self._txn(lease.key, fn)

    def release(self, lease: Lease) -> bool:
        """Fenced release without touching job status (requeue path)."""

        def fn(conn):
            if self._fenced_row(conn, lease) is None:
                return False
            conn.execute("DELETE FROM leases WHERE key = ?", (lease.key,))
            return True

        return self._txn(lease.key, fn)

    def reclaim_expired(self) -> list[str]:
        """Delete every expired lease in the store (any campaign) and
        credit the owning campaigns' ``reclaims`` counters.  Returns the
        reclaimed job keys — now claimable again by anyone."""

        def fn(conn):
            now = self._clock()
            rows = conn.execute(
                "SELECT key, campaign, worker_id FROM leases "
                "WHERE lease_deadline <= ?",
                (now,),
            ).fetchall()
            for row in rows:
                conn.execute("DELETE FROM leases WHERE key = ?", (row["key"],))
                conn.execute(
                    "UPDATE campaigns SET reclaims = reclaims + 1 "
                    "WHERE fingerprint = ?",
                    (row["campaign"],),
                )
                logger.warning(
                    "reclaimed expired lease on %s from %s",
                    row["key"][:12],
                    row["worker_id"],
                )
            n = len(rows)
            QUEUE_STATS["leases_expired"] += n
            QUEUE_STATS["leases_reclaimed"] += n
            return [row["key"] for row in rows]

        return self._txn("reclaim", fn)

    def live_leases(self, keys: Iterable[str]) -> dict[str, dict]:
        """Lease rows for ``keys`` relative to this queue's clock."""
        return self.store.leases_for(keys, now=self._clock())
