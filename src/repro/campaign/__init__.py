"""Declarative, resumable experiment campaigns.

The paper's headline results are averages over large scheduler × mix ×
core-count × Marking-Cap grids.  This package turns those grids into
durable *campaigns*:

* :mod:`~repro.campaign.spec` — a declarative spec (TOML/JSON/dict)
  expanded deterministically into content-hash-keyed jobs;
* :mod:`~repro.campaign.store` — a SQLite (WAL) result store holding job
  lifecycle rows and full serialized
  :class:`~repro.metrics.summary.WorkloadResult` payloads, with
  schema-version migrations;
* :mod:`~repro.campaign.orchestrator` — runs only the jobs missing from
  the store, streams completions in transactionally (interrupt + rerun
  resumes exactly), and retries failed workers with capped backoff;
* :mod:`~repro.campaign.queue` / :mod:`~repro.campaign.worker` — the
  lease/heartbeat/complete work-queue protocol and the queue-consumer
  drain loop, so N independent ``campaign work`` processes (one or many
  hosts, one shared database) drain a single campaign with fenced,
  exactly-once result commits;
* :mod:`~repro.campaign.report` — regenerates the paper's aggregate
  tables (markdown/CSV) and raw per-job exports from the store without
  re-simulating anything;
* :mod:`~repro.campaign.manifest` — the run manifest: resolved backend,
  seeds, grid axes and ``REPRO_*`` knobs, pinned per campaign (no
  timestamps, so manifests are byte-reproducible);
* :mod:`~repro.campaign.watch` — live progress (``campaign watch``):
  lifecycle counts, completion rate/ETA, per-variant breakdown, and the
  merged ``sim.*``/``ops.*``/``wall.*`` metrics snapshot.

CLI: ``python -m repro campaign run|status|resume|watch|report|export``.
The ``aggregate``, ``sweep`` and ``table4`` experiments execute as
campaigns under the hood, so every figure pipeline is restartable and
queryable.
"""

from .manifest import MANIFEST_VERSION, build_manifest
from .orchestrator import RunStats, run_and_collect, run_campaign
from .queue import QUEUE_STATS, Lease, LeaseQueue
from .report import campaign_report, export_rows, export_text, status_report
from .serde import result_from_dict, result_from_json, result_to_dict, result_to_json
from .spec import CampaignJob, CampaignSpec, Variant, load_spec, spec_from_dict
from .store import SCHEMA_VERSION, STORE_STATS, ResultStore, default_db_path
from .watch import merged_metrics, watch_counts, watch_report
from .worker import LeaseLost, WorkerStats, drain_campaign

__all__ = [
    "CampaignJob",
    "CampaignSpec",
    "Lease",
    "LeaseLost",
    "LeaseQueue",
    "MANIFEST_VERSION",
    "QUEUE_STATS",
    "ResultStore",
    "RunStats",
    "WorkerStats",
    "SCHEMA_VERSION",
    "STORE_STATS",
    "Variant",
    "build_manifest",
    "campaign_report",
    "default_db_path",
    "drain_campaign",
    "export_rows",
    "export_text",
    "load_spec",
    "merged_metrics",
    "result_from_dict",
    "result_from_json",
    "result_to_dict",
    "result_to_json",
    "run_and_collect",
    "run_campaign",
    "spec_from_dict",
    "status_report",
    "watch_counts",
    "watch_report",
]
