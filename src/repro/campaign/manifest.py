"""Run manifests: the resolved provenance of one campaign execution.

A manifest answers "what exactly did this campaign run?" after the fact:
the spec fingerprint, the resolved backend and instruction budget, the
seed/core/variant axes, and every ``REPRO_*`` knob that was set in the
environment.  It is a pure function of the spec and the environment —
deliberately **no timestamps, hostnames or pids** — so a resumed run
under the same knobs writes byte-identical manifest JSON, and an
interrupted campaign's report matches a clean one's.

The orchestrator pins the manifest into the store at the start of every
``campaign run`` (schema v3, ``campaigns.manifest_json``); ``campaign
report``/``export`` embed the stored manifest when present and compute a
fresh one otherwise.
"""

from __future__ import annotations

import os
from typing import Mapping

from ..sim.verify import backend_from_env
from .spec import CampaignSpec
from .store import SCHEMA_VERSION

__all__ = ["MANIFEST_VERSION", "build_manifest"]

MANIFEST_VERSION = 1

# Environment knobs recorded verbatim when set.  Only knobs that change
# what a run computes or how it executes; pure-output paths
# (REPRO_CAMPAIGN_DB, trace destinations) are locations, not behavior,
# but are still useful provenance, so they are included too.
_ENV_KNOBS = (
    "REPRO_BACKEND",
    "REPRO_CACHE",
    "REPRO_CACHE_DIR",
    "REPRO_CACHE_MAX_MB",
    "REPRO_CAMPAIGN_DB",
    "REPRO_CHAOS",
    "REPRO_GUARD",
    "REPRO_JOBS",
    "REPRO_JOB_TIMEOUT_S",
    "REPRO_METRICS",
    "REPRO_SAMPLE_INTERVAL",
    "REPRO_SCALE",
    "REPRO_TRACE",
    "REPRO_TRACE_DIR",
    "REPRO_TRACE_EVENTS",
    "REPRO_TRACE_PERFETTO",
    "REPRO_WORKLOADS",
)


def build_manifest(
    spec: CampaignSpec, environ: Mapping[str, str] | None = None
) -> dict:
    """The manifest dict for running ``spec`` in the current environment."""
    env = os.environ if environ is None else environ
    grid = spec.expand()
    if environ is None:
        backend = backend_from_env()
    else:  # tests pass a mapping; mirror the knob's default
        backend = (env.get("REPRO_BACKEND") or "python").strip().lower()
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "campaign": spec.name,
        "fingerprint": spec.fingerprint(),
        "schema_version": SCHEMA_VERSION,
        "backend": backend,
        "instructions": spec.resolved_instructions(),
        "seeds": list(spec.seeds),
        "num_cores": sorted({job.num_cores for job in grid}),
        "variants": sorted({job.variant for job in grid}),
        "jobs_total": len(grid),
        "env": {knob: env[knob] for knob in _ENV_KNOBS if knob in env},
    }
    traced = spec.trace_hashes()
    if traced:
        # Content hashes, not paths: the manifest stays byte-identical when
        # a trace file is moved or recompressed, and changes when its
        # decompressed bytes do.
        manifest["trace_files"] = dict(sorted(traced.items()))
        manifest["decoder"] = spec.decoder
    return manifest
