"""Resumable campaign execution on top of the work queue and the store.

The orchestrator is deliberately thin: a campaign spec expands to a job
grid, the store says which cells already hold results, and the missing
ones are drained through the lease/heartbeat work queue by
:func:`repro.campaign.worker.drain_campaign` — the same consumer loop
every distributed ``campaign work`` process runs.  A plain
``campaign run`` is therefore just a one-worker drain; point extra
``campaign work`` processes at the same database and they share the grid
through the queue with no orchestrator involvement.

Each completion is committed to the store in its own (fenced)
transaction *as it arrives*, so a ``Ctrl-C``, crash or machine reboot
mid-grid loses at most the simulations that were in flight; re-running
the same spec resumes exactly where it stopped.

Failed jobs are retried with capped exponential backoff (worker crashes
and transient OS failures are the target — the simulations themselves
are deterministic), and anything still failing is recorded as ``failed``
with its error text, to be retried by the next run.

Progress streams through the :mod:`repro.obs` trace bus (``campaign.*``
events) when a probe is supplied, and through ``logging`` always.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass

from ..config import baseline_system
from ..guard.chaos import ChaosPlan, chaos_from_env
from ..metrics.summary import WorkloadResult
from ..obs.config import TraceConfig
from ..obs.metrics import collect_process_metrics, metrics_from_env
from ..obs.trace import Probe
from ..sim import pool
from ..sim.diskcache import DiskCache, cache_enabled, default_cache_dir
from .manifest import build_manifest
from .spec import CampaignJob, CampaignSpec
from .store import ResultStore
from .worker import drain_campaign

__all__ = ["RunStats", "run_campaign", "run_and_collect"]

logger = logging.getLogger(__name__)


@dataclass
class RunStats:
    """What one ``campaign run`` invocation actually did."""

    total: int = 0  # grid size
    skipped: int = 0  # already done in the store (or done by a peer)
    ran: int = 0  # simulated and committed by this run
    failed: int = 0  # exhausted retries; recorded as failed
    retried: int = 0  # resubmissions after a worker error
    deferred: int = 0  # pending but beyond --limit
    # Jobs requeued into a fresh pool after a pool incident (not charged
    # as attempts).  Not part of summary_line — that format is frozen.
    requeued: int = 0

    def summary_line(self, name: str) -> str:
        """The stable one-line digest the CLI prints (CI greps it)."""
        return (
            f"campaign {name}: total={self.total} ran={self.ran} "
            f"skipped={self.skipped} failed={self.failed} "
            f"deferred={self.deferred}"
        )


def _prewarm_baselines(to_run: list[CampaignJob], trace: TraceConfig) -> None:
    """One serial pass computing alone-run baselines into the disk cache.

    Same rationale as :meth:`ExperimentRunner.run_many`: without this,
    every worker would recompute the same single-core baselines.
    """
    from ..sim.runner import ExperimentRunner

    runners: dict[tuple, ExperimentRunner] = {}
    for job in to_run:
        key = (job.num_cores, job.seed, job.instructions, job.trace_files, job.decoder)
        runner = runners.get(key)
        if runner is None:
            runner = runners[key] = ExperimentRunner(
                baseline_system(job.num_cores),
                instructions=job.instructions,
                seed=job.seed,
                trace=TraceConfig(),  # baselines are never traced
                trace_files=dict(job.trace_files),
                decoder=job.decoder,
            )
        for benchmark in set(job.workload):
            runner.alone(benchmark)


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    *,
    jobs: int | None = None,
    limit: int | None = None,
    retries: int = 2,
    backoff_s: float = 0.5,
    probe: Probe | None = None,
    chaos: ChaosPlan | None = None,
    job_timeout_s: float | None = None,
    lease_s: float | None = None,
    heartbeat_s: float | None = None,
    worker_id: str | None = None,
) -> RunStats:
    """Run every grid cell of ``spec`` that the store does not have yet.

    ``limit`` caps how many missing jobs this invocation simulates (the
    campaign smoke tests use it to model an interruption); ``jobs`` is
    the worker process count (default: ``REPRO_JOBS``).

    ``chaos`` (or the ``REPRO_CHAOS`` environment knob) activates fault
    injection: disk-cache entries the plan selects are corrupted up
    front, store commits see injected SQLite errors, and pool workers
    are killed/hung per the plan — all deterministic and once-only, so a
    chaos run converges to the same stored results as a clean one.
    ``job_timeout_s`` (default ``REPRO_JOB_TIMEOUT_S``) is the parallel
    path's no-progress timeout; ``lease_s``/``heartbeat_s`` (defaults
    ``REPRO_LEASE_S``/``REPRO_HEARTBEAT_S``) tune the work-queue lease
    this run's drain holds on each in-flight job.
    """
    if chaos is None:
        chaos = chaos_from_env()
    if job_timeout_s is None:
        job_timeout_s = pool.default_job_timeout()
    if chaos is not None and os.environ.get("REPRO_CHAOS") != chaos.spec():
        # Jobs resolve the plan from the environment (that is how pool
        # workers see it), so export the resolved plan — marker dir
        # pinned — for the duration of the run, then re-enter.
        saved_chaos = os.environ.get("REPRO_CHAOS")
        os.environ["REPRO_CHAOS"] = chaos.spec()
        try:
            return run_campaign(
                spec, store, jobs=jobs, limit=limit, retries=retries,
                backoff_s=backoff_s, probe=probe, chaos=chaos,
                job_timeout_s=job_timeout_s, lease_s=lease_s,
                heartbeat_s=heartbeat_s, worker_id=worker_id,
            )
        finally:
            if saved_chaos is None:
                os.environ.pop("REPRO_CHAOS", None)
            else:
                os.environ["REPRO_CHAOS"] = saved_chaos
    grid = spec.expand()
    store.register(spec, grid)
    # Pin the run manifest up front: provenance must survive even a run
    # that is interrupted before its first commit.  The manifest is a
    # pure function of spec + environment (no timestamps), so a resume
    # under the same knobs rewrites identical bytes.
    store.set_manifest(spec.fingerprint(), build_manifest(spec))
    statuses = store.statuses(job.key for job in grid)
    to_run = [job for job in grid if statuses.get(job.key) != "done"]
    stats = RunStats(total=len(grid), skipped=len(grid) - len(to_run))
    if limit is not None and len(to_run) > limit:
        stats.deferred = len(to_run) - limit
        to_run = to_run[:limit]
    workers = pool.default_jobs() if jobs is None else max(1, jobs)
    workers = min(workers, max(1, len(to_run)))
    logger.info(
        "campaign %s: %d jobs total, %d already stored, running %d over %d workers",
        spec.name,
        stats.total,
        stats.skipped,
        len(to_run),
        workers,
    )
    if probe is not None:
        probe.emit(
            0,
            "campaign.start",
            name=spec.name,
            fingerprint=spec.fingerprint(),
            total=stats.total,
            stored=stats.skipped,
            running=len(to_run),
        )
    if not to_run:
        if probe is not None:
            probe.emit(0, "campaign.done", ran=0, failed=0, skipped=stats.skipped)
        _finalize_metrics(spec, store, stats)
        return stats

    trace = TraceConfig.from_env() or TraceConfig()
    cache_dir = str(default_cache_dir()) if cache_enabled() else None
    if chaos is not None:
        store.chaos = chaos
        if cache_dir is not None:
            # Corrupt selected cache entries up front so the quarantine +
            # recompute path runs under this campaign, not a later one.
            chaos.corrupt_cache(DiskCache(cache_dir))
    if workers > 1 and cache_dir is not None:
        _prewarm_baselines(to_run, trace)

    def on_done(
        job: CampaignJob,
        result: WorkloadResult,
        wall: float,
        attempt: int,
        worker: str,
    ) -> None:
        stats.ran += 1
        done = stats.skipped + stats.ran
        logger.info(
            "campaign %s: %d/%d done (%s on %d cores)",
            spec.name, done, stats.total, job.variant, job.num_cores,
        )
        if probe is not None:
            probe.emit(
                done,
                "campaign.job",
                key=job.key[:16],
                variant=job.variant,
                cores=job.num_cores,
                status="done",
            )

    def on_failed(job: CampaignJob, error: BaseException, attempt: int) -> None:
        stats.failed += 1
        if probe is not None:
            probe.emit(
                stats.skipped + stats.ran,
                "campaign.job",
                key=job.key[:16],
                variant=job.variant,
                cores=job.num_cores,
                status="failed",
            )

    def on_retrying(job: CampaignJob, attempt: int) -> None:
        stats.retried += 1

    def on_requeued(count: int) -> None:
        stats.requeued += count

    def on_foreign(job: CampaignJob, status: str) -> None:
        # A peer worker (another `campaign work` process on this store)
        # finished the job while we drained: done is done — count it
        # with the cells that were already stored.
        stats.skipped += 1

    drain_campaign(
        spec,
        store,
        keys=[job.key for job in to_run],
        worker_id=worker_id,
        jobs=workers,
        lease_s=lease_s,
        heartbeat_s=heartbeat_s,
        retries=retries,
        backoff_s=backoff_s,
        job_timeout_s=job_timeout_s,
        chaos=chaos,
        trace=trace,
        cache_dir=cache_dir,
        on_done=on_done,
        on_failed=on_failed,
        on_retrying=on_retrying,
        on_requeued=on_requeued,
        on_foreign=on_foreign,
    )
    if probe is not None:
        probe.emit(
            stats.skipped + stats.ran,
            "campaign.done",
            ran=stats.ran,
            failed=stats.failed,
            skipped=stats.skipped,
        )
    _finalize_metrics(spec, store, stats)
    return stats


def _finalize_metrics(spec: CampaignSpec, store: ResultStore, stats: RunStats) -> None:
    """Fold this run's counters into the registry and the campaign row."""
    registry = metrics_from_env()
    if registry is None:
        return
    registry.counter("campaign.jobs_registered").inc(stats.total)
    registry.counter("campaign.jobs_skipped").inc(stats.skipped)
    registry.counter("campaign.jobs_failed").inc(stats.failed)
    registry.counter("campaign.jobs_retried").inc(stats.retried)
    registry.counter("campaign.jobs_requeued").inc(stats.requeued)
    store.merge_metrics(spec.fingerprint(), collect_process_metrics().snapshot())


def run_and_collect(
    spec: CampaignSpec,
    store: ResultStore | None = None,
    *,
    jobs: int | None = None,
    retries: int = 2,
    backoff_s: float = 0.5,
    probe: Probe | None = None,
) -> list[WorkloadResult]:
    """Run a campaign to completion and return results in grid order.

    This is the bridge the experiment drivers use: with ``store=None`` a
    store is opened at the default location (so figure pipelines are
    restartable by default) and closed afterwards.  Raises if any job
    ultimately failed — partial grids are for ``campaign status`` to
    inspect, not for aggregate statistics to silently average over.
    """
    owned = store is None
    store = store if store is not None else ResultStore()
    try:
        run_campaign(
            spec, store, jobs=jobs, retries=retries, backoff_s=backoff_s, probe=probe
        )
        grid = spec.expand()
        results = store.results_for(job.key for job in grid)
        missing = [job.key for job in grid if job.key not in results]
        if missing:
            failures = store.failures_for(missing)
            detail = "; ".join(
                f"{key[:16]}: {failures.get(key, 'missing')}" for key in missing[:3]
            )
            raise RuntimeError(
                f"campaign {spec.name!r}: {len(missing)} of {len(grid)} jobs "
                f"did not complete ({detail})"
            )
        return [results[job.key] for job in grid]
    finally:
        if owned:
            store.close()
