"""Registry and deterministic generator for the sample trace files.

The repository cannot carry real SPEC traces, so it carries the next
best thing: small, seeded, bit-reproducible trace files in DRAMSim2's
own line formats, spanning the same axes the paper's workload table
spans.  Four access archetypes:

``stream``
    Sequential walk through rows — streaming-bandwidth behaviour, high
    row-buffer locality, all banks visited in turn.
``chase``
    Pointer-chasing: every access jumps to a random row and bank —
    latency-bound, near-zero row locality.
``rowlocal``
    Bursts of accesses inside one row before moving on — the
    row-buffer-friendly extreme.
``conflict``
    Random banks but only a handful of rows per bank — maximal
    bank-conflict pressure.

Each archetype appears at two points on an MPKI ladder via
``cycles_per_access`` (the stamp spacing the pacing layer converts into
compute gaps): a ``-hi`` memory-intensive variant and a ``-lo`` light
variant.  Generation is a pure function of the :class:`SampleTrace`
entry — same seed, same bytes, every time — and committed samples are
gzipped with a zeroed mtime so the archive itself is reproducible and
can be pinned by SHA-256 below.

``stream-100k`` is registered but **not** committed: it is the
≥100k-line trace the O(1)-memory and end-to-end tests generate on
demand (into :func:`trace_dir`, i.e. ``REPRO_TRACE_DIR`` or the package
``data/`` directory).
"""

from __future__ import annotations

import gzip
import os
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from .decoder import DECODER_PRESETS

__all__ = [
    "SAMPLE_TRACES",
    "SampleTrace",
    "ensure_sample_trace",
    "sample_trace_path",
    "synthesize_trace_lines",
    "trace_dir",
]

_DATA_DIR = Path(__file__).parent / "data"

# All synthesized addresses are laid out for this decoder, so decoding a
# sample with it recovers the generator's intended coordinates exactly.
_LAYOUT = DECODER_PRESETS["dramsim2"]

_K6_READ_OPS = ("P_MEM_RD", "P_FETCH", "P_LOCK_RD")
_ARCHETYPES = ("stream", "chase", "rowlocal", "conflict")


@dataclass(frozen=True)
class SampleTrace:
    """One registered sample: the full recipe plus, for committed files,
    the pinned content hash (of the decompressed text)."""

    name: str
    archetype: str
    format: str  # "k6" | "mase"
    lines: int  # memory-access records to emit
    seed: int
    cycles_per_access: int  # stamp spacing -> MPKI ladder position
    committed: bool = True
    sha256: str = ""


def trace_dir() -> Path:
    """Directory for generated (non-committed) trace files:
    ``REPRO_TRACE_DIR`` if set, else the package ``data/`` directory."""
    override = os.environ.get("REPRO_TRACE_DIR", "").strip()
    return Path(override) if override else _DATA_DIR


def _registry(*samples: SampleTrace) -> dict[str, SampleTrace]:
    return {s.name: s for s in samples}


# ``cycles_per_access`` sets the MPKI rung under the default 1.0
# instructions-per-cycle pacing: average instructions per access is
# ~(1 + cycles_per_access/2), so ~38 lands near MPKI 50 (memory-hog end
# of the paper's Table 3) and ~400-600 near MPKI 2-5 (the light end).
SAMPLE_TRACES: dict[str, SampleTrace] = _registry(
    SampleTrace("stream-hi", "stream", "k6", 4000, 101, 38, sha256="d23b00b4d91909acefbb68a13dae8067a32a12539c224c5a2a0aa2599390538e"),
    SampleTrace("stream-lo", "stream", "k6", 2000, 102, 400, sha256="e2c762c700b2d99dadd3259ed2bde8844894ef591e26dc2aa705457561e53fb2"),
    SampleTrace("chase-hi", "chase", "mase", 4000, 201, 30, sha256="60ab6958832ccbc4e47aee2fe947264ec13b4fb79c04f190f91636b6ef2bd9a0"),
    SampleTrace("chase-lo", "chase", "mase", 2000, 202, 500, sha256="89cc227c1560065b089f3c1944faed61fc6c05c730583cffcbcffbc930561b49"),
    SampleTrace("rowlocal-hi", "rowlocal", "k6", 4000, 301, 34, sha256="7c34e1cd36754ec7f29e4a4a8967f9738baebc1f03ec0ab403ca5041c7a09aed"),
    SampleTrace("rowlocal-lo", "rowlocal", "mase", 2000, 302, 440, sha256="10755e1d96ac958072b4362a939b7bf01cf0bfc18c43dc04ce2fd305a7367899"),
    SampleTrace("conflict-hi", "conflict", "k6", 4000, 401, 36, sha256="db5a1020ee62c673b5d753ccd254d5672c2fa0ae701d2b23f901ea6e6704c859"),
    SampleTrace("conflict-lo", "conflict", "k6", 2000, 402, 600, sha256="72abc0bfd1992f8139c21841c6981b30b0c35a7c44142829757b13fb91540466"),
    SampleTrace(
        "stream-100k", "stream", "k6", 120_000, 999, 38, committed=False
    ),
)


def _address(rng: random.Random, archetype: str, state: dict) -> int:
    """Next raw address for ``archetype``; ``state`` persists the walk."""
    if archetype == "stream":
        state["column"] += 1
        if state["column"] >= 16:  # one _LAYOUT row of columns
            state["column"] = 0
            state["bank"] = (state["bank"] + 1) % 8
            if state["bank"] == 0:
                state["row"] = (state["row"] + 1) % (1 << 14)
    elif archetype == "chase":
        state["row"] = rng.randrange(1 << 14)
        state["bank"] = rng.randrange(8)
        state["column"] = rng.randrange(16)
    elif archetype == "rowlocal":
        state["burst"] -= 1
        if state["burst"] <= 0:
            state["burst"] = rng.randrange(24, 64)
            state["row"] = rng.randrange(1 << 14)
            state["bank"] = rng.randrange(8)
        state["column"] = rng.randrange(16)
    elif archetype == "conflict":
        state["bank"] = rng.randrange(8)
        state["row"] = state["hot_rows"][state["bank"]][rng.randrange(4)]
        state["column"] = rng.randrange(16)
    else:
        raise ValueError(
            f"unknown archetype {archetype!r} "
            f"(choose from {', '.join(_ARCHETYPES)})"
        )
    return _LAYOUT.encode(
        rank=rng.randrange(2),
        bank=state["bank"],
        row=state["row"],
        column=state["column"],
    )


def synthesize_trace_lines(sample: SampleTrace) -> Iterator[str]:
    """Yield the trace's text lines (no trailing newlines), bit-for-bit
    deterministic in ``sample``."""
    rng = random.Random(sample.seed)
    state = {
        "row": 0,
        "bank": 0,
        "column": 0,
        "burst": 0,
        "hot_rows": [
            [rng.randrange(1 << 14) for _ in range(4)] for _bank in range(8)
        ],
    }
    yield f"# {sample.name}: {sample.archetype} archetype, seed {sample.seed}"
    cycle = 0
    for index in range(sample.lines):
        address = _address(rng, sample.archetype, state)
        is_write = rng.random() < 0.25
        if sample.format == "k6":
            op = "P_MEM_WR" if is_write else _K6_READ_OPS[rng.randrange(3)]
        else:
            op = "WRITE" if is_write else ("IFETCH" if rng.random() < 0.2 else "READ")
        yield f"0x{address:x} {op} {cycle}"
        # The access-free K6 kinds exercise the parser's skip-nothing
        # path; the deliberate junk line below exercises skip *counting*
        # (real trace tails are often corrupt).
        if sample.format == "k6" and index % 1000 == 999:
            yield f"0x0 BOFF {cycle}"
        if sample.format == "mase" and index % 1500 == 1499:
            yield f"0x{address:x} TRUNCATED_"
        cycle += 1 + rng.randrange(sample.cycles_per_access)


def sample_trace_path(name: str, directory: Path | None = None) -> Path:
    """Where ``name``'s file lives (or will be generated).

    Committed samples resolve into the package ``data/`` directory;
    generated ones into ``directory`` (default :func:`trace_dir`).
    """
    sample = SAMPLE_TRACES.get(name)
    if sample is None:
        raise KeyError(
            f"unknown sample trace {name!r} "
            f"(known: {', '.join(sorted(SAMPLE_TRACES))})"
        )
    base = _DATA_DIR if sample.committed else (directory or trace_dir())
    return base / f"{sample.name}.{sample.format}.gz"


def ensure_sample_trace(
    name: str, directory: Path | None = None, verify: bool = True
) -> Path:
    """Return the sample's path, generating the file if absent.

    Generation is deterministic (seeded content, gzip mtime pinned to
    zero) and, when the registry pins a hash, verified against it so a
    generator/registry mismatch fails loudly.  ``verify=False`` skips
    that check — only ``tools/gen_traces.py --pin`` wants it, while
    refreshing stale pins.
    """
    sample = SAMPLE_TRACES[name] if name in SAMPLE_TRACES else None
    if sample is None:
        raise KeyError(
            f"unknown sample trace {name!r} "
            f"(known: {', '.join(sorted(SAMPLE_TRACES))})"
        )
    path = sample_trace_path(name, directory)
    if path.exists():
        return path
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        with gzip.GzipFile(filename="", mode="wb", fileobj=fh, mtime=0) as gz:
            for line in synthesize_trace_lines(sample):
                gz.write(line.encode("ascii") + b"\n")
    os.replace(tmp, path)
    if verify and sample.sha256:
        from .source import trace_content_sha256

        actual = trace_content_sha256(path)
        if actual != sample.sha256:
            raise ValueError(
                f"generated sample {name} hashed {actual[:12]}..., "
                f"registry pins {sample.sha256[:12]}... — "
                "generator and registry are out of sync"
            )
    return path
