"""Configurable physical-address decoding for external traces.

An external trace stamps each access with a *raw* physical address laid
out by whatever machine produced it.  :class:`AddressDecoder` describes
that layout as an ordered sequence of named bit fields
(most-significant first) over ``channel``/``rank``/``bank``/``row``/
``column``, above a cache-line offset, and provides the exact inverse
(:meth:`AddressDecoder.encode`) so layouts round-trip.

:meth:`AddressDecoder.map_to` then projects decoded coordinates onto the
simulator's :class:`~repro.dram.address.AddressMapping` geometry: ranks
fold into the flat per-channel bank space (the object model has banks,
not ranks), and any axis wider than the target geometry aliases
modulo that geometry — deterministic, and documented here rather than
hidden.  The result is a simulator byte address, so traced requests flow
through exactly the same mapping/controller path as synthetic ones (and
the fast backend's predecode sees ordinary addresses).

Named presets:

``paper``
    The paper's single-channel baseline (Table 2): 2 KB rows → 5 column
    bits above the 64 B line offset, 8 banks, no ranks, row on top.
``dramsim2``
    A DRAMSim2-style default: ``row:rank:bank:column`` over a 256 MB
    single-channel device (14 row bits, 1 rank bit, 8 banks, 4 column
    bits above the line offset).
``channel-interleave``
    As ``dramsim2`` but with one channel bit in the lowest position
    above the offset, spreading consecutive lines across channels.
``bank-low``
    Bank bits directly above the line offset: consecutive lines stripe
    across banks (maximum bank-level parallelism for streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from ..dram.address import AddressMapping

__all__ = [
    "AddressDecoder",
    "DECODER_PRESETS",
    "DecodedAddress",
    "parse_decoder",
]

_FIELD_NAMES = ("channel", "rank", "bank", "row", "column")


class DecodedAddress(NamedTuple):
    """Raw trace-address coordinates (before projection onto the
    simulator geometry)."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class AddressDecoder:
    """Bit-field layout of a raw physical address.

    ``fields`` orders ``(name, bits)`` pairs most-significant first;
    names come from ``channel``/``rank``/``bank``/``row``/``column`` and
    each may appear at most once (omitted fields decode as 0).  The low
    ``offset_bits`` are the intra-line offset and are discarded on
    decode / zeroed on encode.
    """

    fields: tuple[tuple[str, int], ...]
    offset_bits: int = 6  # 64 B cache lines
    name: str = "custom"

    def __post_init__(self) -> None:
        seen = set()
        for field, bits in self.fields:
            if field not in _FIELD_NAMES:
                raise ValueError(
                    f"unknown address field {field!r} "
                    f"(choose from {', '.join(_FIELD_NAMES)})"
                )
            if field in seen:
                raise ValueError(f"duplicate address field {field!r}")
            if bits < 0:
                raise ValueError(f"field {field!r} has negative width")
            seen.add(field)
        if self.offset_bits < 0:
            raise ValueError("offset_bits must be non-negative")

    @property
    def width(self) -> int:
        """Total decoded width in bits, offset included."""
        return self.offset_bits + sum(bits for _f, bits in self.fields)

    def spec(self) -> str:
        """Canonical ``field=bits`` spec string (parses back)."""
        return ",".join(f"{field}={bits}" for field, bits in self.fields)

    def decode(self, address: int) -> DecodedAddress:
        """Peel ``address`` into coordinates per the layout.  Bits above
        the layout's width extend the most-significant field (so huge
        addresses keep decoding rather than wrapping)."""
        if address < 0:
            raise ValueError("address must be non-negative")
        value = address >> self.offset_bits
        out = dict.fromkeys(_FIELD_NAMES, 0)
        for index in range(len(self.fields) - 1, -1, -1):
            field, bits = self.fields[index]
            if index == 0:
                out[field] = value  # MSB field takes everything left
            else:
                out[field] = value & ((1 << bits) - 1)
                value >>= bits
        return DecodedAddress(**out)

    def encode(
        self,
        channel: int = 0,
        rank: int = 0,
        bank: int = 0,
        row: int = 0,
        column: int = 0,
    ) -> int:
        """Exact inverse of :meth:`decode` (offset bits zero).

        Every value must fit its field width — except the
        most-significant field, which may overflow upward, mirroring
        :meth:`decode`.
        """
        coords = {
            "channel": channel,
            "rank": rank,
            "bank": bank,
            "row": row,
            "column": column,
        }
        value = 0
        for index, (field, bits) in enumerate(self.fields):
            coord = coords.pop(field)
            if coord < 0:
                raise ValueError(f"{field} must be non-negative")
            if index > 0 and coord >= (1 << bits):
                raise ValueError(
                    f"{field}={coord} does not fit {bits} bit(s) in "
                    f"decoder {self.name!r}"
                )
            value = (value << bits) | coord
        for field, coord in coords.items():
            if coord:
                raise ValueError(
                    f"decoder {self.name!r} has no {field!r} field "
                    f"(got {field}={coord})"
                )
        return value << self.offset_bits

    # -- projection onto the simulator geometry ------------------------------
    def bits(self, field: str) -> int:
        for name, width in self.fields:
            if name == field:
                return width
        return 0

    def map_to(self, mapping: AddressMapping, address: int) -> int:
        """Project a raw trace address onto ``mapping``'s geometry and
        return a simulator *byte address* hitting those coordinates.

        Ranks fold into the flat bank space (``rank * banks_per_rank +
        bank``); banks beyond the target's bank count carry into the row
        (so a 2-rank trace on an 8-bank target uses distinct rows, not
        aliased banks); channel and column reduce modulo the target.
        The intra-line offset is dropped — the simulator is line-grained.
        """
        decoded = self.decode(address)
        banks_per_rank = 1 << self.bits("bank")
        total_banks = banks_per_rank << self.bits("rank")
        flat_bank = decoded.rank * banks_per_rank + decoded.bank
        bank = flat_bank % mapping.num_banks
        scale = max(1, total_banks // mapping.num_banks)
        row = decoded.row * scale + flat_bank // mapping.num_banks
        return mapping.compose(
            channel=decoded.channel % mapping.num_channels,
            bank=bank,
            row=row,
            column=decoded.column % mapping.columns_per_row,
        )


def _preset(name: str, *fields: tuple[str, int]) -> AddressDecoder:
    return AddressDecoder(fields=tuple(fields), name=name)


DECODER_PRESETS: dict[str, AddressDecoder] = {
    "paper": _preset("paper", ("row", 16), ("bank", 3), ("column", 5)),
    "dramsim2": _preset(
        "dramsim2", ("row", 14), ("rank", 1), ("bank", 3), ("column", 4)
    ),
    "channel-interleave": _preset(
        "channel-interleave",
        ("row", 14),
        ("rank", 1),
        ("bank", 3),
        ("column", 4),
        ("channel", 1),
    ),
    "bank-low": _preset("bank-low", ("row", 16), ("column", 5), ("bank", 3)),
}


def parse_decoder(spec: str) -> AddressDecoder:
    """Resolve a decoder from a preset name or a field spec.

    A spec is comma-separated ``field=bits`` pairs ordered
    most-significant first, e.g. ``row=14,rank=1,bank=3,column=4``.
    Unknown preset names raise a ``ValueError`` listing the presets.
    """
    spec = spec.strip()
    preset = DECODER_PRESETS.get(spec)
    if preset is not None:
        return preset
    if "=" not in spec:
        raise ValueError(
            f"unknown decoder preset {spec!r} (presets: "
            f"{', '.join(sorted(DECODER_PRESETS))}; or pass a "
            "'field=bits,...' layout)"
        )
    fields = []
    for part in spec.split(","):
        name, _eq, bits_text = part.partition("=")
        try:
            bits = int(bits_text)
        except ValueError:
            raise ValueError(
                f"bad decoder field {part.strip()!r} (want 'field=bits')"
            ) from None
        fields.append((name.strip(), bits))
    return AddressDecoder(fields=tuple(fields), name=spec)
