"""Adapting streamed trace files to the core model's request contract.

:class:`TraceRequestSource` turns a trace file into the
:class:`~repro.cpu.trace.Trace` objects that :class:`~repro.cpu.core.Core`
executes.  The pieces it composes:

* the streaming parser (:func:`~repro.traces.formats.open_trace`) yields
  raw ``(address, is_write, cycle)`` records in O(1) memory;
* an :class:`~repro.traces.decoder.AddressDecoder` projects each raw
  address onto the simulator's geometry;
* *pacing* converts the trace's cycle stamps into the per-entry ``gap``
  (non-memory instructions before the access) that encodes compute/memory
  interleaving — a trace whose accesses are 1000 cycles apart becomes a
  low-MPKI thread, one with back-to-back stamps a memory hog.

The source itself is an O(1) iterator: :meth:`TraceRequestSource.entries`
never holds more than one record, and :meth:`scan` streams an entire file
(however long) in constant memory.  :meth:`materialize` builds the finite
:class:`~repro.cpu.trace.Trace` the core needs, bounding memory through
request/instruction truncation and attaching a
:class:`~repro.cpu.trace.TraceIngestStats` provenance record.

Content identity
----------------
:func:`trace_content_sha256` hashes the **decompressed** byte stream, so
``trace.k6`` and ``trace.k6.gz`` (or the same trace recompressed at a
different gzip level) share one identity.  Campaign specs and job keys
reference traces by this hash — see :class:`TraceFileRef`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..cpu.trace import Trace, TraceEntry, TraceIngestStats
from ..dram.address import AddressMapping
from .decoder import AddressDecoder, parse_decoder
from .formats import IngestStats, open_trace, open_trace_stream

__all__ = ["TraceFileRef", "TraceRequestSource", "trace_content_sha256"]

# Upper bound on a single inter-request gap.  Trace cycle stamps can jump
# by millions (sleep phases, trace splices); an uncapped gap would turn
# into an equally long compute bubble and starve the measurement window.
DEFAULT_GAP_CAP = 2048

_HASH_CHUNK = 1 << 16


def trace_content_sha256(path: str | Path) -> str:
    """SHA-256 of the trace's decompressed content.

    Streams through a fixed-size buffer — O(1) memory for any length.
    """
    digest = hashlib.sha256()
    with open_trace_stream(path) as stream:
        raw = stream.buffer  # hash bytes, not decoded text
        while True:
            chunk = raw.read(_HASH_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class TraceFileRef:
    """A trace file pinned by content hash.

    ``path`` is where the bytes currently live; ``sha256`` is who they
    are.  Everything durable (job keys, manifests, cache entries) uses
    the hash, so moving or recompressing the file never invalidates
    stored results — and a spec naming a hash fails loudly if the file
    on disk no longer matches.
    """

    path: str
    sha256: str
    decoder: str = "dramsim2"

    @classmethod
    def from_path(cls, path: str | Path, decoder: str = "dramsim2") -> "TraceFileRef":
        return cls(path=str(path), sha256=trace_content_sha256(path), decoder=decoder)

    def key(self) -> str:
        """Canonical content-addressed workload key."""
        return f"trace:{self.sha256}:{self.decoder}"

    def verify(self) -> None:
        """Raise if the bytes at ``path`` no longer match ``sha256``."""
        actual = trace_content_sha256(self.path)
        if actual != self.sha256:
            raise ValueError(
                f"trace file {self.path} content hash mismatch: "
                f"expected {self.sha256[:12]}..., found {actual[:12]}..."
            )


class TraceRequestSource:
    """Stream a trace file as :class:`~repro.cpu.trace.TraceEntry` items.

    Parameters
    ----------
    path: trace file (k6 or mase, plain or gzip).
    decoder: an :class:`AddressDecoder`, a preset name, or a
        ``field=bits,...`` layout spec.
    mapping: target simulator geometry (default: the paper baseline).
    format: ``"k6"``/``"mase"``/``"auto"``.
    pacing: instructions per trace cycle.  The gap before each access is
        ``int(cycle_delta * pacing)``, capped at ``gap_cap`` — the knob
        that converts trace timestamps into thread memory intensity.
    gap_cap: upper bound on any single gap (see :data:`DEFAULT_GAP_CAP`).
    name: thread name for materialized traces (default: the file stem).
    """

    def __init__(
        self,
        path: str | Path,
        decoder: "AddressDecoder | str" = "dramsim2",
        mapping: AddressMapping | None = None,
        format: str = "auto",
        pacing: float = 1.0,
        gap_cap: int = DEFAULT_GAP_CAP,
        name: str | None = None,
    ) -> None:
        self.path = Path(path)
        self.decoder = parse_decoder(decoder) if isinstance(decoder, str) else decoder
        self.mapping = mapping if mapping is not None else AddressMapping()
        self.format = format
        if pacing < 0:
            raise ValueError("pacing must be non-negative")
        if gap_cap < 0:
            raise ValueError("gap_cap must be non-negative")
        self.pacing = pacing
        self.gap_cap = gap_cap
        self.name = name if name is not None else self.path.name.split(".")[0]

    def entries(
        self,
        max_requests: int | None = None,
        max_instructions: int | None = None,
        stats: IngestStats | None = None,
    ) -> Iterator[TraceEntry]:
        """Yield paced, decoded entries; O(1) memory, one record at a time.

        Stops at ``max_requests`` entries or ``max_instructions`` total
        instructions (gaps included); on an early stop the ``stats``
        object's ``truncated`` flag is set — the stop is only taken when
        a further record was actually seen, so the flag is exact.
        """
        if stats is None:
            stats = IngestStats()
        produced = 0
        instructions = 0
        prev_cycle: int | None = None
        for record in open_trace(self.path, format=self.format, stats=stats):
            if prev_cycle is None:
                gap = 0
            else:
                delta = max(0, record.cycle - prev_cycle)
                gap = min(self.gap_cap, int(delta * self.pacing))
            prev_cycle = record.cycle
            if max_requests is not None and produced >= max_requests:
                stats.truncated = True
                return
            if (
                max_instructions is not None
                and produced > 0
                and instructions + gap + 1 > max_instructions
            ):
                stats.truncated = True
                return
            yield TraceEntry(
                gap=gap,
                address=self.decoder.map_to(self.mapping, record.address),
                is_write=record.is_write,
            )
            produced += 1
            instructions += gap + 1

    def __iter__(self) -> Iterator[TraceEntry]:
        return self.entries()

    def scan(self) -> IngestStats:
        """Stream the whole file for its counters without keeping any
        entries — constant memory regardless of trace length."""
        stats = IngestStats()
        for _entry in self.entries(stats=stats):
            pass
        return stats

    def materialize(
        self,
        max_requests: int | None = None,
        max_instructions: int | None = None,
    ) -> Trace:
        """Build the finite :class:`Trace` the core executes.

        Pass a truncation bound to keep memory proportional to the
        simulated window rather than the file; the returned trace
        carries a :class:`TraceIngestStats` provenance record.
        """
        stats = IngestStats()
        entries = list(
            self.entries(
                max_requests=max_requests,
                max_instructions=max_instructions,
                stats=stats,
            )
        )
        ingest = TraceIngestStats(
            requests_read=len(entries),
            lines_skipped=stats.lines_skipped,
            truncated=stats.truncated,
        )
        return Trace(entries, name=self.name, ingest=ingest)
