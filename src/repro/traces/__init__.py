"""Streaming trace-ingestion subsystem: real memory-access streams.

Everything the reproduction runs natively is synthetic (Table-3
calibrated generators in :mod:`repro.workloads`); this package is the
front-end that lets the same schedulers, campaign engine and backends run
on *external* traces:

* :mod:`repro.traces.formats` — streaming parsers for the DRAMSim2
  ``k6`` and ``mase`` trace-line formats, plain or gzip, in O(1) memory;
* :mod:`repro.traces.decoder` — configurable physical-address bit-field
  decoding (``row:rank:bank:channel:column`` layouts with named presets)
  onto the simulator's :class:`~repro.dram.address.AddressMapping`
  coordinates;
* :mod:`repro.traces.source` — :class:`TraceRequestSource`, adapting a
  streamed trace into the :class:`~repro.cpu.trace.Trace` contract the
  cores execute (cycle pacing, read/write split, truncation), so traced
  threads compose freely with synthetic threads in one mix;
* :mod:`repro.traces.library` — a deterministic seeded generator for the
  committed sample traces (an MPKI ladder over four access archetypes)
  and the registry behind ``trace:<name>`` workload entries.
"""

from __future__ import annotations

from .decoder import DECODER_PRESETS, AddressDecoder, DecodedAddress, parse_decoder
from .formats import (
    IngestStats,
    TraceFormatError,
    TraceRecord,
    detect_format,
    open_trace,
    parse_k6_line,
    parse_mase_line,
)
from .library import (
    SAMPLE_TRACES,
    SampleTrace,
    ensure_sample_trace,
    sample_trace_path,
    synthesize_trace_lines,
    trace_dir,
)
from .source import TraceFileRef, TraceRequestSource, trace_content_sha256

__all__ = [
    "AddressDecoder",
    "DECODER_PRESETS",
    "DecodedAddress",
    "IngestStats",
    "SAMPLE_TRACES",
    "SampleTrace",
    "TraceFileRef",
    "TraceFormatError",
    "TraceRecord",
    "TraceRequestSource",
    "detect_format",
    "ensure_sample_trace",
    "open_trace",
    "parse_decoder",
    "parse_k6_line",
    "parse_mase_line",
    "sample_trace_path",
    "synthesize_trace_lines",
    "trace_content_sha256",
    "trace_dir",
]
