"""Streaming parsers for DRAMSim2-style trace files.

Two line formats are supported, matching DRAMSim2's ``traceBasedSim``
front-end:

``k6``
    ``<hex-address> <op> <cycle>`` where ``op`` is one of the K6 bus
    transaction kinds (``P_MEM_RD``, ``P_MEM_WR``, ``P_FETCH``,
    ``P_LOCK_RD``, ``P_LOCK_WR``; ``BOFF`` and ``P_INT_ACK`` lines carry
    no memory access and are skipped)::

        0x7f4228 P_MEM_WR 186

``mase``
    ``<hex-address> <op> <cycle>`` where ``op`` is ``READ``, ``WRITE``
    or ``IFETCH``::

        0x1003f10 IFETCH 0

Both parsers are line-level pure functions; :func:`open_trace` streams a
plain or gzip-compressed file through them with **O(1) resident memory**
— lines are consumed one at a time off a fixed-size decode buffer and
never accumulated.  Format auto-detection reads ahead only as far as the
first parseable record.  Blank lines and ``#``/``;`` comments are
ignored; anything else that fails to parse is counted in
:attr:`IngestStats.lines_skipped` rather than raising, so a trace with a
corrupt tail still yields every good record.
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, NamedTuple

__all__ = [
    "IngestStats",
    "TraceFormatError",
    "TraceRecord",
    "detect_format",
    "open_trace",
    "parse_k6_line",
    "parse_mase_line",
]

TRACE_FORMATS = ("k6", "mase")

# Buffer for the text decoder wrapping the (possibly gzip) byte stream.
# Bounds resident memory regardless of trace length.
_READ_BUFFER_BYTES = 1 << 16

# How many non-comment lines auto-detection may scan before giving up.
_DETECT_WINDOW = 64

# K6 transaction kinds.  ``True``/``False`` = write/read; ``None`` = the
# line is a valid K6 record but carries no memory access (bus back-off,
# interrupt acknowledge) and is silently dropped, not counted as skipped.
_K6_OPS: dict[str, bool | None] = {
    "P_MEM_RD": False,
    "P_FETCH": False,
    "P_LOCK_RD": False,
    "P_MEM_WR": True,
    "P_LOCK_WR": True,
    "BOFF": None,
    "P_INT_ACK": None,
}

_MASE_OPS: dict[str, bool] = {
    "READ": False,
    "IFETCH": False,
    "WRITE": True,
}


class TraceFormatError(ValueError):
    """The trace file's format could not be determined or was invalid."""


class TraceRecord(NamedTuple):
    """One memory access from an external trace: raw physical address,
    direction, and the CPU cycle the trace stamps it with."""

    address: int
    is_write: bool
    cycle: int


@dataclass
class IngestStats:
    """Counters accumulated while streaming one trace.

    ``lines_skipped`` counts malformed or unsupported lines (not blank
    lines or comments); ``truncated`` is set by consumers that stop
    before the stream is exhausted (see
    :class:`~repro.traces.source.TraceRequestSource`).
    """

    lines_read: int = 0
    records: int = 0
    lines_skipped: int = 0
    truncated: bool = False
    format: str = ""


def _parse_three(line: str, ops: dict) -> "TraceRecord | None | str":
    """Shared ``<addr> <op> <cycle>`` parsing.

    Returns a record, ``None`` for an access-free but valid line, or the
    string ``"skip"`` for an unparseable one (a sentinel keeps the hot
    per-line path exception-free for the common cases).
    """
    parts = line.split()
    if len(parts) != 3:
        return "skip"
    addr_text, op, cycle_text = parts
    if op not in ops:
        return "skip"
    try:
        address = int(addr_text, 16)
        cycle = int(cycle_text)
    except ValueError:
        return "skip"
    if address < 0 or cycle < 0:
        return "skip"
    is_write = ops[op]
    if is_write is None:
        return None
    return TraceRecord(address=address, is_write=is_write, cycle=cycle)


def parse_k6_line(line: str) -> "TraceRecord | None | str":
    """Parse one K6-format line (see module docstring)."""
    return _parse_three(line, _K6_OPS)


def parse_mase_line(line: str) -> "TraceRecord | None | str":
    """Parse one mase-format line (see module docstring)."""
    return _parse_three(line, _MASE_OPS)


_PARSERS = {"k6": parse_k6_line, "mase": parse_mase_line}


def _is_noise(line: str) -> bool:
    """Blank line or comment — ignored without counting as skipped."""
    stripped = line.strip()
    return not stripped or stripped[0] in "#;"


def detect_format(lines: list[str]) -> str:
    """Detect ``"k6"`` or ``"mase"`` from the leading lines of a trace.

    The op column decides: the two vocabularies are disjoint.  Raises
    :class:`TraceFormatError` if no line within the detection window
    parses under either format.
    """
    for line in lines:
        if _is_noise(line):
            continue
        parts = line.split()
        if len(parts) == 3:
            if parts[1] in _K6_OPS:
                return "k6"
            if parts[1] in _MASE_OPS:
                return "mase"
    raise TraceFormatError(
        "could not detect trace format (no k6 or mase record in the "
        f"first {len(lines)} lines)"
    )


def open_trace_stream(path: str | Path) -> IO[str]:
    """Open ``path`` as a text line stream, transparently gunzipping.

    Detection is by content (the gzip magic bytes), not the file name,
    so ``trace.k6`` and ``trace.k6.gz`` both work however they are
    named.  The returned stream reads through a fixed-size buffer; it
    never loads the file.
    """
    fh = open(path, "rb", buffering=_READ_BUFFER_BYTES)
    try:
        magic = fh.read(2)
        fh.seek(0)
        raw: IO[bytes] = fh
        if magic == b"\x1f\x8b":
            raw = gzip.GzipFile(fileobj=fh, mode="rb")  # type: ignore[assignment]
        return io.TextIOWrapper(raw, encoding="ascii", errors="replace")
    except Exception:
        fh.close()
        raise


def open_trace(
    path: str | Path,
    format: str = "auto",
    stats: IngestStats | None = None,
) -> Iterator[TraceRecord]:
    """Stream :class:`TraceRecord` items from a trace file.

    ``format`` is ``"k6"``, ``"mase"`` or ``"auto"`` (detect from the
    first parseable line).  Pass an :class:`IngestStats` to receive line
    and skip counters as the stream is consumed.  The generator holds at
    most the detection window of lines at any time — memory use is
    independent of trace length.
    """
    if format not in TRACE_FORMATS and format != "auto":
        raise TraceFormatError(
            f"unknown trace format {format!r} (choose from "
            f"{', '.join(TRACE_FORMATS)} or 'auto')"
        )
    if stats is None:
        stats = IngestStats()
    stream = open_trace_stream(path)
    try:
        pending: list[str] = []
        if format == "auto":
            # Read ahead just far enough to see one parseable record;
            # the buffered lines are replayed through the real parser.
            for line in stream:
                pending.append(line)
                if not _is_noise(line) and len(pending) >= 1:
                    try:
                        format = detect_format(pending)
                        break
                    except TraceFormatError:
                        if len(pending) >= _DETECT_WINDOW:
                            raise
        if format == "auto":  # empty or all-noise file
            raise TraceFormatError(f"no trace records in {path}")
        stats.format = format
        parse = _PARSERS[format]
        for line in _chain_lines(pending, stream):
            stats.lines_read += 1
            if _is_noise(line):
                continue
            record = parse(line)
            if record == "skip":
                stats.lines_skipped += 1
            elif record is not None:
                stats.records += 1
                yield record
    finally:
        stream.close()


def _chain_lines(pending: list[str], stream: IO[str]) -> Iterator[str]:
    yield from pending
    yield from stream
