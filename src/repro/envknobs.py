"""Central parsing for the ``REPRO_*`` environment knobs.

Every tunable the suite reads from the environment goes through this
module so a malformed value fails the same way everywhere: an
:class:`EnvKnobError` whose message is one line and names the offending
variable — instead of a bare ``ValueError: invalid literal for int()``
raised from deep inside a run.  The CLI catches :class:`EnvKnobError` at
the top level and turns it into a clean ``error: ...`` line and exit
status 2.

Knobs parsed here:

=========================  ==================================================
``REPRO_JOBS``             worker processes for independent simulations
``REPRO_WORKLOADS``        random mixes per aggregate experiment
``REPRO_SCALE``            float multiplier over default instruction counts
``REPRO_SAMPLE_INTERVAL``  telemetry sample period in cycles
``REPRO_CACHE_MAX_MB``     on-disk cache size bound (mtime-LRU pruning)
``REPRO_GUARD``            invariant checking mode (off/check/strict)
``REPRO_BACKEND``          simulation backend (python/fast/verify)
``REPRO_CHAOS``            fault-injection plan spec for campaign runs
``REPRO_JOB_TIMEOUT_S``    per-job wall-clock timeout in pool/campaign workers
``REPRO_METRICS``          operational metrics registry toggle (default on)
``REPRO_TRACE_DIR``        directory for generated sample trace files
``REPRO_STORE_BUSY_TIMEOUT_S``  SQLite busy_timeout for the shared result
                           store (seconds, default 30; floor 0) — how long
                           a writer blocks on a peer's transaction before
                           the jittered commit-retry loop takes over
``REPRO_LEASE_S``          work-queue lease duration in seconds (default
                           30, floor 0.1): a worker silent for this long
                           forfeits its job to reclamation
``REPRO_HEARTBEAT_S``      lease renewal period (default lease/3, floor
                           0.05); must be well under ``REPRO_LEASE_S`` or
                           healthy workers get reclaimed
=========================  ==================================================

``REPRO_METRICS`` is parsed next to its registry in
:mod:`repro.obs.metrics` (it is a bare boolean, not one of the shapes
below) but fails the same way: a value outside 1/true/yes/on/0/false/
no/off raises :class:`EnvKnobError` naming the variable.

``REPRO_TRACE_DIR`` is a bare directory path (nothing to parse), read in
:mod:`repro.traces.library`; unset means generated traces land next to
the committed samples in the package ``data/`` directory.
"""

from __future__ import annotations

import os

__all__ = [
    "EnvKnobError",
    "read_int",
    "read_float",
    "read_optional_int",
    "read_optional_float",
    "read_choice",
]


class EnvKnobError(ValueError):
    """A ``REPRO_*`` environment variable holds an unparseable value."""


def _raw(name: str, environ: dict | None) -> str | None:
    env = os.environ if environ is None else environ
    value = env.get(name)
    if value is None or value.strip() == "":
        return None
    return value.strip()


def read_int(
    name: str,
    default: int,
    *,
    floor: int | None = None,
    environ: dict | None = None,
) -> int:
    """Integer knob ``name``; unset/empty means ``default``.

    Values below ``floor`` are clamped (matching the historical
    ``max(1, ...)`` behaviour of the individual call sites); a value that
    is not an integer at all raises :class:`EnvKnobError`.
    """
    raw = _raw(name, environ)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise EnvKnobError(f"{name} must be an integer (got {raw!r})") from None
    if floor is not None and value < floor:
        return floor
    return value


def read_float(
    name: str,
    default: float,
    *,
    floor: float | None = None,
    environ: dict | None = None,
) -> float:
    """Float knob ``name``; unset/empty means ``default``."""
    raw = _raw(name, environ)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise EnvKnobError(f"{name} must be a number (got {raw!r})") from None
    if floor is not None and value < floor:
        return floor
    return value


def read_optional_int(
    name: str,
    *,
    floor: int | None = None,
    environ: dict | None = None,
) -> int | None:
    """Integer knob where unset means "feature off" (``None``)."""
    if _raw(name, environ) is None:
        return None
    return read_int(name, 0, floor=floor, environ=environ)


def read_choice(
    name: str,
    default: str,
    *,
    choices: tuple[str, ...],
    environ: dict | None = None,
) -> str:
    """Enumerated knob ``name``; unset/empty means ``default``.

    The value is lower-cased before matching, so ``REPRO_GUARD=STRICT``
    works; anything outside ``choices`` raises :class:`EnvKnobError`.
    """
    raw = _raw(name, environ)
    if raw is None:
        return default
    value = raw.lower()
    if value not in choices:
        raise EnvKnobError(
            f"{name} must be one of {', '.join(choices)} (got {raw!r})"
        )
    return value


def read_optional_float(
    name: str,
    *,
    floor: float | None = None,
    environ: dict | None = None,
) -> float | None:
    """Float knob where unset means "feature off" (``None``)."""
    if _raw(name, environ) is None:
        return None
    return read_float(name, 0.0, floor=floor, environ=environ)
