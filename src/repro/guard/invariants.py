"""Runtime invariant checkers for the simulator's own contracts.

The paper's headline guarantee is *starvation freedom* (Section 3):
batching bounds how long any request can be delayed.  The DRAM model, in
turn, promises DDR protocol conformance, and the controller promises
that every request it accepts is serviced exactly once.  None of that is
worth claiming unless something checks it, so :class:`Guard` validates,
while a simulation runs:

* **Request conservation** — every enqueued request is issued at most
  once and completed exactly once after issue; the guard's shadow
  accounting must match the controller's occupancy counters at the end
  of the run.  This is the check that catches a broken scheduler
  double-issuing a request *before* it corrupts the request buffers.
* **DRAM timing protocol** — every :class:`~repro.dram.bank.AccessOutcome`
  must respect tRP (precharge→activate), tRCD (activate→CAS) and tCL
  (CAS→data) spacing, the burst length on the data bus, per-bank
  exclusivity (a bank services one request at a time) and per-channel
  data-bus exclusivity (bursts never overlap).
* **Row-buffer state machine** — the bank's reported row result
  (hit/closed/conflict) must match a shadow row-buffer model, and the
  command sequence must match the result (a conflict precharges and
  activates, a hit does neither).
* **Marking-cap compliance** — no batch marks more than ``Marking-Cap``
  requests per (thread, bank) (paper Rule 1).
* **Per-batch rank consistency** — a formed batch's thread ranking
  assigns distinct ranks and covers every thread with marked requests
  (paper Rule 3 is only meaningful over a total order).
* **Batch-bounded delay** — under full batching with uniform thread
  priorities, a read request that arrives with ``k`` same-(thread,bank)
  requests ahead of it must be marked within ``ceil(k / Marking-Cap)``
  batch formations (the paper's starvation-freedom bound, counted in
  batches).

Violations raise (``strict`` mode) or record-and-log (``check`` mode) a
structured :class:`InvariantViolation` carrying the cycle, channel, bank
and request context.  Guards are wired with the probe-or-None pattern:
``--guard off`` (the default) leaves every hook site holding ``None``.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Iterable, Mapping

from ..envknobs import read_choice
from ..events import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.batcher import Batcher
    from ..dram.bank import AccessOutcome
    from ..dram.controller import MemoryController
    from ..dram.request import MemoryRequest

__all__ = ["GUARD_MODES", "GUARD_STATS", "Guard", "InvariantViolation", "guard_from_env"]

logger = logging.getLogger(__name__)

GUARD_MODES = ("off", "check", "strict")

# Process-wide violation tally by invariant kind, across every Guard
# instance (strict-mode raises included — the count happens first).
# Folded into the metrics plane by
# :func:`repro.obs.metrics.collect_process_metrics`.
GUARD_STATS: dict[str, int] = {}

# Conservation states for buffered/in-service requests.
_BUFFERED = 0
_ISSUED = 1


class InvariantViolation(SimulationError):
    """A runtime invariant failed, with full simulation context.

    Attributes
    ----------
    kind:
        Short invariant name (``conservation``, ``timing``, ``row-state``,
        ``bus-exclusivity``, ``bank-exclusivity``, ``marking-cap``,
        ``rank-consistency``, ``batch-bound``).
    cycle:
        Simulation time (CPU cycles) at which the violation was detected.
    channel / bank / request_id / thread_id:
        Where it happened, when applicable (``None`` otherwise).
    """

    def __init__(
        self,
        kind: str,
        message: str,
        *,
        cycle: int,
        channel: int | None = None,
        bank: int | None = None,
        request_id: int | None = None,
        thread_id: int | None = None,
    ) -> None:
        self.kind = kind
        self.cycle = cycle
        self.channel = channel
        self.bank = bank
        self.request_id = request_id
        self.thread_id = thread_id
        context = [f"cycle={cycle}"]
        if channel is not None:
            context.append(f"ch={channel}")
        if bank is not None:
            context.append(f"bank={bank}")
        if request_id is not None:
            context.append(f"req={request_id}")
        if thread_id is not None:
            context.append(f"thread={thread_id}")
        super().__init__(f"invariant {kind!r} violated: {message} [{', '.join(context)}]")


def guard_from_env(environ: dict | None = None) -> "Guard | None":
    """A :class:`Guard` per ``REPRO_GUARD`` (``off``/``check``/``strict``),
    or ``None`` when guarding is off — so hook sites stay probe-or-None."""
    mode = read_choice("REPRO_GUARD", "off", choices=GUARD_MODES, environ=environ)
    return None if mode == "off" else Guard(mode)


class _BankShadow:
    """Shadow per-bank protocol state (row buffer + exclusivity window)."""

    __slots__ = ("open_row", "busy_until")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.busy_until = 0


class Guard:
    """Runtime invariant checker attached to one simulated system.

    Construct with ``mode="strict"`` to raise on the first violation or
    ``mode="check"`` to collect violations in :attr:`violations` (each is
    also logged as a warning).  Pass the instance to
    :class:`~repro.sim.system.System` (``guard=``); the controller,
    batcher and scheduler discover it at attach time, exactly like trace
    probes.
    """

    def __init__(self, mode: str = "strict") -> None:
        if mode not in ("check", "strict"):
            raise ValueError(f"unknown guard mode {mode!r}; use check or strict")
        self.mode = mode
        self.violations: list[InvariantViolation] = []
        # How many of each check ran — the "did the guard actually
        # engage?" signal for tests and the stall report.
        self.counters = {
            "enqueues": 0,
            "issues": 0,
            "completions": 0,
            "batches": 0,
            "rankings": 0,
        }
        self.controller: "MemoryController | None" = None
        self._timing = None
        # Conservation: request id -> _BUFFERED/_ISSUED while live, moved
        # to ``_completed`` exactly once.
        self._state: dict[int, int] = {}
        self._completed: set[int] = set()
        # Timing shadows.
        self._banks: dict[tuple[int, int], _BankShadow] = {}
        self._bus_end: dict[int, int] = {}
        # Batch-bounded delay: request id -> formations it may still
        # witness unmarked.  Enabled only for plain full batching with
        # uniform priorities (the configuration the paper's bound covers).
        self._bound_enabled = False
        self._mark_deadline: dict[int, int] = {}
        self._batcher: "Batcher | None" = None

    # -- wiring ------------------------------------------------------------
    def attach_controller(self, controller: "MemoryController") -> None:
        self.controller = controller
        self._timing = controller.timing

    def attach_batcher(self, batcher: "Batcher") -> None:
        from ..core.batcher import FullBatcher

        self._batcher = batcher
        self._bound_enabled = type(batcher) is FullBatcher and all(
            level == 1 for level in batcher.priorities.values()
        )

    # -- violation plumbing ------------------------------------------------
    def _report(self, violation: InvariantViolation) -> None:
        GUARD_STATS[violation.kind] = GUARD_STATS.get(violation.kind, 0) + 1
        if self.mode == "strict":
            raise violation
        self.violations.append(violation)
        logger.warning("%s", violation)

    # -- controller hooks --------------------------------------------------
    def on_enqueue(self, request: "MemoryRequest", now: int) -> None:
        """A request entered the buffer (called after index insertion)."""
        self.counters["enqueues"] += 1
        rid = request.request_id
        if rid in self._state or rid in self._completed:
            self._report(
                InvariantViolation(
                    "conservation",
                    "request enqueued twice",
                    cycle=now,
                    channel=request.channel,
                    bank=request.bank,
                    request_id=rid,
                    thread_id=request.thread_id,
                )
            )
            return
        self._state[rid] = _BUFFERED
        if self._bound_enabled and request.is_read and not request.marked:
            batcher = self._batcher
            controller = self.controller
            assert batcher is not None and controller is not None
            key = (request.channel, request.bank)
            # Queue position among same-(thread, bank) buffered reads,
            # counting this request; marked ones ahead only shorten the
            # wait, so including them keeps the bound conservative-valid.
            position = controller.buffered_read_threads(key).get(
                request.thread_id, 1
            )
            self._mark_deadline[rid] = -(-position // batcher.marking_cap)

    def on_pre_issue(
        self, request: "MemoryRequest", key: tuple[int, int], now: int
    ) -> None:
        """Arbitration picked ``request`` — checked *before* the
        controller mutates its buffers, so a double-issue is caught as a
        structured violation instead of buffer corruption."""
        self.counters["issues"] += 1
        rid = request.request_id
        state = self._state.get(rid)
        if state == _BUFFERED:
            self._state[rid] = _ISSUED
            return
        if state == _ISSUED or rid in self._completed:
            message = "request issued twice"
        else:
            message = "issued request was never enqueued"
        self._report(
            InvariantViolation(
                "conservation",
                message,
                cycle=now,
                channel=key[0],
                bank=key[1],
                request_id=rid,
                thread_id=request.thread_id,
            )
        )

    def on_post_issue(
        self,
        request: "MemoryRequest",
        outcome: "AccessOutcome",
        key: tuple[int, int],
        now: int,
    ) -> None:
        """The bank laid out a command sequence; check DDR conformance."""
        t = self._timing
        assert t is not None
        shadow = self._banks.get(key)
        if shadow is None:
            shadow = self._banks[key] = _BankShadow()

        def bad(kind: str, message: str) -> None:
            self._report(
                InvariantViolation(
                    kind,
                    message,
                    cycle=now,
                    channel=key[0],
                    bank=key[1],
                    request_id=request.request_id,
                    thread_id=request.thread_id,
                )
            )

        # Bank exclusivity: one request in service per bank at a time.
        if outcome.start < now or outcome.start < shadow.busy_until:
            bad(
                "bank-exclusivity",
                f"access starts at {outcome.start} while the bank is busy "
                f"until {max(now, shadow.busy_until)}",
            )

        # Row-buffer state machine: the reported result must match the
        # shadow row buffer, and the command sequence must match the
        # result.
        expected = (
            "closed"
            if shadow.open_row is None
            else ("hit" if shadow.open_row == request.row else "conflict")
        )
        if outcome.row_result != expected:
            bad(
                "row-state",
                f"bank reported row {outcome.row_result!r} but the shadow "
                f"row buffer (open row {shadow.open_row}) implies {expected!r}",
            )
        if outcome.row_result == "conflict":
            if outcome.precharge_at is None or outcome.activate_at is None:
                bad("timing", "row conflict must precharge and activate")
            else:
                if outcome.activate_at - outcome.precharge_at < t.tRP:
                    bad(
                        "timing",
                        f"tRP violated: PRE@{outcome.precharge_at} -> "
                        f"ACT@{outcome.activate_at} < {t.tRP}",
                    )
                if outcome.cas_at - outcome.activate_at < t.tRCD:
                    bad(
                        "timing",
                        f"tRCD violated: ACT@{outcome.activate_at} -> "
                        f"CAS@{outcome.cas_at} < {t.tRCD}",
                    )
        elif outcome.row_result == "closed":
            if outcome.precharge_at is not None or outcome.activate_at is None:
                bad("timing", "closed row must activate without a precharge")
            elif outcome.cas_at - outcome.activate_at < t.tRCD:
                bad(
                    "timing",
                    f"tRCD violated: ACT@{outcome.activate_at} -> "
                    f"CAS@{outcome.cas_at} < {t.tRCD}",
                )
        else:  # hit
            if outcome.precharge_at is not None or outcome.activate_at is not None:
                bad("timing", "row hit must issue CAS only")
        if outcome.data_start - outcome.cas_at < t.tCL:
            bad(
                "timing",
                f"tCL violated: CAS@{outcome.cas_at} -> "
                f"data@{outcome.data_start} < {t.tCL}",
            )
        if outcome.completion - outcome.data_start != t.tBUS:
            bad(
                "timing",
                f"burst length wrong: data {outcome.data_start}..."
                f"{outcome.completion} != tBUS {t.tBUS}",
            )
        if outcome.bank_free < outcome.completion:
            bad("timing", "bank freed before its data transfer completed")

        # Data-bus exclusivity per channel: bursts never overlap.
        channel = key[0]
        bus_end = self._bus_end.get(channel, 0)
        if outcome.data_start < bus_end:
            bad(
                "bus-exclusivity",
                f"data burst at {outcome.data_start} overlaps the previous "
                f"burst ending at {bus_end}",
            )
        if outcome.completion > bus_end:
            self._bus_end[channel] = outcome.completion

        shadow.open_row = request.row
        if outcome.bank_free > shadow.busy_until:
            shadow.busy_until = outcome.bank_free

    def on_complete(self, request: "MemoryRequest", now: int) -> None:
        self.counters["completions"] += 1
        rid = request.request_id
        state = self._state.pop(rid, None)
        if state == _ISSUED:
            self._completed.add(rid)
            self._mark_deadline.pop(rid, None)
            return
        if state == _BUFFERED:
            self._state[rid] = _BUFFERED  # restore for the final audit
            message = "request completed without being issued"
        elif rid in self._completed:
            message = "request completed twice"
        else:
            message = "completed request was never enqueued"
        self._report(
            InvariantViolation(
                "conservation",
                message,
                cycle=now,
                channel=request.channel,
                bank=request.bank,
                request_id=rid,
                thread_id=request.thread_id,
            )
        )

    # -- batching / ranking hooks ------------------------------------------
    def on_batch_formed(
        self, now: int, batcher: "Batcher", marked: list["MemoryRequest"]
    ) -> None:
        """A batch formed: check the cap and the starvation-freedom bound."""
        self.counters["batches"] += 1
        cap = batcher.marking_cap
        for (thread_id, channel, bank), used in batcher._marks_used.items():
            if used > cap:
                self._report(
                    InvariantViolation(
                        "marking-cap",
                        f"{used} requests marked for one (thread, bank) "
                        f"with Marking-Cap {cap}",
                        cycle=now,
                        channel=channel,
                        bank=bank,
                        thread_id=thread_id,
                    )
                )
        for request in marked:
            if not request.marked:
                self._report(
                    InvariantViolation(
                        "marking-cap",
                        "batch reported an unmarked request as marked",
                        cycle=now,
                        channel=request.channel,
                        bank=request.bank,
                        request_id=request.request_id,
                        thread_id=request.thread_id,
                    )
                )
        if not self._bound_enabled or not self._mark_deadline:
            return
        deadlines = self._mark_deadline
        for request in marked:
            deadlines.pop(request.request_id, None)
        controller = self.controller
        assert controller is not None
        for request in controller.buffered_reads():
            if request.marked:
                deadlines.pop(request.request_id, None)
                continue
            remaining = deadlines.get(request.request_id)
            if remaining is None:
                continue
            remaining -= 1
            if remaining <= 0:
                deadlines.pop(request.request_id, None)
                self._report(
                    InvariantViolation(
                        "batch-bound",
                        "request exceeded the starvation-freedom bound: "
                        "still unmarked after its batch-formation deadline "
                        "(paper Section 3)",
                        cycle=now,
                        channel=request.channel,
                        bank=request.bank,
                        request_id=request.request_id,
                        thread_id=request.thread_id,
                    )
                )
            else:
                deadlines[request.request_id] = remaining

    def on_ranks(
        self,
        ranks: Mapping[int, int],
        marked: Iterable["MemoryRequest"],
        now: int,
    ) -> None:
        """A within-batch thread ranking was computed; it must be a total
        order covering every thread with marked requests."""
        self.counters["rankings"] += 1
        seen: dict[int, int] = {}
        for thread_id, rank in ranks.items():
            other = seen.get(rank)
            if other is not None:
                self._report(
                    InvariantViolation(
                        "rank-consistency",
                        f"threads {other} and {thread_id} share rank {rank}",
                        cycle=now,
                        thread_id=thread_id,
                    )
                )
            seen[rank] = thread_id
        for request in marked:
            if request.thread_id not in ranks:
                self._report(
                    InvariantViolation(
                        "rank-consistency",
                        "thread has marked requests but no rank",
                        cycle=now,
                        channel=request.channel,
                        bank=request.bank,
                        request_id=request.request_id,
                        thread_id=request.thread_id,
                    )
                )

    # -- end-of-run audit --------------------------------------------------
    def finalize(self, now: int) -> None:
        """End-of-run conservation audit: the guard's shadow accounting
        must agree with the controller's occupancy counters.  Requests
        still in service when the last core finishes are legitimate; a
        *buffered*-count mismatch means a request was lost or fabricated.
        """
        controller = self.controller
        if controller is None:
            return
        buffered = sum(1 for state in self._state.values() if state == _BUFFERED)
        outstanding = controller.outstanding()
        if buffered != outstanding:
            self._report(
                InvariantViolation(
                    "conservation",
                    f"controller reports {outstanding} buffered requests "
                    f"but the guard tracked {buffered}",
                    cycle=now,
                )
            )

    def summary(self) -> dict[str, int]:
        """Counter snapshot plus the violation count (for reports/tests)."""
        return {**self.counters, "violations": len(self.violations)}
