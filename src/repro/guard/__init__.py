"""Runtime robustness subsystem: invariant checking, fault injection,
and crash-safe degradation.

Three layers (see DESIGN.md and the README "Robustness & fault
injection" section):

* :mod:`repro.guard.invariants` — opt-in runtime validators asserting
  that the simulator upholds its own contracts: DRAM timing-protocol
  conformance, request conservation, marking-cap compliance, per-batch
  rank consistency, and the paper's batch-bounded starvation-freedom
  guarantee (Section 3).  Selected with ``--guard {off,check,strict}``
  or the ``REPRO_GUARD`` environment knob.
* :mod:`repro.guard.chaos` — a deterministic, seedable fault plan that
  kills pool workers, corrupts disk-cache entries, and injects SQLite
  errors into the campaign store, so recovery paths are exercised on
  demand (``repro campaign run --chaos ...`` / ``REPRO_CHAOS``).
* :mod:`repro.guard.diagnostics` — the no-progress watchdog's stall
  report: when :meth:`repro.sim.system.System.run` detects bounded
  cycles with zero commits it dumps queue/bank/batch state (plus the
  trace ring buffer when one is attached) and raises a clean
  :class:`~repro.events.SimulationStalled` instead of burning the event
  budget.

The wiring follows the observability layer's probe-or-None pattern:
with guards off (the default) every instrumented hot path holds ``None``
and pays a single local ``is not None`` test — the bench regression gate
runs with guards compiled out.
"""

from __future__ import annotations

from ..events import SimulationStalled
from .chaos import ChaosInjectedError, ChaosPlan, chaos_from_env
from .invariants import GUARD_MODES, Guard, InvariantViolation, guard_from_env

__all__ = [
    "GUARD_MODES",
    "ChaosInjectedError",
    "ChaosPlan",
    "Guard",
    "InvariantViolation",
    "SimulationStalled",
    "chaos_from_env",
    "guard_from_env",
]
