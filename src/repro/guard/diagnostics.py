"""Stall diagnostics for the no-progress watchdog.

When :meth:`repro.sim.system.System.run` observes a full watchdog window
with zero instruction commits it calls :func:`stall_report` to capture a
human-readable snapshot of where the simulation is wedged — the event
queue, every core's retirement/MSHR state, the controller's buffer and
bank occupancy, the batcher's outstanding marks — plus the tail of the
trace ring buffer when one is attached.  The report rides on the
:class:`~repro.events.SimulationStalled` exception so a livelocked run
fails with an actionable dump instead of silently burning the
``max_events`` budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.system import System

__all__ = ["stall_report"]

# How many trailing ring-buffer events to include in the dump.
_RING_TAIL = 20


def stall_report(system: "System", events: int) -> str:
    """A multi-line snapshot of a (suspected) livelocked ``system``."""
    queue = system.queue
    controller = system.controller
    lines = [
        "=== simulation stall report ===",
        f"time: {queue.now} cycles, events processed: {events}, "
        f"pending events: {len(queue)}",
    ]
    next_time = queue.peek_time()
    if next_time is not None:
        lines.append(f"next event at: {next_time}")

    lines.append("-- cores --")
    for core in system.cores:
        lines.append(
            f"core {core.thread_id}: retired={core.instructions_retired} "
            f"pending_loads={len(core._pending)} mshr={core.mshr_in_use}"
        )

    lines.append("-- controller --")
    lines.append(
        f"buffered reads={controller.read_occupancy} "
        f"writes={controller.write_occupancy} "
        f"draining_writes={controller.draining_writes}"
    )
    for key, index in sorted(controller.read_indexes()):
        channel_id, bank_id = key
        bank = controller.channels[channel_id].banks[bank_id]
        threads = dict(controller.buffered_read_threads(key))
        lines.append(
            f"bank ch{channel_id}/b{bank_id}: {index.size} buffered reads "
            f"(threads {threads}), open_row={bank.open_row}, "
            f"busy_until={bank.busy_until}"
        )
    pending_wakes = sorted(controller._bank_wake.items())
    if pending_wakes:
        lines.append(f"pending bank wakes: {pending_wakes}")
    else:
        lines.append("pending bank wakes: none (no arbitration scheduled)")

    batcher = getattr(controller.scheduler, "batcher", None)
    if batcher is not None:
        marks = {
            key: used for key, used in batcher._marks_used.items() if used
        }
        lines.append("-- batcher --")
        lines.append(
            f"{type(batcher).__name__}: cap={batcher.marking_cap} "
            f"marks_in_flight={marks or 'none'}"
        )

    tracer = system.tracer
    if tracer is not None:
        for sink in tracer.sinks:
            events_attr = getattr(sink, "events", None)
            if events_attr is None:
                continue
            tail = list(events_attr)[-_RING_TAIL:]
            if not tail:
                continue
            lines.append(f"-- trace ring buffer (last {len(tail)} events) --")
            lines.extend(str(event) for event in tail)

    lines.append("=== end stall report ===")
    return "\n".join(lines)
