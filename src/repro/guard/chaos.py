"""Deterministic, seedable fault injection for the experiment stack.

Recovery paths that are never exercised do not exist.  A
:class:`ChaosPlan` describes a reproducible fault campaign — kill or
hang pool workers, corrupt disk-cache entries, interject SQLite
``OperationalError`` into the campaign store — so the pool's
``BrokenProcessPool`` recovery, the cache's quarantine path, and the
orchestrator's retry/resume machinery are tested on demand instead of
hoped-for.

Determinism: every injection decision is a pure function of
``(seed, fault kind, target key)`` — a SHA-256 fraction compared against
the configured rate — so the same plan faults the same jobs every run.
Injections are *once-only*: each fired fault drops an atomic marker file
in the plan's marker directory (shared by every worker process), so a
retried job succeeds on its second attempt and a chaos-interrupted
campaign converges to the same results as a fault-free run.

Plan specs are comma-separated ``key=value`` strings, e.g.::

    kill=0.5,corrupt=1.0,sqlite=0.3,seed=7,dir=/tmp/chaos-markers

accepted by ``--chaos`` on the campaign CLI or the ``REPRO_CHAOS``
environment knob.  ``dir`` names the marker directory; when omitted,
:meth:`ChaosPlan.parse` creates a fresh temporary one (the CLI re-exports
the resolved spec so all workers share it).
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing
import os
import sqlite3
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

from ..envknobs import EnvKnobError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.diskcache import DiskCache

__all__ = ["CHAOS_STATS", "ChaosInjectedError", "ChaosPlan", "chaos_from_env"]

logger = logging.getLogger(__name__)

# Injections actually fired by this process, by fault kind.  Folded into
# the metrics plane by :func:`repro.obs.metrics.collect_process_metrics`
# (workers that die to an injection take their count with them — the
# surviving processes' tallies are the observable signal).
CHAOS_STATS: dict[str, int] = {}

_RATE_FIELDS = ("kill", "hang", "corrupt", "sqlite", "leasekill", "hbfreeze")

# How long a "hung" worker sleeps.  Pair hang-injection with
# REPRO_JOB_TIMEOUT_S so the pool's no-progress timeout reclaims it.
HANG_SECONDS = 3600.0


class ChaosInjectedError(RuntimeError):
    """An injected fault fired in the current process (serial paths raise
    this instead of dying, so the orchestrator's retry loop handles it)."""


@dataclass(frozen=True)
class ChaosPlan:
    """A reproducible fault-injection campaign.

    Rates are probabilities in ``[0, 1]`` evaluated per target key:

    * ``kill`` — a pool worker running a selected job dies hard
      (``os._exit``), breaking the pool; in-process execution raises
      :class:`ChaosInjectedError` instead.
    * ``hang`` — a selected worker sleeps past any sane job timeout.
    * ``corrupt`` — selected :class:`~repro.sim.diskcache.DiskCache`
      entries are truncated or overwritten with garbage.
    * ``sqlite`` — selected campaign-store commits raise
      ``sqlite3.OperationalError("database is locked")`` once.
    * ``leasekill`` — a distributed campaign worker dies hard right after
      claiming a selected job's lease (``campaign work`` processes
      ``os._exit``; in-process drains raise :class:`ChaosInjectedError`),
      leaving the lease to expire and be reclaimed by a peer.
    * ``hbfreeze`` — a selected job's lease heartbeats stop renewing for
      the rest of that execution (the worker keeps simulating), so the
      lease expires mid-run and the eventual commit is fenced off.
    """

    kill: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    sqlite: float = 0.0
    leasekill: float = 0.0
    hbfreeze: float = 0.0
    seed: int = 0
    dir: str = ""

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Parse a ``key=value,...`` spec; raises
        :class:`~repro.envknobs.EnvKnobError` on malformed input so the
        CLI reports it as a clean one-liner."""
        values: dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            name, sep, raw = item.partition("=")
            name = name.strip()
            raw = raw.strip()
            if not sep or not raw:
                raise EnvKnobError(
                    f"REPRO_CHAOS: expected key=value, got {item!r}"
                )
            if name in _RATE_FIELDS:
                try:
                    rate = float(raw)
                except ValueError:
                    raise EnvKnobError(
                        f"REPRO_CHAOS: {name} rate must be a number (got {raw!r})"
                    ) from None
                if not 0.0 <= rate <= 1.0:
                    raise EnvKnobError(
                        f"REPRO_CHAOS: {name} rate must be in [0, 1] (got {raw!r})"
                    )
                values[name] = rate
            elif name == "seed":
                try:
                    values["seed"] = int(raw)
                except ValueError:
                    raise EnvKnobError(
                        f"REPRO_CHAOS: seed must be an integer (got {raw!r})"
                    ) from None
            elif name == "dir":
                values["dir"] = raw
            else:
                raise EnvKnobError(
                    f"REPRO_CHAOS: unknown field {name!r} "
                    f"(use {', '.join(_RATE_FIELDS)}, seed, dir)"
                )
        plan = cls(**values)
        if not plan.dir:
            # Resolve a marker directory now; callers that fan out must
            # propagate plan.spec() so every worker shares these markers.
            plan = replace(
                plan, dir=tempfile.mkdtemp(prefix="repro-chaos-")
            )
        return plan

    def spec(self) -> str:
        """Canonical spec string round-tripping through :meth:`parse`
        (exported to ``REPRO_CHAOS`` so workers share the plan)."""
        parts = [
            f"{name}={getattr(self, name):g}"
            for name in _RATE_FIELDS
            if getattr(self, name) > 0.0
        ]
        parts.append(f"seed={self.seed}")
        parts.append(f"dir={self.dir}")
        return ",".join(parts)

    # -- decision machinery ------------------------------------------------
    def _decide(self, kind: str, key: str) -> bool:
        rate = getattr(self, kind)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.sha256(f"{self.seed}:{kind}:{key}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return fraction < rate

    def fire_once(self, kind: str, key: str) -> bool:
        """Whether fault ``kind`` fires for ``key`` — at most once across
        every process sharing this plan's marker directory."""
        if not self._decide(kind, key):
            return False
        token = hashlib.sha256(f"{kind}:{key}".encode()).hexdigest()[:16]
        marker = Path(self.dir) / f"{kind}-{token}.fired"
        try:
            marker.parent.mkdir(parents=True, exist_ok=True)
            # O_EXCL create is the cross-process once-only gate.
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(f"{kind} {key}\n")
        CHAOS_STATS[kind] = CHAOS_STATS.get(kind, 0) + 1
        return True

    # -- fault actions -----------------------------------------------------
    def maybe_kill_worker(self, key: str) -> None:
        """Kill (or hang) the current process if the plan selects ``key``.

        In a pool worker a kill is a hard ``os._exit`` so the parent sees
        ``BrokenProcessPool``; in the submitting process it degrades to a
        :class:`ChaosInjectedError` (killing the CLI would defeat the
        point of testing recovery).
        """
        if self.fire_once("kill", key):
            if multiprocessing.parent_process() is not None:
                logger.warning("chaos: killing worker on job %s", key[:12])
                os._exit(137)
            raise ChaosInjectedError(f"chaos: injected worker kill for job {key[:12]}")
        if self.fire_once("hang", key):
            if multiprocessing.parent_process() is not None:
                logger.warning("chaos: hanging worker on job %s", key[:12])
                time.sleep(HANG_SECONDS)
                os._exit(137)
            raise ChaosInjectedError(f"chaos: injected worker hang for job {key[:12]}")

    def corrupt_cache(self, cache: "DiskCache") -> int:
        """Truncate or garbage selected cache entries; returns the count.

        Selected entries alternate (by key hash) between truncation —
        half the file, a torn-write model — and byte garbage, so both
        ``json.JSONDecodeError`` shapes hit the quarantine path.
        """
        corrupted = 0
        for path, _mtime, size in cache.entries():
            key = path.stem
            if not self.fire_once("corrupt", f"{path.parent.name}/{key}"):
                continue
            try:
                if int(key[-1], 36) % 2 == 0:
                    with path.open("r+b") as fh:
                        fh.truncate(max(1, size // 2))
                else:
                    path.write_bytes(b"\x00chaos garbage\x00")
            except (OSError, ValueError):  # pragma: no cover - racing prune
                continue
            corrupted += 1
        if corrupted:
            logger.warning("chaos: corrupted %d cache entries", corrupted)
        return corrupted

    def maybe_kill_leaseholder(self, key: str, *, hard: bool = False) -> None:
        """Die right after claiming ``key``'s lease — at most once.

        ``hard`` is set by top-level ``campaign work`` processes (no pool
        parent to observe a ``BrokenProcessPool``): the process exits 137
        and its lease is left to expire so a peer worker reclaims the
        job.  In-process drains raise :class:`ChaosInjectedError`, which
        the worker loop charges as an ordinary retry.
        """
        if self.fire_once("leasekill", key):
            if hard:
                logger.warning(
                    "chaos: killing worker holding lease on %s", key[:12]
                )
                os._exit(137)
            raise ChaosInjectedError(
                f"chaos: injected lease-holder kill for job {key[:12]}"
            )

    def freeze_heartbeats(self, key: str) -> bool:
        """Whether this execution of ``key`` should stop renewing its
        lease heartbeats — at most once across the plan's processes.
        The worker keeps simulating; the lease expires mid-run, a peer
        (or a later pass) reclaims the job, and the frozen worker's
        eventual commit must be rejected by the fencing token."""
        return self.fire_once("hbfreeze", key)

    def sqlite_hiccup(self, key: str) -> None:
        """Raise a transient ``OperationalError`` once per store commit key."""
        if self.fire_once("sqlite", key):
            logger.warning("chaos: injected sqlite error on %s", key[:12])
            raise sqlite3.OperationalError("database is locked (chaos injection)")


def chaos_from_env(environ: dict | None = None) -> ChaosPlan | None:
    """The active :class:`ChaosPlan` per ``REPRO_CHAOS``, or ``None``."""
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_CHAOS")
    if raw is None or not raw.strip():
        return None
    return ChaosPlan.parse(raw.strip())
