"""Case-study experiments: Figures 5, 6, 7 (4-core) and 9 (8-core).

Each case study runs one fixed workload under the five schedulers and
reports per-thread memory slowdowns, unfairness, and system throughput —
the same quantities plotted in the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import baseline_system
from ..metrics.summary import WorkloadResult
from ..sim.runner import ExperimentRunner
from ..workloads.mixes import CASE_STUDY_1, CASE_STUDY_2, CASE_STUDY_3, EIGHT_CORE_MIX
from .paper_values import (
    FIG5_UNFAIRNESS,
    FIG6_UNFAIRNESS,
    FIG7_UNFAIRNESS,
    FIG9_UNFAIRNESS,
    SCHEDULERS,
)
from .reporting import ascii_bars, format_table, print_header

__all__ = ["CaseStudyResult", "run_case_study", "CASE_STUDIES"]


@dataclass
class CaseStudyResult:
    """All scheduler results for one case-study workload."""

    name: str
    workload: list[str]
    results: dict[str, WorkloadResult]
    paper_unfairness: dict[str, float] = field(default_factory=dict)

    def report(self) -> str:
        rows = []
        for scheduler in self.results:
            result = self.results[scheduler]
            row: list[object] = [
                scheduler,
                result.unfairness,
                self.paper_unfairness.get(scheduler, float("nan")),
                result.weighted_speedup,
                result.hmean_speedup,
            ]
            row.extend(t.memory_slowdown for t in result.threads)
            rows.append(row)
        headers = ["scheduler", "unfairness", "unf(paper)", "wspeedup", "hspeedup"]
        headers.extend(f"slow:{b}" for b in self.workload)
        table = format_table(headers, rows, title=f"{self.name}: {'+'.join(self.workload)}")
        bars = ascii_bars(
            {s: r.unfairness for s, r in self.results.items()},
            title="unfairness:",
        )
        return f"{table}\n\n{bars}"


# name -> (workload, cores, paper unfairness values)
CASE_STUDIES: dict[str, tuple[list[str], int, dict[str, float]]] = {
    "fig5_case_study_1": (CASE_STUDY_1, 4, FIG5_UNFAIRNESS),
    "fig6_case_study_2": (CASE_STUDY_2, 4, FIG6_UNFAIRNESS),
    "fig7_case_study_3": (CASE_STUDY_3, 4, FIG7_UNFAIRNESS),
    "fig9_8core_mix": (EIGHT_CORE_MIX, 8, FIG9_UNFAIRNESS),
}


def run_case_study(
    name: str,
    runner: ExperimentRunner | None = None,
    instructions: int | None = None,
) -> CaseStudyResult:
    """Run one of the paper's case studies by experiment name."""
    try:
        workload, cores, paper = CASE_STUDIES[name]
    except KeyError:
        raise ValueError(f"unknown case study {name!r}; known: {sorted(CASE_STUDIES)}") from None
    if runner is None:
        runner = ExperimentRunner(baseline_system(cores), instructions=instructions)
    results = runner.compare_schedulers(list(workload), SCHEDULERS)
    return CaseStudyResult(
        name=name, workload=list(workload), results=results, paper_unfairness=paper
    )


def main() -> None:  # pragma: no cover - CLI entry
    for name in CASE_STUDIES:
        print_header(name)
        print(run_case_study(name).report())


if __name__ == "__main__":  # pragma: no cover
    main()
