"""Ablation experiments: Figures 11, 12 and 13.

* Figure 11 — effect of ``Marking-Cap`` (1..10, 20, and no cap) on average
  unfairness/throughput and on the Case Study I/II slowdowns.
* Figure 12 — batching discipline: time-based static batching with various
  ``BatchDuration`` values, empty-slot batching, and PAR-BS's full batching.
* Figure 13 — within-batch scheduling: Max-Total vs Total-Max vs random vs
  round-robin ranking, and rank-free FR-FCFS / FCFS within batches
  (batching without parallelism-awareness), plus STFM for reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import baseline_system
from ..metrics.summary import WorkloadResult, geomean
from ..sim.runner import ExperimentRunner
from ..workloads.mixes import CASE_STUDY_1, CASE_STUDY_2, random_mixes
from .reporting import format_table, print_header

__all__ = [
    "SweepResult",
    "marking_cap_sweep",
    "batching_choice_sweep",
    "ranking_scheme_sweep",
    "marking_cap_spec",
    "batching_choice_spec",
    "ranking_scheme_spec",
    "MARKING_CAPS",
    "STATIC_DURATIONS",
    "RANKING_VARIANTS",
]

# Figure 11's x-axis: caps 1..10, 20 and no cap (None).
MARKING_CAPS: list[int | None] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, None]

# Figure 12's x-axis: static batch durations in cycles, then eslot and full.
STATIC_DURATIONS = [400, 800, 1600, 3200, 6400, 12800, 25600]

# Figure 13's x-axis: within-batch policies (PAR-BS variants) plus STFM.
RANKING_VARIANTS: dict[str, dict] = {
    "max-total(PAR-BS)": {"within_batch": "par", "ranking": "max-total"},
    "total-max": {"within_batch": "par", "ranking": "total-max"},
    "random": {"within_batch": "par", "ranking": "random"},
    "round-robin": {"within_batch": "par", "ranking": "round-robin"},
    "no-rank(FR-FCFS)": {"within_batch": "frfcfs"},
    "no-rank(FCFS)": {"within_batch": "fcfs"},
}


@dataclass
class SweepResult:
    """Results of one ablation sweep over workload mixes."""

    variants: dict[str, list[WorkloadResult]]  # variant label -> per-mix results
    mixes: list[list[str]]

    def summary(self) -> dict[str, dict[str, float]]:
        return {
            label: {
                "unfairness": geomean([r.unfairness for r in results]),
                "wspeedup": geomean([r.weighted_speedup for r in results]),
                "hspeedup": geomean([r.hmean_speedup for r in results]),
            }
            for label, results in self.variants.items()
        }

    def report(self, title: str) -> str:
        rows = [
            [label, vals["unfairness"], vals["wspeedup"], vals["hspeedup"]]
            for label, vals in self.summary().items()
        ]
        return format_table(
            ["variant", "unfairness", "wspeedup", "hspeedup"], rows, title=title
        )

    def case_slowdowns(self, variant: str, mix_index: int = 0) -> dict[str, float]:
        result = self.variants[variant][mix_index]
        return {t.benchmark: t.memory_slowdown for t in result.threads}


def _mix_set(count: int, include_case_studies: bool, seed: int) -> list[list[str]]:
    mixes: list[list[str]] = []
    if include_case_studies:
        mixes.append(list(CASE_STUDY_1))
        mixes.append(list(CASE_STUDY_2))
    mixes.extend(random_mixes(4, count=count, seed=seed))
    return mixes


def _sweep_spec(
    name: str,
    description: str,
    variants,
    count: int,
    include_case_studies: bool,
    seed: int,
    instructions: int | None,
    sim_seed: int = 0,
) -> "CampaignSpec":
    from ..campaign.spec import CampaignSpec

    return CampaignSpec(
        name=name,
        description=description,
        variants=tuple(variants),
        num_cores=(4,),
        mix_count=count,
        mix_seed=seed,
        include_case_studies=include_case_studies,
        seeds=(sim_seed,),
        instructions=instructions,
    )


def marking_cap_spec(
    caps: list[int | None] | None = None,
    count: int = 6,
    include_case_studies: bool = True,
    seed: int = 42,
    instructions: int | None = None,
    sim_seed: int = 0,
) -> "CampaignSpec":
    """The campaign spec behind Figure 11."""
    from ..campaign.spec import Variant

    caps = MARKING_CAPS if caps is None else caps
    variants = [
        Variant(
            f"c={cap}" if cap is not None else "no-c",
            "PAR-BS",
            (("marking_cap", cap),),
        )
        for cap in caps
    ]
    return _sweep_spec(
        "marking-cap",
        "Figure 11: PAR-BS fairness/throughput as Marking-Cap varies",
        variants, count, include_case_studies, seed, instructions, sim_seed,
    )


def batching_choice_spec(
    durations: list[int] | None = None,
    count: int = 6,
    include_case_studies: bool = True,
    seed: int = 42,
    instructions: int | None = None,
    sim_seed: int = 0,
) -> "CampaignSpec":
    """The campaign spec behind Figure 12."""
    from ..campaign.spec import Variant

    durations = STATIC_DURATIONS if durations is None else durations
    variants = [
        Variant(
            f"st-{duration}",
            "PAR-BS",
            (("batching", "static"), ("batch_duration", duration)),
        )
        for duration in durations
    ]
    variants.append(Variant("eslot", "PAR-BS", (("batching", "eslot"),)))
    variants.append(Variant("full", "PAR-BS"))
    return _sweep_spec(
        "batching-choice",
        "Figure 12: static vs eslot vs full batching",
        variants, count, include_case_studies, seed, instructions, sim_seed,
    )


def ranking_scheme_spec(
    count: int = 6,
    include_case_studies: bool = False,
    extra_mixes: list[list[str]] | None = None,
    seed: int = 42,
    instructions: int | None = None,
    sim_seed: int = 0,
) -> "CampaignSpec":
    """The campaign spec behind Figure 13."""
    from ..campaign.spec import CampaignSpec, Variant

    variants = [
        Variant(label, "PAR-BS", tuple(kwargs.items()))
        for label, kwargs in RANKING_VARIANTS.items()
    ]
    variants.append(Variant("STFM", "STFM"))
    return CampaignSpec(
        name="ranking-scheme",
        description="Figure 13: within-batch ranking ablations (plus STFM)",
        variants=tuple(variants),
        num_cores=(4,),
        mix_count=count,
        mix_seed=seed,
        mixes=tuple(tuple(m) for m in extra_mixes or ()),
        include_case_studies=include_case_studies,
        seeds=(sim_seed,),
        instructions=instructions,
    )


def _runner_params(
    runner: ExperimentRunner | None, instructions: int | None
) -> tuple[int | None, int, int | None, bool]:
    """(instructions, sim_seed, jobs, campaignable) derived from a runner.

    Runners with non-baseline configs cannot be expressed as campaign
    jobs (the grid is pinned to ``baseline_system``); those keep the
    direct in-process path.
    """
    if runner is None:
        return instructions, 0, None, True
    campaignable = runner.config == baseline_system(4)
    return (
        instructions if instructions is not None else runner.instructions,
        runner.seed,
        runner.jobs,
        campaignable,
    )


def _run_sweep(spec: "CampaignSpec", store, jobs: int | None) -> SweepResult:
    """Execute a 4-core sweep campaign and regroup grid-order results."""
    from ..campaign.orchestrator import run_and_collect

    results = run_and_collect(spec, store, jobs=jobs)
    labels = [v.label for v in spec.variants]
    variants: dict[str, list[WorkloadResult]] = {label: [] for label in labels}
    # Grid order is mix-major, variant minor.
    for job_index, result in enumerate(results):
        variants[labels[job_index % len(labels)]].append(result)
    return SweepResult(variants=variants, mixes=spec.mixes_for(4))


def marking_cap_sweep(
    caps: list[int | None] | None = None,
    count: int = 6,
    runner: ExperimentRunner | None = None,
    instructions: int | None = None,
    include_case_studies: bool = True,
    seed: int = 42,
    store: "ResultStore | None" = None,
) -> SweepResult:
    """Figure 11: PAR-BS fairness/throughput as Marking-Cap varies."""
    instructions, sim_seed, jobs, campaignable = _runner_params(runner, instructions)
    if campaignable:
        spec = marking_cap_spec(
            caps, count, include_case_studies, seed, instructions, sim_seed
        )
        return _run_sweep(spec, store, jobs)
    caps = MARKING_CAPS if caps is None else caps
    mixes = _mix_set(count, include_case_studies, seed)
    variants: dict[str, list[WorkloadResult]] = {}
    for cap in caps:
        label = f"c={cap}" if cap is not None else "no-c"
        variants[label] = [
            runner.run_workload(mix, "PAR-BS", marking_cap=cap) for mix in mixes
        ]
    return SweepResult(variants=variants, mixes=mixes)


def batching_choice_sweep(
    durations: list[int] | None = None,
    count: int = 6,
    runner: ExperimentRunner | None = None,
    instructions: int | None = None,
    include_case_studies: bool = True,
    seed: int = 42,
    store: "ResultStore | None" = None,
) -> SweepResult:
    """Figure 12: static vs eslot vs full batching."""
    instructions, sim_seed, jobs, campaignable = _runner_params(runner, instructions)
    if campaignable:
        spec = batching_choice_spec(
            durations, count, include_case_studies, seed, instructions, sim_seed
        )
        return _run_sweep(spec, store, jobs)
    durations = STATIC_DURATIONS if durations is None else durations
    mixes = _mix_set(count, include_case_studies, seed)
    variants: dict[str, list[WorkloadResult]] = {}
    for duration in durations:
        variants[f"st-{duration}"] = [
            runner.run_workload(
                mix, "PAR-BS", batching="static", batch_duration=duration
            )
            for mix in mixes
        ]
    variants["eslot"] = [
        runner.run_workload(mix, "PAR-BS", batching="eslot") for mix in mixes
    ]
    variants["full"] = [runner.run_workload(mix, "PAR-BS") for mix in mixes]
    return SweepResult(variants=variants, mixes=mixes)


def ranking_scheme_sweep(
    count: int = 6,
    runner: ExperimentRunner | None = None,
    instructions: int | None = None,
    include_case_studies: bool = False,
    extra_mixes: list[list[str]] | None = None,
    seed: int = 42,
    store: "ResultStore | None" = None,
) -> SweepResult:
    """Figure 13: within-batch ranking ablations (plus STFM reference)."""
    instructions, sim_seed, jobs, campaignable = _runner_params(runner, instructions)
    # With both case studies and extra mixes the legacy order (extras
    # first) differs from the campaign mix order (case studies first);
    # keep the direct path so mix_index-addressed lookups stay stable.
    if campaignable and not (include_case_studies and extra_mixes):
        spec = ranking_scheme_spec(
            count, include_case_studies, extra_mixes, seed, instructions, sim_seed
        )
        return _run_sweep(spec, store, jobs)
    runner = runner or ExperimentRunner(
        baseline_system(4), instructions=instructions
    )
    mixes = _mix_set(count, include_case_studies, seed)
    if extra_mixes:
        mixes = [list(m) for m in extra_mixes] + mixes
    variants: dict[str, list[WorkloadResult]] = {}
    for label, kwargs in RANKING_VARIANTS.items():
        variants[label] = [
            runner.run_workload(mix, "PAR-BS", **kwargs) for mix in mixes
        ]
    variants["STFM"] = [runner.run_workload(mix, "STFM") for mix in mixes]
    return SweepResult(variants=variants, mixes=mixes)


def main() -> None:  # pragma: no cover - CLI entry
    print_header("Figure 11: Marking-Cap sweep")
    print(marking_cap_sweep(count=4).report("Marking-Cap"))
    print_header("Figure 12: batching choice")
    print(batching_choice_sweep(count=4).report("Batching"))
    print_header("Figure 13: within-batch ranking")
    print(ranking_scheme_sweep(count=4).report("Ranking"))


if __name__ == "__main__":  # pragma: no cover
    main()
