"""Published numbers from the paper, for paper-vs-measured reporting.

All values are transcribed from the paper's figures and tables (ISCA 2008).
Figure values read off bar charts are approximate; table values are exact.
"""

from __future__ import annotations

__all__ = [
    "FIG5_UNFAIRNESS",
    "FIG6_UNFAIRNESS",
    "FIG7_UNFAIRNESS",
    "FIG9_UNFAIRNESS",
    "TABLE4",
    "SCHEDULERS",
]

SCHEDULERS = ["FR-FCFS", "FCFS", "NFQ", "STFM", "PAR-BS"]

# Case-study unfairness (Figures 5, 6, 7 and 9, printed above the bars).
FIG5_UNFAIRNESS = {"FR-FCFS": 5.26, "FCFS": 1.72, "NFQ": 1.71, "STFM": 1.42, "PAR-BS": 1.07}
FIG6_UNFAIRNESS = {"FR-FCFS": 3.90, "FCFS": 1.47, "NFQ": 1.87, "STFM": 1.30, "PAR-BS": 1.19}
FIG7_UNFAIRNESS = {"FR-FCFS": 1.00, "FCFS": 1.00, "NFQ": 1.00, "STFM": 1.00, "PAR-BS": 1.00}
FIG9_UNFAIRNESS = {"FR-FCFS": 4.78, "FCFS": 4.54, "NFQ": 3.21, "STFM": 1.66, "PAR-BS": 1.39}

# Table 4: geometric means over all workloads per system size.
# Metrics: unfairness, weighted speedup, hmean speedup, AST/req, worst-case
# request latency.  (16-core hmean speedup is reported x10 in the paper's
# Figure 10 but plainly in Table 4.)
TABLE4: dict[int, dict[str, dict[str, float]]] = {
    4: {
        "FR-FCFS": {"unfairness": 3.12, "wspeedup": 1.70, "hspeedup": 0.43, "ast": 374, "wc_latency": 18481},
        "FCFS": {"unfairness": 1.64, "wspeedup": 1.53, "hspeedup": 0.45, "ast": 364, "wc_latency": 13728},
        "NFQ": {"unfairness": 1.56, "wspeedup": 1.73, "hspeedup": 0.47, "ast": 346, "wc_latency": 19801},
        "STFM": {"unfairness": 1.36, "wspeedup": 1.79, "hspeedup": 0.52, "ast": 301, "wc_latency": 20305},
        "PAR-BS": {"unfairness": 1.22, "wspeedup": 1.87, "hspeedup": 0.57, "ast": 281, "wc_latency": 13866},
    },
    8: {
        "FR-FCFS": {"unfairness": 4.10, "wspeedup": 1.99, "hspeedup": 0.29, "ast": 605, "wc_latency": 34655},
        "FCFS": {"unfairness": 2.23, "wspeedup": 1.77, "hspeedup": 0.28, "ast": 633, "wc_latency": 20114},
        "NFQ": {"unfairness": 2.45, "wspeedup": 2.04, "hspeedup": 0.31, "ast": 525, "wc_latency": 59117},
        "STFM": {"unfairness": 1.41, "wspeedup": 2.11, "hspeedup": 0.34, "ast": 484, "wc_latency": 57764},
        "PAR-BS": {"unfairness": 1.31, "wspeedup": 2.20, "hspeedup": 0.37, "ast": 457, "wc_latency": 25614},
    },
    16: {
        "FR-FCFS": {"unfairness": 4.99, "wspeedup": 3.62, "hspeedup": 2.93, "ast": 968, "wc_latency": 35117},
        "FCFS": {"unfairness": 3.06, "wspeedup": 3.23, "hspeedup": 2.69, "ast": 964, "wc_latency": 36549},
        "NFQ": {"unfairness": 3.74, "wspeedup": 3.75, "hspeedup": 2.93, "ast": 774, "wc_latency": 88732},
        "STFM": {"unfairness": 1.81, "wspeedup": 3.85, "hspeedup": 3.33, "ast": 712, "wc_latency": 86577},
        "PAR-BS": {"unfairness": 1.63, "wspeedup": 3.97, "hspeedup": 3.50, "ast": 676, "wc_latency": 41115},
    },
}
