"""Experiment drivers reproducing every table and figure in the paper's
evaluation (Section 8).  See DESIGN.md §5 for the experiment index."""

from .abstract_fig3 import FIG3_BATCH, Fig3Result, run_fig3
from .ablations import (
    MARKING_CAPS,
    RANKING_VARIANTS,
    STATIC_DURATIONS,
    SweepResult,
    batching_choice_sweep,
    marking_cap_sweep,
    ranking_scheme_sweep,
)
from .aggregate import AggregateResult, default_workload_count, run_aggregate
from .case_studies import CASE_STUDIES, CaseStudyResult, run_case_study
from .characterization import CharacterizationResult, run_characterization
from .paper_values import SCHEDULERS, TABLE4
from .priorities import PriorityScenarioResult, run_opportunistic, run_weighted_lbm
from .summary import Table4Result, run_table4

__all__ = [
    "FIG3_BATCH",
    "Fig3Result",
    "run_fig3",
    "MARKING_CAPS",
    "RANKING_VARIANTS",
    "STATIC_DURATIONS",
    "SweepResult",
    "batching_choice_sweep",
    "marking_cap_sweep",
    "ranking_scheme_sweep",
    "AggregateResult",
    "default_workload_count",
    "run_aggregate",
    "CASE_STUDIES",
    "CaseStudyResult",
    "run_case_study",
    "CharacterizationResult",
    "run_characterization",
    "SCHEDULERS",
    "TABLE4",
    "PriorityScenarioResult",
    "run_opportunistic",
    "run_weighted_lbm",
    "Table4Result",
    "run_table4",
]
