"""Table 3 reproduction: alone-run benchmark characterization.

Runs every synthetic benchmark alone on the baseline 4-core memory system
and reports measured MPKI, row-buffer hit rate, BLP, AST/req and MCPI next
to the published values — this validates the trace-generator calibration
that every other experiment rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import baseline_system
from ..sim.runner import AloneStats, ExperimentRunner
from ..workloads.profiles import PROFILES, BenchmarkProfile
from .reporting import format_table, print_header

__all__ = ["CharacterizationResult", "run_characterization"]


@dataclass
class CharacterizationResult:
    rows: list[tuple[BenchmarkProfile, AloneStats, float]]  # profile, stats, mpki

    def report(self) -> str:
        table_rows = []
        for profile, stats, mpki in self.rows:
            table_rows.append(
                [
                    profile.name,
                    profile.category,
                    profile.mpki,
                    mpki,
                    profile.row_hit_rate,
                    stats.row_hit_rate,
                    profile.blp,
                    stats.blp,
                    float(profile.ast_per_req),
                    stats.ast_per_req,
                    profile.mcpi,
                    stats.mcpi,
                ]
            )
        headers = [
            "benchmark",
            "cat",
            "MPKI(p)",
            "MPKI",
            "RBhit(p)",
            "RBhit",
            "BLP(p)",
            "BLP",
            "AST(p)",
            "AST",
            "MCPI(p)",
            "MCPI",
        ]
        return format_table(headers, table_rows, title="Table 3 characterization")


def run_characterization(
    runner: ExperimentRunner | None = None,
    instructions: int | None = None,
    benchmarks: list[str] | None = None,
) -> CharacterizationResult:
    """Characterize ``benchmarks`` (default: all 28) alone on the baseline."""
    runner = runner or ExperimentRunner(baseline_system(4), instructions=instructions)
    names = benchmarks or [
        p.name for p in sorted(PROFILES.values(), key=lambda p: p.number)
    ]
    rows = []
    for name in names:
        profile = PROFILES[name]
        stats = runner.alone(name)
        trace = runner.trace_for(name)
        mpki = trace.accesses_per_kilo_instruction()
        rows.append((profile, stats, mpki))
    return CharacterizationResult(rows=rows)


def main() -> None:  # pragma: no cover - CLI entry
    print_header("Table 3: benchmark characterization")
    print(run_characterization().report())


if __name__ == "__main__":  # pragma: no cover
    main()
