"""Aggregate experiments: Figures 8 (4-core), 10 (16-core) and the
workload-averaged halves of Table 4.

The paper averages over 100 pseudo-random 4-core mixes, 16 8-core mixes and
12 16-core mixes.  The mix counts here default to smaller numbers sized for
a laptop (override with the ``REPRO_WORKLOADS`` environment variable or the
``count`` argument); the sampling procedure is the paper's
(category-balanced pseudo-random selection).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import baseline_system
from ..envknobs import read_optional_int
from ..metrics.summary import WorkloadResult, geomean
from ..sim.runner import ExperimentRunner
from ..workloads.mixes import FIG8_SAMPLE_MIXES, SIXTEEN_CORE_MIXES, random_mixes
from .paper_values import SCHEDULERS, TABLE4
from .reporting import format_table, print_header

__all__ = [
    "AggregateResult",
    "aggregate_spec",
    "run_aggregate",
    "default_workload_count",
]


def default_workload_count(num_cores: int) -> int:
    """Number of random mixes per system size (paper: 100 / 16 / 12)."""
    env = read_optional_int("REPRO_WORKLOADS", floor=1)
    if env is not None:
        return env
    return {4: 12, 8: 6, 16: 4}.get(num_cores, 8)


@dataclass
class AggregateResult:
    """Geometric-mean metrics per scheduler over a set of workload mixes."""

    num_cores: int
    mixes: list[list[str]]
    per_mix: dict[str, list[WorkloadResult]]  # scheduler -> results per mix

    def summary(self) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for scheduler, results in self.per_mix.items():
            out[scheduler] = {
                "unfairness": geomean([r.unfairness for r in results]),
                "wspeedup": geomean([r.weighted_speedup for r in results]),
                "hspeedup": geomean([r.hmean_speedup for r in results]),
                "ast": geomean(
                    [max(r.avg_stall_per_request, 1e-9) for r in results]
                ),
                "wc_latency": max(r.worst_case_latency for r in results),
            }
        return out

    def report(self) -> str:
        paper = TABLE4.get(self.num_cores, {})
        summary = self.summary()
        rows = []
        for scheduler, vals in summary.items():
            p = paper.get(scheduler, {})
            rows.append(
                [
                    scheduler,
                    vals["unfairness"],
                    p.get("unfairness", float("nan")),
                    vals["wspeedup"],
                    p.get("wspeedup", float("nan")),
                    vals["hspeedup"],
                    p.get("hspeedup", float("nan")),
                    vals["ast"],
                    p.get("ast", float("nan")),
                ]
            )
        headers = [
            "scheduler",
            "unf",
            "unf(paper)",
            "ws",
            "ws(paper)",
            "hs",
            "hs(paper)",
            "AST",
            "AST(paper)",
        ]
        title = f"{self.num_cores}-core aggregate over {len(self.mixes)} mixes"
        return format_table(headers, rows, title=title)


def aggregate_spec(
    num_cores: int = 4,
    count: int | None = None,
    include_sample_mixes: bool = False,
    seed: int = 42,
    instructions: int | None = None,
    sim_seed: int = 0,
) -> "CampaignSpec":
    """The campaign spec behind Figures 8/10 for one system size."""
    from ..campaign.spec import CampaignSpec, Variant

    return CampaignSpec(
        name=f"aggregate-{num_cores}core",
        description=f"Paper aggregate comparison, {num_cores}-core system",
        variants=tuple(Variant(s, s) for s in SCHEDULERS),
        num_cores=(num_cores,),
        mix_count=count,
        mix_seed=seed,
        include_sample_mixes=include_sample_mixes,
        seeds=(sim_seed,),
        instructions=instructions,
    )


def run_aggregate(
    num_cores: int = 4,
    count: int | None = None,
    runner: ExperimentRunner | None = None,
    instructions: int | None = None,
    include_sample_mixes: bool = False,
    seed: int = 42,
    jobs: int | None = None,
    store: "ResultStore | None" = None,
) -> AggregateResult:
    """Run the paper's aggregate comparison for one system size.

    ``include_sample_mixes`` additionally prepends the named sample mixes
    shown on the figure's x-axis (Figure 8's ten mixes for 4 cores,
    Figure 10's five for 16 cores).

    The whole grid executes as a campaign: completed (mix × scheduler)
    cells are read back from the result store (``store``, default: the
    store at :func:`repro.campaign.store.default_db_path`) and only
    missing cells are simulated — interrupting and re-running resumes,
    and a finished aggregate is pure re-query.  Results are bit-identical
    to running the grid directly through
    :meth:`~repro.sim.runner.ExperimentRunner.run_many`.
    """
    if count is None:
        count = default_workload_count(num_cores)
    sim_seed = 0
    if runner is not None:
        if instructions is None:
            instructions = runner.instructions
        sim_seed = runner.seed
        if jobs is None:
            jobs = runner.jobs
        if runner.config != baseline_system(num_cores):
            return _run_aggregate_direct(
                num_cores, count, runner, include_sample_mixes, seed, jobs
            )
    from ..campaign.orchestrator import run_and_collect

    spec = aggregate_spec(
        num_cores,
        count=count,
        include_sample_mixes=include_sample_mixes,
        seed=seed,
        instructions=instructions,
        sim_seed=sim_seed,
    )
    results = run_and_collect(spec, store, jobs=jobs)
    mixes = spec.mixes_for(num_cores)
    per_mix: dict[str, list[WorkloadResult]] = {s: [] for s in SCHEDULERS}
    # Grid order is mix-major, variant (= scheduler) minor.
    for job_index, result in enumerate(results):
        per_mix[SCHEDULERS[job_index % len(SCHEDULERS)]].append(result)
    return AggregateResult(num_cores=num_cores, mixes=mixes, per_mix=per_mix)


def _run_aggregate_direct(
    num_cores: int,
    count: int,
    runner: ExperimentRunner,
    include_sample_mixes: bool,
    seed: int,
    jobs: int | None,
) -> AggregateResult:
    """Direct (non-campaign) path for runners with non-baseline configs,
    which the campaign grid — pinned to ``baseline_system`` — cannot
    describe."""
    mixes: list[list[str]] = []
    if include_sample_mixes:
        if num_cores == 4:
            mixes.extend([list(m) for m in FIG8_SAMPLE_MIXES])
        elif num_cores == 16:
            mixes.extend([list(m) for m in SIXTEEN_CORE_MIXES.values()])
    mixes.extend(random_mixes(num_cores, count=count, seed=seed))

    specs = [(mix, scheduler, {}) for mix in mixes for scheduler in SCHEDULERS]
    results = runner.run_many(specs, jobs=jobs)
    per_mix: dict[str, list[WorkloadResult]] = {s: [] for s in SCHEDULERS}
    for (_mix, scheduler, _kwargs), result in zip(specs, results):
        per_mix[scheduler].append(result)
    return AggregateResult(num_cores=num_cores, mixes=mixes, per_mix=per_mix)


def main() -> None:  # pragma: no cover - CLI entry
    for cores in (4, 8, 16):
        print_header(f"{cores}-core aggregate")
        print(run_aggregate(cores).report())


if __name__ == "__main__":  # pragma: no cover
    main()
