"""Aggregate experiments: Figures 8 (4-core), 10 (16-core) and the
workload-averaged halves of Table 4.

The paper averages over 100 pseudo-random 4-core mixes, 16 8-core mixes and
12 16-core mixes.  The mix counts here default to smaller numbers sized for
a laptop (override with the ``REPRO_WORKLOADS`` environment variable or the
``count`` argument); the sampling procedure is the paper's
(category-balanced pseudo-random selection).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..config import baseline_system
from ..metrics.summary import WorkloadResult, geomean
from ..sim.runner import ExperimentRunner
from ..workloads.mixes import FIG8_SAMPLE_MIXES, SIXTEEN_CORE_MIXES, random_mixes
from .paper_values import SCHEDULERS, TABLE4
from .reporting import format_table, print_header

__all__ = ["AggregateResult", "run_aggregate", "default_workload_count"]


def default_workload_count(num_cores: int) -> int:
    """Number of random mixes per system size (paper: 100 / 16 / 12)."""
    env = os.environ.get("REPRO_WORKLOADS")
    if env is not None:
        return max(1, int(env))
    return {4: 12, 8: 6, 16: 4}.get(num_cores, 8)


@dataclass
class AggregateResult:
    """Geometric-mean metrics per scheduler over a set of workload mixes."""

    num_cores: int
    mixes: list[list[str]]
    per_mix: dict[str, list[WorkloadResult]]  # scheduler -> results per mix

    def summary(self) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for scheduler, results in self.per_mix.items():
            out[scheduler] = {
                "unfairness": geomean([r.unfairness for r in results]),
                "wspeedup": geomean([r.weighted_speedup for r in results]),
                "hspeedup": geomean([r.hmean_speedup for r in results]),
                "ast": geomean(
                    [max(r.avg_stall_per_request, 1e-9) for r in results]
                ),
                "wc_latency": max(r.worst_case_latency for r in results),
            }
        return out

    def report(self) -> str:
        paper = TABLE4.get(self.num_cores, {})
        summary = self.summary()
        rows = []
        for scheduler, vals in summary.items():
            p = paper.get(scheduler, {})
            rows.append(
                [
                    scheduler,
                    vals["unfairness"],
                    p.get("unfairness", float("nan")),
                    vals["wspeedup"],
                    p.get("wspeedup", float("nan")),
                    vals["hspeedup"],
                    p.get("hspeedup", float("nan")),
                    vals["ast"],
                    p.get("ast", float("nan")),
                ]
            )
        headers = [
            "scheduler",
            "unf",
            "unf(paper)",
            "ws",
            "ws(paper)",
            "hs",
            "hs(paper)",
            "AST",
            "AST(paper)",
        ]
        title = f"{self.num_cores}-core aggregate over {len(self.mixes)} mixes"
        return format_table(headers, rows, title=title)


def run_aggregate(
    num_cores: int = 4,
    count: int | None = None,
    runner: ExperimentRunner | None = None,
    instructions: int | None = None,
    include_sample_mixes: bool = False,
    seed: int = 42,
    jobs: int | None = None,
) -> AggregateResult:
    """Run the paper's aggregate comparison for one system size.

    ``include_sample_mixes`` additionally prepends the named sample mixes
    shown on the figure's x-axis (Figure 8's ten mixes for 4 cores,
    Figure 10's five for 16 cores).  All (mix × scheduler) simulations
    are independent, so the whole aggregate fans out over ``jobs``
    worker processes (or ``REPRO_JOBS``) at once — the widest
    parallelism available in the suite.
    """
    if count is None:
        count = default_workload_count(num_cores)
    if runner is None:
        runner = ExperimentRunner(baseline_system(num_cores), instructions=instructions)

    mixes: list[list[str]] = []
    if include_sample_mixes:
        if num_cores == 4:
            mixes.extend([list(m) for m in FIG8_SAMPLE_MIXES])
        elif num_cores == 16:
            mixes.extend([list(m) for m in SIXTEEN_CORE_MIXES.values()])
    mixes.extend(random_mixes(num_cores, count=count, seed=seed))

    specs = [(mix, scheduler, {}) for mix in mixes for scheduler in SCHEDULERS]
    results = runner.run_many(specs, jobs=jobs)
    per_mix: dict[str, list[WorkloadResult]] = {s: [] for s in SCHEDULERS}
    for (_mix, scheduler, _kwargs), result in zip(specs, results):
        per_mix[scheduler].append(result)
    return AggregateResult(num_cores=num_cores, mixes=mixes, per_mix=per_mix)


def main() -> None:  # pragma: no cover - CLI entry
    for cores in (4, 8, 16):
        print_header(f"{cores}-core aggregate")
        print(run_aggregate(cores).report())


if __name__ == "__main__":  # pragma: no cover
    main()
