"""ASCII reporting helpers for the experiment drivers.

Every experiment prints a *paper vs measured* table so runs are directly
comparable with the published figures; EXPERIMENTS.md records one full run.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_metric_block", "print_header", "ascii_bars"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_metric_block(
    metrics: Mapping[str, Mapping[str, float]],
    paper: Mapping[str, Mapping[str, float]] | None = None,
) -> str:
    """Render per-scheduler metrics, optionally alongside paper values.

    ``metrics`` maps scheduler name to {metric: value}; ``paper`` has the
    same shape with the published numbers.
    """
    metric_names = sorted({m for vals in metrics.values() for m in vals})
    headers = ["scheduler"]
    for m in metric_names:
        headers.append(m)
        if paper is not None:
            headers.append(f"{m}(paper)")
    rows = []
    for scheduler, vals in metrics.items():
        row: list[object] = [scheduler]
        for m in metric_names:
            row.append(vals.get(m, float("nan")))
            if paper is not None:
                row.append(paper.get(scheduler, {}).get(m, float("nan")))
        rows.append(row)
    return format_table(headers, rows)


def ascii_bars(
    values: Mapping[str, float],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Render a horizontal ASCII bar chart (the terminal stand-in for the
    paper's bar figures).

    >>> print(ascii_bars({"a": 1.0, "b": 2.0}, width=4))
    a  ##    1.000
    b  ####  2.000
    """
    if not values:
        return title or ""
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{key.ljust(label_width)}  {bar.ljust(width)}  {value:.3f}")
    return "\n".join(lines)


def print_header(title: str) -> None:
    bar = "=" * len(title)
    print(f"\n{bar}\n{title}\n{bar}")


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 100 else f"{cell:.0f}"
    return str(cell)
