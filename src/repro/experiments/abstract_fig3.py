"""Figure 3 reproduction: within-batch scheduling in the abstract model.

The paper's Figure 3 compares FCFS, FR-FCFS and PAR-BS inside one batch of
requests from 4 threads using an abstract cost model (row conflict = 1
latency unit, row hit = 0.5).  The exact request layout of the figure is
not published machine-readably, so this driver uses a layout constructed to
match every property the paper states about it:

* Thread 1 has three requests, all to different banks (max-bank-load 1);
* Threads 2 and 3 both have max-bank-load 2, with Thread 2 having fewer
  total requests;
* Thread 4 has max-bank-load 5 (a long row-hit streak in one bank);
* the first request to each bank is a row conflict.

The qualitative results must match the paper: FCFS has the worst average
batch-completion time, FR-FCFS improves it by exploiting row hits, and
PAR-BS improves it further by servicing Thread 1 fully in parallel first —
without reducing row-buffer locality within the batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.abstract_model import AbstractBatch, ScheduleResult
from .reporting import format_table, print_header

__all__ = ["FIG3_BATCH", "Fig3Result", "run_fig3"]

# Per-bank request columns, oldest first: (thread, row).
# Thread 4 streams rows in bank 0 (row 9); threads 2/3 mix.
_FIG3_COLUMNS: dict[int, list[tuple[int, int]]] = {
    0: [(4, 9), (4, 9), (4, 9), (4, 9), (4, 9)],
    1: [(2, 3), (1, 4), (3, 6), (3, 6)],
    2: [(3, 5), (2, 7), (1, 2), (2, 7)],
    3: [(1, 8)],
}

FIG3_BATCH = AbstractBatch.from_bank_columns(_FIG3_COLUMNS)

# The paper's per-policy average batch-completion times for ITS layout; our
# layout reproduces the ordering and approximate gaps, not the exact values.
PAPER_AVERAGES = {"fcfs": 5.0, "fr-fcfs": 4.375, "par-bs": 3.125}


@dataclass
class Fig3Result:
    schedules: dict[str, ScheduleResult]

    def report(self) -> str:
        threads = sorted(
            {t for r in self.schedules.values() for t in r.completion}
        )
        rows = []
        for policy, result in self.schedules.items():
            row: list[object] = [policy]
            row.extend(float(result.completion.get(t, Fraction(0))) for t in threads)
            row.append(float(result.average_completion))
            row.append(PAPER_AVERAGES.get(policy, float("nan")))
            rows.append(row)
        headers = ["policy"] + [f"T{t}" for t in threads] + ["avg", "avg(paper layout)"]
        return format_table(headers, rows, title="Figure 3: batch-completion times")


def run_fig3(batch: AbstractBatch | None = None) -> Fig3Result:
    batch = batch or FIG3_BATCH
    return Fig3Result(
        schedules={
            policy: batch.schedule(policy)  # type: ignore[arg-type]
            for policy in ("fcfs", "fr-fcfs", "par-bs")
        }
    )


def main() -> None:  # pragma: no cover - CLI entry
    print_header("Figure 3: abstract within-batch scheduling")
    print(run_fig3().report())


if __name__ == "__main__":  # pragma: no cover
    main()
