"""Thread-priority experiments: Figure 14.

Two scenarios from Section 8.4:

* **Weighted lbm copies** — four copies of lbm with PAR-BS priority levels
  1, 1, 2, 8 (1 = most important) and the corresponding NFQ/STFM weights
  8, 8, 4, 1.  Every scheduler should respect the ordering; PAR-BS should
  give the high-priority copies the lowest slowdown because it preserves
  their bank-level parallelism.
* **Opportunistic service** — omnetpp is the only thread that matters;
  libquantum, milc and astar run purely opportunistically under PAR-BS
  (level :data:`~repro.core.OPPORTUNISTIC`: never marked, lowest priority).
  NFQ/STFM approximate this with a very large weight (8192) for omnetpp.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import baseline_system
from ..core.batcher import OPPORTUNISTIC
from ..metrics.summary import WorkloadResult
from ..sim.runner import ExperimentRunner
from .reporting import format_table, print_header

__all__ = ["PriorityScenarioResult", "run_weighted_lbm", "run_opportunistic"]

LBM_WORKLOAD = ["lbm", "lbm", "lbm", "lbm"]
LBM_PARBS_PRIORITIES = {0: 1, 1: 1, 2: 2, 3: 8}
LBM_WEIGHTS = {0: 8.0, 1: 8.0, 2: 4.0, 3: 1.0}

OPPORTUNISTIC_WORKLOAD = ["libquantum", "milc", "omnetpp", "astar"]
OPPORTUNISTIC_PARBS_PRIORITIES = {0: OPPORTUNISTIC, 1: OPPORTUNISTIC, 2: 1, 3: OPPORTUNISTIC}
OPPORTUNISTIC_WEIGHTS = {0: 1.0, 1: 1.0, 2: 8192.0, 3: 1.0}


@dataclass
class PriorityScenarioResult:
    name: str
    workload: list[str]
    labels: list[str]  # per-thread priority labels for display
    results: dict[str, WorkloadResult]

    def slowdowns(self, scheduler: str) -> list[float]:
        return [t.memory_slowdown for t in self.results[scheduler].threads]

    def report(self) -> str:
        headers = ["scheduler"] + [
            f"{b}({lab})" for b, lab in zip(self.workload, self.labels)
        ]
        rows = []
        for scheduler, result in self.results.items():
            rows.append([scheduler] + [t.memory_slowdown for t in result.threads])
        return format_table(headers, rows, title=f"{self.name} (memory slowdowns)")


def run_weighted_lbm(
    runner: ExperimentRunner | None = None,
    instructions: int | None = None,
) -> PriorityScenarioResult:
    """Figure 14 (left): 4x lbm with priorities 1-1-2-8 / weights 8-8-4-1."""
    runner = runner or ExperimentRunner(baseline_system(4), instructions=instructions)
    results = {
        "FR-FCFS": runner.run_workload(LBM_WORKLOAD, "FR-FCFS"),
        "NFQ-shares-8-8-4-1": runner.run_workload(LBM_WORKLOAD, "NFQ", weights=LBM_WEIGHTS),
        "STFM-weights-8-8-4-1": runner.run_workload(LBM_WORKLOAD, "STFM", weights=LBM_WEIGHTS),
        "PAR-BS-pri-1-1-2-8": runner.run_workload(
            LBM_WORKLOAD, "PAR-BS", priorities=LBM_PARBS_PRIORITIES
        ),
    }
    return PriorityScenarioResult(
        name="fig14_weighted_lbm",
        workload=LBM_WORKLOAD,
        labels=["pri1", "pri1", "pri2", "pri8"],
        results=results,
    )


def run_opportunistic(
    runner: ExperimentRunner | None = None,
    instructions: int | None = None,
) -> PriorityScenarioResult:
    """Figure 14 (right): omnetpp prioritized, the rest opportunistic."""
    runner = runner or ExperimentRunner(baseline_system(4), instructions=instructions)
    results = {
        "FR-FCFS": runner.run_workload(OPPORTUNISTIC_WORKLOAD, "FR-FCFS"),
        "NFQ-1-1-8K-1": runner.run_workload(
            OPPORTUNISTIC_WORKLOAD, "NFQ", weights=OPPORTUNISTIC_WEIGHTS
        ),
        "STFM-1-1-8K-1": runner.run_workload(
            OPPORTUNISTIC_WORKLOAD, "STFM", weights=OPPORTUNISTIC_WEIGHTS
        ),
        "PAR-BS-L-L-0-L": runner.run_workload(
            OPPORTUNISTIC_WORKLOAD, "PAR-BS", priorities=OPPORTUNISTIC_PARBS_PRIORITIES
        ),
    }
    return PriorityScenarioResult(
        name="fig14_opportunistic",
        workload=OPPORTUNISTIC_WORKLOAD,
        labels=["low", "low", "high", "low"],
        results=results,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print_header("Figure 14 left: weighted lbm copies")
    print(run_weighted_lbm().report())
    print_header("Figure 14 right: opportunistic service")
    print(run_opportunistic().report())


if __name__ == "__main__":  # pragma: no cover
    main()
