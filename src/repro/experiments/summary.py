"""Table 4 reproduction: cross-system summary.

Aggregates the 4-, 8- and 16-core comparisons (geometric means of
unfairness, weighted/hmean speedup, AST/req and the worst-case request
latency) and reports the PAR-BS-vs-STFM deltas the paper headlines
(1.11X fairness and +4.4%/+8.3% throughput on 4 cores).
"""

from __future__ import annotations

from dataclasses import dataclass

from .aggregate import AggregateResult, run_aggregate
from .paper_values import TABLE4
from .reporting import format_table, print_header

__all__ = ["Table4Result", "run_table4"]


@dataclass
class Table4Result:
    aggregates: dict[int, AggregateResult]  # cores -> aggregate

    def deltas_vs_stfm(self, cores: int) -> dict[str, float]:
        """PAR-BS improvement over STFM (the paper's headline row)."""
        summary = self.aggregates[cores].summary()
        stfm, parbs = summary["STFM"], summary["PAR-BS"]
        return {
            "unfairness_x": stfm["unfairness"] / parbs["unfairness"],
            "wspeedup_pct": 100.0 * (parbs["wspeedup"] / stfm["wspeedup"] - 1.0),
            "hspeedup_pct": 100.0 * (parbs["hspeedup"] / stfm["hspeedup"] - 1.0),
            "ast_pct": 100.0 * (1.0 - parbs["ast"] / stfm["ast"]),
        }

    def report(self) -> str:
        blocks = []
        for cores, aggregate in self.aggregates.items():
            rows = []
            paper = TABLE4.get(cores, {})
            for scheduler, vals in aggregate.summary().items():
                p = paper.get(scheduler, {})
                rows.append(
                    [
                        scheduler,
                        vals["unfairness"],
                        p.get("unfairness", float("nan")),
                        vals["wspeedup"],
                        p.get("wspeedup", float("nan")),
                        vals["hspeedup"],
                        p.get("hspeedup", float("nan")),
                        vals["ast"],
                        p.get("ast", float("nan")),
                        vals["wc_latency"],
                        p.get("wc_latency", float("nan")),
                    ]
                )
            headers = [
                "scheduler",
                "unf",
                "unf(p)",
                "ws",
                "ws(p)",
                "hs",
                "hs(p)",
                "AST",
                "AST(p)",
                "WC",
                "WC(p)",
            ]
            deltas = self.deltas_vs_stfm(cores)
            blocks.append(
                format_table(headers, rows, title=f"Table 4, {cores}-core system")
                + "\n"
                + (
                    f"PAR-BS vs STFM: {deltas['unfairness_x']:.2f}X fairness, "
                    f"{deltas['wspeedup_pct']:+.1f}% weighted speedup, "
                    f"{deltas['hspeedup_pct']:+.1f}% hmean speedup"
                )
            )
        return "\n\n".join(blocks)


def run_table4(
    core_counts: tuple[int, ...] = (4, 8, 16),
    counts: dict[int, int] | None = None,
    instructions: int | None = None,
    seed: int = 42,
    store: "ResultStore | None" = None,
) -> Table4Result:
    """Run the full cross-system summary.

    Each per-core aggregate executes as a campaign against ``store``
    (default: the store at the default cache location), so an interrupted
    Table 4 run resumes without redoing completed cells.
    """
    aggregates = {}
    for cores in core_counts:
        count = (counts or {}).get(cores)
        aggregates[cores] = run_aggregate(
            cores, count=count, instructions=instructions, seed=seed, store=store
        )
    return Table4Result(aggregates=aggregates)


def main() -> None:  # pragma: no cover - CLI entry
    print_header("Table 4: system summary")
    print(run_table4().report())


if __name__ == "__main__":  # pragma: no cover
    main()
