"""Analytical out-of-order core model.

Models the processor behaviour the paper's motivation rests on (Section 2):

* instructions dispatch in order into a fixed-size instruction window and
  retire in order at a fixed width (3/cycle in the baseline);
* a load that misses to DRAM is sent to the memory system at *dispatch*
  time — so independent misses inside the window are outstanding
  concurrently (memory-level parallelism);
* the core stalls when the *oldest* instruction in the window is an
  incomplete load: overlapped misses stall the core roughly once, while
  serialized misses stall it once per miss;
* stores retire immediately (write buffer) and never block commit;
* at most ``mshrs`` loads are outstanding at once.

Instead of stepping cycle by cycle, the model advances analytically between
memory events: dispatch and retirement both proceed at the core width, so
their trajectories are piecewise linear and the core only needs to wake at
request dispatches and data returns.  This keeps whole-system simulation
event-driven and fast while matching a cycle-stepped window model at
retire-width granularity.

Statistics follow the paper's definitions: ``stall_cycles`` counts cycles
where commit is blocked by an incomplete DRAM load (→ MCPI, memory
slowdown, AST/req).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Protocol

from ..config import CoreConfig
from ..events import EventQueue
from .trace import Trace

__all__ = ["Core", "CoreSnapshot", "MemoryPort"]


class MemoryPort(Protocol):
    """Interface the core uses to reach the memory hierarchy."""

    def access(
        self,
        thread_id: int,
        address: int,
        is_write: bool,
        on_complete: Callable[[], None] | None,
    ) -> None:
        """Issue an access.  For reads, ``on_complete`` fires when data
        returns; writes complete in the background."""


@dataclass(frozen=True)
class CoreSnapshot:
    """Core statistics frozen at first trace completion."""

    cycles: int
    instructions: int
    stall_cycles: int
    loads: int
    stores: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mcpi(self) -> float:
        """Memory cycles per instruction (paper Table 3)."""
        return self.stall_cycles / self.instructions if self.instructions else 0.0

    @property
    def avg_stall_per_request(self) -> float:
        """AST/req: average stall time per DRAM load request (paper §7)."""
        return self.stall_cycles / self.loads if self.loads else 0.0


class _PendingLoad:
    __slots__ = ("index", "done", "gpos")

    def __init__(self, index: int, gpos: int) -> None:
        self.index = index  # global instruction index (for commit blocking)
        self.gpos = gpos  # global trace position (for dependency tracking)
        self.done = False


class Core:
    """One processing core executing a trace against a memory port."""

    def __init__(
        self,
        thread_id: int,
        trace: Trace,
        queue: EventQueue,
        memory: MemoryPort,
        config: CoreConfig | None = None,
        repeat: bool = True,
        probe=None,
    ) -> None:
        self.thread_id = thread_id
        self.trace = trace
        self.queue = queue
        self.memory = memory
        self.config = config or CoreConfig()
        self.repeat = repeat
        # Optional ``core``-category trace probe emitting stall/unstall
        # edges (None when tracing is off — the hot loop guards on it).
        self._probe = probe
        self._stalled = False

        # Progress pointers, in instructions.
        self._t = 0  # time of last state sync
        self._retired = 0
        self._dispatched = 0
        self._trace_pos = 0
        self._base_instructions = 0  # instructions from completed trace passes
        # Cached per-pass constants: the trace is immutable, and all three
        # are read on every iteration of the analytical advance loop.
        self._trace_len = len(trace)
        self._trace_end_index = trace.total_instructions
        self._cum_index = trace.cum_index
        self._next_mem_index = self._mem_index(0)

        # Incomplete loads in program order.  Completed loads retire from
        # the front on every data return (the simulator's hottest
        # callback), so this must be a deque, not a list.
        self._pending: deque[_PendingLoad] = deque()
        self._incomplete_gpos: set[int] = set()  # for dependency checks
        # Accesses dispatched but waiting for a parent load's data before
        # their request can be sent: parent gpos -> [(address, is_write, load)].
        self._dep_waiters: dict[int, list[tuple[int, bool, _PendingLoad | None]]] = {}
        self._pass_count = 0
        self.mshr_in_use = 0

        # Statistics.
        self.stall_cycles = 0
        self.loads_issued = 0
        self.stores_issued = 0
        self.finished = False
        self.finish_time: int | None = None
        self.snapshot: CoreSnapshot | None = None
        self.on_finished: Callable[["Core"], None] | None = None

        self._wake_at: int | None = None

    # -- derived trace positions ---------------------------------------------
    def _mem_index(self, pos: int) -> int | None:
        """Global instruction index of the ``pos``-th memory instruction in
        the current trace pass, or None past the end."""
        if pos >= self._trace_len:
            return None
        return self._base_instructions + self._cum_index[pos]

    @property
    def instructions_retired(self) -> int:
        return self._retired

    # -- simulation wiring --------------------------------------------------------
    def start(self) -> None:
        """Register the core's first wake-up with the event queue."""
        self.queue.schedule(0, self._wake, priority=4)

    def _wake(self) -> None:
        self._wake_at = None
        self._advance(self.queue.now)
        self._reschedule()

    def _on_data(self, load: _PendingLoad) -> None:
        self._advance(self.queue.now)
        load.done = True
        self.mshr_in_use -= 1
        self._incomplete_gpos.discard(load.gpos)
        pending = self._pending
        while pending and pending[0].done:
            pending.popleft()
        # Release accesses that were waiting on this load's data.
        for address, is_write, waiter in self._dep_waiters.pop(load.gpos, ()):
            self._send(address, is_write, waiter)
        self._advance(self.queue.now)
        self._reschedule()

    # -- the analytical engine -----------------------------------------------------
    def _advance(self, now: int) -> None:
        """Bring retirement/dispatch pointers forward to time ``now``.

        This loop is the single hottest path of the whole simulator, so it
        avoids attribute chasing and float math: loop-invariant parameters
        live in locals, and the ceil divisions use integer arithmetic.
        """
        width = self.config.width
        window = self.config.window_size
        mshrs = self.config.mshrs
        entries = self.trace.entries
        trace_len = self._trace_len
        # The pending deque and the end index are stable object references /
        # values across loop iterations except through the calls re-synced
        # below, so they live in locals too.
        pending = self._pending
        end_index = self._trace_end_index
        probe = self._probe
        t = self._t
        while t < now:
            r_limit = pending[0].index - 1 if pending else end_index
            trace_pos = self._trace_pos
            if trace_pos < trace_len:
                next_entry = entries[trace_pos]
                if next_entry.is_write or self.mshr_in_use < mshrs:
                    dispatch_blocked = False
                    d_stop = self._next_mem_index
                else:
                    dispatch_blocked = True
                    d_stop = self._next_mem_index - 1
            else:
                next_entry = None
                dispatch_blocked = False
                d_stop = end_index

            retired0 = self._retired
            dispatched0 = self._dispatched
            dt = now - t
            if retired0 < r_limit:
                step = -((retired0 - r_limit) // width)  # ceil-div
                if step < dt:
                    dt = step
            if dispatched0 < d_stop:
                step = -((dispatched0 - d_stop) // width)
                if step < dt:
                    dt = step
            if dt < 1:
                dt = 1

            # min() spelled as comparisons: this runs a million times per
            # simulated run and the builtin's call overhead is measurable.
            retired_raw = retired0 + width * dt
            if retired_raw > r_limit:
                retired_raw = r_limit
            dispatched = d_stop
            bound = retired_raw + window
            if bound < dispatched:
                dispatched = bound
            bound = dispatched0 + width * dt
            if bound < dispatched:
                dispatched = bound
            retired = retired_raw if retired_raw < dispatched else dispatched

            # Stall accounting: commit blocked by an incomplete DRAM load.
            if pending and retired0 >= r_limit:
                self.stall_cycles += dt
                if probe is not None and not self._stalled:
                    self._stalled = True
                    probe.emit(t, "core.stall", thread=self.thread_id)
            elif probe is not None and self._stalled:
                self._stalled = False
                probe.emit(t, "core.unstall", thread=self.thread_id)

            t += dt
            self._t = t
            self._retired = retired
            self._dispatched = dispatched

            if (
                next_entry is not None
                and not dispatch_blocked
                and dispatched >= self._next_mem_index
            ):
                self._issue(next_entry)

            if (
                self._trace_pos >= trace_len
                and not pending
                and self._retired >= end_index
            ):
                self._complete_pass()
                end_index = self._trace_end_index
            if self.finished and not self.repeat:
                break
        self._maybe_complete_pass()

    def _maybe_complete_pass(self) -> None:
        if (
            self._trace_pos >= self._trace_len
            and not self._pending
            and self._retired >= self._trace_end_index
        ):
            self._complete_pass()

    def _issue(self, entry) -> None:
        """Dispatch the next memory instruction.

        Independent accesses send their memory request immediately; an
        access with an incomplete ``depends_on`` parent is parked until the
        parent's data returns (its window slot and MSHR are held meanwhile,
        and it blocks commit like any other outstanding load).
        """
        index = self._next_mem_index
        gpos = self._pass_count * self._trace_len + self._trace_pos
        self._trace_pos += 1
        self._next_mem_index = self._mem_index(self._trace_pos)

        load: _PendingLoad | None = None
        if not entry.is_write:
            load = _PendingLoad(index, gpos)
            self._pending.append(load)
            self._incomplete_gpos.add(gpos)
            # The load cannot retire before its data returns; commit stops
            # just below it even if the segment arithmetic reached further.
            if self._retired > index - 1:
                self._retired = index - 1
            self.mshr_in_use += 1
            self.loads_issued += 1
        else:
            self.stores_issued += 1

        if entry.depends_on is not None:
            parent_gpos = self._pass_count * self._trace_len + entry.depends_on
            if parent_gpos in self._incomplete_gpos:
                self._dep_waiters.setdefault(parent_gpos, []).append(
                    (entry.address, entry.is_write, load)
                )
                return
        self._send(entry.address, entry.is_write, load)

    def _send(self, address: int, is_write: bool, load: _PendingLoad | None) -> None:
        """Issue the actual memory request for a dispatched access."""
        if is_write:
            self.memory.access(self.thread_id, address, True, None)
            return
        assert load is not None
        self.memory.access(
            self.thread_id, address, False, lambda load=load: self._on_data(load)
        )

    def _complete_pass(self) -> None:
        """The current trace pass fully retired."""
        if not self.finished:
            self.finished = True
            self.finish_time = self._t
            self.snapshot = CoreSnapshot(
                cycles=self._t,
                instructions=self._retired,
                stall_cycles=self.stall_cycles,
                loads=self.loads_issued,
                stores=self.stores_issued,
            )
            if self.on_finished is not None:
                self.on_finished(self)
        if self.repeat and self._trace_len > 0:
            self._base_instructions = self._trace_end_index
            self._trace_end_index = (
                self._base_instructions + self.trace.total_instructions
            )
            self._pass_count += 1
            self._trace_pos = 0
            self._next_mem_index = self._mem_index(0)

    # -- wake-up planning -------------------------------------------------------------
    def _next_self_event(self) -> int | None:
        """Earliest future time the core makes progress without external
        events (i.e., the next request dispatch or final retirement)."""
        width = self.config.width
        window = self.config.window_size
        r_limit = (
            self._pending[0].index - 1 if self._pending else self._trace_end_index
        )
        trace_pos = self._trace_pos
        next_entry = (
            self.trace.entries[trace_pos] if trace_pos < self._trace_len else None
        )
        if next_entry is None:
            # Drain: wake when the last instruction could retire.
            if self._retired >= self._trace_end_index or self._pending:
                return None
            needed = self._trace_end_index - self._retired
            return self._t - (-needed // width)
        if not next_entry.is_write and self.mshr_in_use >= self.config.mshrs:
            return None  # blocked on MSHRs; a completion will wake us
        target = self._next_mem_index
        # Dispatch must reach `target`; it is limited by the window.
        if target > r_limit + window:
            return None  # blocked on the window behind a pending load
        needed = max(target - self._dispatched, target - window - self._retired)
        if needed <= 0:
            return self._t  # should have been issued already (defensive)
        return self._t - (-needed // width)

    def _reschedule(self) -> None:
        if self.finished and not self.repeat:
            return
        when = self._next_self_event()
        if when is None:
            return
        when = max(when, self.queue.now)
        if self._wake_at is not None and self._wake_at <= when:
            return
        self._wake_at = when
        self.queue.schedule(when, self._wake, priority=4)
