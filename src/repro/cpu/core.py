"""Analytical out-of-order core model.

Models the processor behaviour the paper's motivation rests on (Section 2):

* instructions dispatch in order into a fixed-size instruction window and
  retire in order at a fixed width (3/cycle in the baseline);
* a load that misses to DRAM is sent to the memory system at *dispatch*
  time — so independent misses inside the window are outstanding
  concurrently (memory-level parallelism);
* the core stalls when the *oldest* instruction in the window is an
  incomplete load: overlapped misses stall the core roughly once, while
  serialized misses stall it once per miss;
* stores retire immediately (write buffer) and never block commit;
* at most ``mshrs`` loads are outstanding at once.

Instead of stepping cycle by cycle, the model advances analytically between
memory events: dispatch and retirement both proceed at the core width, so
their trajectories are piecewise linear and the core only needs to wake at
request dispatches and data returns.  This keeps whole-system simulation
event-driven and fast while matching a cycle-stepped window model at
retire-width granularity.

Statistics follow the paper's definitions: ``stall_cycles`` counts cycles
where commit is blocked by an incomplete DRAM load (→ MCPI, memory
slowdown, AST/req).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappush
from typing import Callable, Protocol

from ..config import CoreConfig
from ..events import EventQueue
from .trace import Trace

__all__ = ["Core", "CoreSnapshot", "MemoryPort"]


class MemoryPort(Protocol):
    """Interface the core uses to reach the memory hierarchy."""

    def access(
        self,
        thread_id: int,
        address: int,
        is_write: bool,
        on_complete: Callable[[], None] | None,
    ) -> None:
        """Issue an access.  For reads, ``on_complete`` fires when data
        returns; writes complete in the background."""


@dataclass(frozen=True)
class CoreSnapshot:
    """Core statistics frozen at first trace completion."""

    cycles: int
    instructions: int
    stall_cycles: int
    loads: int
    stores: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mcpi(self) -> float:
        """Memory cycles per instruction (paper Table 3)."""
        return self.stall_cycles / self.instructions if self.instructions else 0.0

    @property
    def avg_stall_per_request(self) -> float:
        """AST/req: average stall time per DRAM load request (paper §7)."""
        return self.stall_cycles / self.loads if self.loads else 0.0


class _PendingLoad:
    __slots__ = ("index", "done", "gpos")

    def __init__(self, index: int, gpos: int) -> None:
        self.index = index  # global instruction index (for commit blocking)
        self.gpos = gpos  # global trace position (for dependency tracking)
        self.done = False


class Core:
    """One processing core executing a trace against a memory port."""

    # Slotted: ``_advance`` reads a few dozen instance attributes per call
    # on the simulator's hottest path.
    __slots__ = (
        "thread_id",
        "trace",
        "queue",
        "memory",
        "config",
        "repeat",
        "_probe",
        "_stalled",
        "_fast_access",
        "_t",
        "_retired",
        "_dispatched",
        "_trace_pos",
        "_base_instructions",
        "_width",
        "_window",
        "_mshrs",
        "_entries",
        "_trace_len",
        "_trace_end_index",
        "_cum_index",
        "_next_mem_index",
        "_pending",
        "_incomplete_gpos",
        "_dep_waiters",
        "_pass_count",
        "mshr_in_use",
        "stall_cycles",
        "loads_issued",
        "stores_issued",
        "finished",
        "finish_time",
        "snapshot",
        "on_finished",
        "_wake_at",
        "_wake_cb",
        "_on_data_cb",
    )

    def __init__(
        self,
        thread_id: int,
        trace: Trace,
        queue: EventQueue,
        memory: MemoryPort,
        config: CoreConfig | None = None,
        repeat: bool = True,
        probe=None,
    ) -> None:
        self.thread_id = thread_id
        self.trace = trace
        self.queue = queue
        self.memory = memory
        self.config = config or CoreConfig()
        self.repeat = repeat
        # Optional ``core``-category trace probe emitting stall/unstall
        # edges (None when tracing is off — the hot loop guards on it).
        self._probe = probe
        self._stalled = False
        # Fast-backend protocol: a memory port exposing ``fast_access``
        # accepts the data-return callback as a pre-bound (method, load)
        # pair, so ``_send`` skips the per-read closure allocation.
        self._fast_access = getattr(memory, "fast_access", None)

        # Progress pointers, in instructions.
        self._t = 0  # time of last state sync
        self._retired = 0
        self._dispatched = 0
        self._trace_pos = 0
        self._base_instructions = 0  # instructions from completed trace passes
        # Scalar config parameters, lifted off the config object once: the
        # advance loop and the wake planner read them on every call.
        self._width = self.config.width
        self._window = self.config.window_size
        self._mshrs = self.config.mshrs
        # Cached per-pass constants: the trace is immutable, and all three
        # are read on every iteration of the analytical advance loop.
        self._entries = trace.entries
        self._trace_len = len(trace)
        self._trace_end_index = trace.total_instructions
        self._cum_index = trace.cum_index
        self._next_mem_index = self._mem_index(0)

        # Incomplete loads in program order.  Completed loads retire from
        # the front on every data return (the simulator's hottest
        # callback), so this must be a deque, not a list.
        self._pending: deque[_PendingLoad] = deque()
        self._incomplete_gpos: set[int] = set()  # for dependency checks
        # Accesses dispatched but waiting for a parent load's data before
        # their request can be sent: parent gpos -> [(address, is_write, load)].
        self._dep_waiters: dict[int, list[tuple[int, bool, _PendingLoad | None]]] = {}
        self._pass_count = 0
        self.mshr_in_use = 0

        # Statistics.
        self.stall_cycles = 0
        self.loads_issued = 0
        self.stores_issued = 0
        self.finished = False
        self.finish_time: int | None = None
        self.snapshot: CoreSnapshot | None = None
        self.on_finished: Callable[["Core"], None] | None = None

        self._wake_at: int | None = None
        # Pre-bound callbacks: heap tuples hold these on every wake arm /
        # read dispatch, and a bare ``self._wake`` reference allocates a
        # fresh bound-method object each time.
        self._wake_cb = self._wake
        self._on_data_cb = self._on_data

    # -- derived trace positions ---------------------------------------------
    def _mem_index(self, pos: int) -> int | None:
        """Global instruction index of the ``pos``-th memory instruction in
        the current trace pass, or None past the end."""
        if pos >= self._trace_len:
            return None
        return self._base_instructions + self._cum_index[pos]

    @property
    def instructions_retired(self) -> int:
        return self._retired

    # -- simulation wiring --------------------------------------------------------
    def start(self) -> None:
        """Register the core's first wake-up with the event queue."""
        self.queue.schedule(0, self._wake, priority=4)

    def _wake(self) -> None:
        self._wake_at = None
        self._advance(self.queue.now, True)

    def _on_data(self, load: _PendingLoad) -> None:
        self._advance(self.queue.now)
        load.done = True
        self.mshr_in_use -= 1
        self._incomplete_gpos.discard(load.gpos)
        pending = self._pending
        while pending and pending[0].done:
            pending.popleft()
        # Release accesses that were waiting on this load's data (the
        # truthiness guard keeps dependency-free traces off the dict).
        waiters = self._dep_waiters
        if waiters:
            for address, is_write, waiter in waiters.pop(load.gpos, ()):
                self._send(address, is_write, waiter)
        self._advance(self.queue.now, True)

    # -- the analytical engine -----------------------------------------------------
    def _advance(self, now: int, plan: bool = False) -> None:
        """Bring retirement/dispatch pointers forward to time ``now``.

        With ``plan=True`` the wake planner (see :meth:`_reschedule`) runs
        in the same frame afterwards — every wake and data return needs
        both, and fusing them saves a call plus re-loading the state the
        advance loop already holds.

        This loop is the single hottest path of the whole simulator, so it
        avoids attribute chasing and float math: loop-invariant parameters
        live in locals, and the ceil divisions use integer arithmetic.
        """
        t = self._t
        width = self._width
        trace_len = self._trace_len
        pending = self._pending
        if t >= now:
            # Re-entrant call at the current time (e.g. the post-mutation
            # sync in ``_on_data``): nothing to integrate, but a just-
            # retired load may have completed the pass.
            if self._trace_pos >= trace_len:
                self._maybe_complete_pass()
            if not plan:
                return
            retired = self._retired
            dispatched = self._dispatched
        else:
            window = self._window
            mshrs = self._mshrs
            entries = self._entries
            # The pending deque and the end index are stable object
            # references / values across loop iterations except through the
            # calls re-synced below, so they live in locals too.  The
            # progress pointers also stay in locals, written back to the
            # instance only around calls that observe them (``_issue``,
            # ``_complete_pass``) and at exit.
            end_index = self._trace_end_index
            probe = self._probe
            retired = self._retired
            dispatched = self._dispatched
            trace_pos = self._trace_pos
            mshr_in_use = self.mshr_in_use
            next_mem = self._next_mem_index
            while t < now:
                r_limit = pending[0].index - 1 if pending else end_index
                if trace_pos < trace_len:
                    next_entry = entries[trace_pos]
                    if next_entry.is_write or mshr_in_use < mshrs:
                        dispatch_blocked = False
                        d_stop = next_mem
                    else:
                        dispatch_blocked = True
                        d_stop = next_mem - 1
                else:
                    next_entry = None
                    dispatch_blocked = False
                    d_stop = end_index

                retired0 = retired
                dispatched0 = dispatched
                dt = now - t
                if retired0 < r_limit:
                    step = -((retired0 - r_limit) // width)  # ceil-div
                    if step < dt:
                        dt = step
                if dispatched0 < d_stop:
                    # Dispatch is also capped by the window sliding behind
                    # retirement, so only clamp the segment at the dispatch
                    # target when it is reachable at all (the window behind
                    # ``r_limit`` can cover it), and then at the time both
                    # the dispatch rate and the sliding window permit —
                    # otherwise a commit-stalled core with a full window
                    # would crawl here one cycle per iteration without ever
                    # dispatching.
                    if r_limit + window >= d_stop:
                        step = -((dispatched0 - d_stop) // width)  # ceil-div
                        bound = -((retired0 - (d_stop - window)) // width)
                        if bound > step:
                            step = bound
                        if step < dt:
                            dt = step
                if dt < 1:
                    dt = 1

                # min() spelled as comparisons: this runs a million times
                # per simulated run and the builtin's call overhead is
                # measurable.
                retired_raw = retired0 + width * dt
                if retired_raw > r_limit:
                    retired_raw = r_limit
                dispatched = d_stop
                bound = retired_raw + window
                if bound < dispatched:
                    dispatched = bound
                bound = dispatched0 + width * dt
                if bound < dispatched:
                    dispatched = bound
                retired = retired_raw if retired_raw < dispatched else dispatched

                # Stall accounting: commit blocked by an incomplete load.
                if pending and retired0 >= r_limit:
                    self.stall_cycles += dt
                    if probe is not None and not self._stalled:
                        self._stalled = True
                        probe.emit(t, "core.stall", thread=self.thread_id)
                elif probe is not None and self._stalled:
                    self._stalled = False
                    probe.emit(t, "core.unstall", thread=self.thread_id)

                t += dt

                if (
                    next_entry is not None
                    and not dispatch_blocked
                    and dispatched >= next_mem
                ):
                    self._t = t
                    self._retired = retired
                    self._dispatched = dispatched
                    self._issue(next_entry)
                    retired = self._retired  # _issue clamps behind a load
                    trace_pos = self._trace_pos
                    mshr_in_use = self.mshr_in_use
                    next_mem = self._next_mem_index

                if (
                    trace_pos >= trace_len
                    and not pending
                    and retired >= end_index
                ):
                    self._t = t
                    self._retired = retired
                    self._dispatched = dispatched
                    self._complete_pass()
                    end_index = self._trace_end_index
                    trace_pos = self._trace_pos
                    next_mem = self._next_mem_index
                if self.finished and not self.repeat:
                    break
            self._t = t
            self._retired = retired
            self._dispatched = dispatched
            if trace_pos >= trace_len:
                self._maybe_complete_pass()
            if not plan:
                return
        # -- wake planning (``_reschedule`` fused in) ----------------------
        if self.finished and not self.repeat:
            return
        r_limit = pending[0].index - 1 if pending else self._trace_end_index
        trace_pos = self._trace_pos
        if trace_pos < trace_len:
            next_entry = self._entries[trace_pos]
            if not next_entry.is_write and self.mshr_in_use >= self._mshrs:
                return  # blocked on MSHRs; a completion will wake us
            target = self._next_mem_index
            # Dispatch must reach `target`; it is limited by the window.
            window = self._window
            if target > r_limit + window:
                return  # blocked on the window behind a pending load
            needed = target - dispatched
            bound = target - window - retired
            if bound > needed:
                needed = bound
            if needed <= 0:
                when = t  # should have been issued already (defensive)
            else:
                when = t - (-needed // width)
        else:
            # Drain: wake when the last instruction could retire.
            if retired >= self._trace_end_index or pending:
                return
            needed = self._trace_end_index - retired
            when = t - (-needed // width)
        if when < now:
            when = now
        wake_at = self._wake_at
        if wake_at is not None and wake_at <= when:
            return
        self._wake_at = when
        queue = self.queue
        # ``queue.schedule`` inlined: ``when`` is already clamped to now,
        # so the past-time check cannot fire.
        heappush(queue._heap, (when, 4, queue._seq, self._wake_cb))
        queue._seq += 1

    def _maybe_complete_pass(self) -> None:
        if (
            self._trace_pos >= self._trace_len
            and not self._pending
            and self._retired >= self._trace_end_index
        ):
            self._complete_pass()

    def _issue(self, entry) -> None:
        """Dispatch the next memory instruction.

        Independent accesses send their memory request immediately; an
        access with an incomplete ``depends_on`` parent is parked until the
        parent's data returns (its window slot and MSHR are held meanwhile,
        and it blocks commit like any other outstanding load).
        """
        index = self._next_mem_index
        trace_len = self._trace_len
        gpos = self._pass_count * trace_len + self._trace_pos
        pos = self._trace_pos + 1
        self._trace_pos = pos
        # ``_mem_index`` inlined (dispatch is a per-read hot path).
        self._next_mem_index = (
            self._base_instructions + self._cum_index[pos]
            if pos < trace_len
            else None
        )

        load: _PendingLoad | None = None
        if not entry.is_write:
            load = _PendingLoad(index, gpos)
            self._pending.append(load)
            self._incomplete_gpos.add(gpos)
            # The load cannot retire before its data returns; commit stops
            # just below it even if the segment arithmetic reached further.
            if self._retired > index - 1:
                self._retired = index - 1
            self.mshr_in_use += 1
            self.loads_issued += 1
        else:
            self.stores_issued += 1

        if entry.depends_on is not None:
            parent_gpos = self._pass_count * trace_len + entry.depends_on
            if parent_gpos in self._incomplete_gpos:
                self._dep_waiters.setdefault(parent_gpos, []).append(
                    (entry.address, entry.is_write, load)
                )
                return
        # ``_send`` inlined (it stays a method for the dep-waiter path).
        if load is None:
            self.memory.access(self.thread_id, entry.address, True, None)
            return
        fast = self._fast_access
        if fast is not None:
            fast(self.thread_id, entry.address, False, self._on_data_cb, load)
            return
        self.memory.access(
            self.thread_id, entry.address, False,
            lambda load=load: self._on_data(load),
        )

    def _send(self, address: int, is_write: bool, load: _PendingLoad | None) -> None:
        """Issue the actual memory request for a dispatched access."""
        if is_write:
            self.memory.access(self.thread_id, address, True, None)
            return
        assert load is not None
        fast = self._fast_access
        if fast is not None:
            fast(self.thread_id, address, False, self._on_data_cb, load)
            return
        self.memory.access(
            self.thread_id, address, False, lambda load=load: self._on_data(load)
        )

    def _complete_pass(self) -> None:
        """The current trace pass fully retired."""
        if not self.finished:
            self.finished = True
            self.finish_time = self._t
            self.snapshot = CoreSnapshot(
                cycles=self._t,
                instructions=self._retired,
                stall_cycles=self.stall_cycles,
                loads=self.loads_issued,
                stores=self.stores_issued,
            )
            if self.on_finished is not None:
                self.on_finished(self)
        if self.repeat and self._trace_len > 0:
            self._base_instructions = self._trace_end_index
            self._trace_end_index = (
                self._base_instructions + self.trace.total_instructions
            )
            self._pass_count += 1
            self._trace_pos = 0
            self._next_mem_index = self._mem_index(0)

    # -- wake-up planning -------------------------------------------------------------
    def _reschedule(self) -> None:
        """Arm a wake-up at the earliest future time the core makes
        progress without external events (the next request dispatch or
        final retirement); stay silent when only a data return can
        unblock it.

        The planning arithmetic lives at the tail of :meth:`_advance`
        (``plan=True``), which every wake and data return calls directly;
        this wrapper keeps the entry point for external callers.  Advancing
        to ``queue.now`` first is a no-op when the caller is already
        synced.
        """
        self._advance(self.queue.now, True)
