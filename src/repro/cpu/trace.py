"""Instruction traces driving the core model.

A trace is a sequence of :class:`TraceEntry` items.  Each entry represents
``gap`` non-memory instructions followed by one memory instruction (a load
or store that accesses the memory hierarchy).  This is the standard
trace-driven abstraction for memory-system studies: instruction semantics
are irrelevant, only the interleaving of computation and memory accesses
matters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = ["TraceEntry", "Trace", "TraceIngestStats"]


@dataclass(frozen=True, slots=True)
class TraceIngestStats:
    """Provenance counters for a trace read from an external file.

    Synthetic traces have no ingest record (``Trace.ingest is None``);
    traces built by :mod:`repro.traces` attach one so per-thread results
    can report how much of the source file was consumed.
    """

    requests_read: int = 0
    lines_skipped: int = 0
    truncated: bool = False


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """``gap`` non-memory instructions, then one memory access.

    ``depends_on`` optionally names an earlier entry (by position in the
    trace) whose data this access needs before it can be issued — the
    trace-level encoding of a dependent (e.g. pointer-chasing) load.  The
    core will not dispatch such an access until the named load completes,
    which is what bounds a thread's inherent memory-level parallelism.
    """

    gap: int
    address: int
    is_write: bool = False
    depends_on: int | None = None

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.depends_on is not None and self.depends_on < 0:
            raise ValueError("depends_on must be a non-negative entry index")


class Trace:
    """An immutable sequence of trace entries with derived statistics."""

    def __init__(
        self,
        entries: Iterable[TraceEntry],
        name: str = "trace",
        ingest: TraceIngestStats | None = None,
    ) -> None:
        self.entries: tuple[TraceEntry, ...] = tuple(entries)
        self.name = name
        self.ingest = ingest
        # Entries are immutable, so both derived sequences below are fixed.
        # ``cum_index[pos]`` is the 1-based global instruction index of the
        # ``pos``-th memory instruction; the core model reads it on every
        # dispatch, so it is precomputed here rather than cached ad hoc.
        cum = []
        acc = 0
        for entry in self.entries:
            acc += entry.gap + 1
            cum.append(acc)
        self.cum_index: tuple[int, ...] = tuple(cum)
        self._total_instructions = acc

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self.entries[index]

    @property
    def total_instructions(self) -> int:
        """Instructions in the trace (memory instructions included)."""
        return self._total_instructions

    @property
    def memory_accesses(self) -> int:
        return len(self.entries)

    @property
    def reads(self) -> int:
        return sum(1 for e in self.entries if not e.is_write)

    @property
    def writes(self) -> int:
        return sum(1 for e in self.entries if e.is_write)

    def accesses_per_kilo_instruction(self) -> float:
        """Memory accesses per 1000 instructions (≈ MPKI when entries are
        last-level-cache misses)."""
        total = self.total_instructions
        return 1000.0 * len(self.entries) / total if total else 0.0

    # -- persistence --------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Save as JSON lines: one ``[gap, address, is_write]`` per line."""
        path = Path(path)
        header: dict = {"name": self.name}
        if self.ingest is not None:
            header["ingest"] = [
                self.ingest.requests_read,
                self.ingest.lines_skipped,
                self.ingest.truncated,
            ]
        with path.open("w") as fh:
            fh.write(json.dumps(header) + "\n")
            for entry in self.entries:
                fh.write(
                    json.dumps([entry.gap, entry.address, entry.is_write, entry.depends_on])
                    + "\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        path = Path(path)
        with path.open() as fh:
            header = json.loads(fh.readline())
            entries = [
                TraceEntry(
                    gap=e[0],
                    address=e[1],
                    is_write=bool(e[2]),
                    depends_on=e[3] if len(e) > 3 else None,
                )
                for e in (json.loads(line) for line in fh if line.strip())
            ]
        ingest = None
        if "ingest" in header:
            raw = header["ingest"]
            ingest = TraceIngestStats(
                requests_read=int(raw[0]),
                lines_skipped=int(raw[1]),
                truncated=bool(raw[2]),
            )
        return cls(entries, name=header.get("name", path.stem), ingest=ingest)
