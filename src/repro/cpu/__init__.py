"""Trace-driven processor core models."""

from .core import Core, CoreSnapshot, MemoryPort
from .trace import Trace, TraceEntry

__all__ = ["Core", "CoreSnapshot", "MemoryPort", "Trace", "TraceEntry"]
