"""Per-core two-level cache hierarchy.

Implements the :class:`~repro.cpu.core.MemoryPort` protocol: the core sends
raw loads/stores; the hierarchy filters them through L1 and L2 (write-back,
write-allocate), merges misses in the L2 MSHRs, and forwards misses to the
DRAM port below.  Dirty evictions become DRAM writes.

Latency accounting: L1 and L2 hit latencies are applied via the event
queue.  DRAM round-trip latency comes from the memory controller itself.
"""

from __future__ import annotations

from typing import Callable

from ..config import CoreConfig
from ..events import EventQueue
from .cache import Cache
from .mshr import MshrFile

__all__ = ["CacheHierarchy"]


class CacheHierarchy:
    """L1 + L2 per-core hierarchy in front of a shared DRAM port.

    Parameters
    ----------
    dram_port:
        Object with ``access(thread_id, address, is_write, on_complete)``,
        normally the system's DRAM adapter.
    """

    def __init__(
        self,
        thread_id: int,
        queue: EventQueue,
        dram_port,
        l1_size: int = 32 * 1024,
        l1_assoc: int = 4,
        l1_latency: int = 2,
        l2_size: int = 512 * 1024,
        l2_assoc: int = 8,
        l2_latency: int = 12,
        line_bytes: int = 64,
        mshrs: int = 32,
    ) -> None:
        self.thread_id = thread_id
        self.queue = queue
        self.dram_port = dram_port
        self.l1 = Cache(l1_size, l1_assoc, line_bytes, l1_latency, name="L1")
        self.l2 = Cache(l2_size, l2_assoc, line_bytes, l2_latency, name="L2")
        self.mshrs = MshrFile(mshrs)
        self.line_bytes = line_bytes
        self.dram_reads = 0
        self.dram_writes = 0

    # -- MemoryPort -------------------------------------------------------------
    def access(
        self,
        thread_id: int,
        address: int,
        is_write: bool,
        on_complete: Callable[[], None] | None,
    ) -> None:
        line = self.l1.line_address(address)
        total_hit_latency = self.l1.latency

        if self.l1.access(line, is_write).hit:
            self._respond(on_complete, total_hit_latency)
            return

        total_hit_latency += self.l2.latency
        if self.l2.access(line, is_write).hit:
            # Fill L1 from L2.
            self._fill_l1(line, dirty=is_write)
            self._respond(on_complete, total_hit_latency)
            return

        # L2 miss: allocate or merge an MSHR and go to DRAM.
        def on_fill() -> None:
            self._install(line, dirty=is_write)
            for waiter in self.mshrs.complete(line):
                waiter()

        if self.mshrs.outstanding(line):
            self.mshrs.allocate(line, on_complete)
            return
        # Primary miss.  If the MSHR file is full the request is delayed
        # until one frees; the core's own MSHR limit normally prevents this.
        self.mshrs.allocate(line, on_complete)
        self.dram_reads += 1
        self.dram_port.access(self.thread_id, line, False, on_fill)

    # -- internals -----------------------------------------------------------------
    def _respond(self, on_complete: Callable[[], None] | None, latency: int) -> None:
        if on_complete is None:
            return
        self.queue.schedule_in(latency, on_complete, priority=5)

    def _install(self, line: int, dirty: bool) -> None:
        """Install a returned line into L2 and L1, issuing writebacks."""
        result = self.l2.fill(line, dirty=dirty)
        if result.writeback_address is not None:
            self.dram_writes += 1
            self.dram_port.access(self.thread_id, result.writeback_address, True, None)
        self._fill_l1(line, dirty=False)

    def _fill_l1(self, line: int, dirty: bool) -> None:
        result = self.l1.fill(line, dirty=dirty)
        if result.writeback_address is not None:
            # L1 victim goes to L2 (write-back); may cascade to DRAM.
            l2_result = self.l2.fill(result.writeback_address, dirty=True)
            if l2_result.writeback_address is not None:
                self.dram_writes += 1
                self.dram_port.access(
                    self.thread_id, l2_result.writeback_address, True, None
                )
