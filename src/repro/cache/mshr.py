"""Miss-status holding registers (MSHRs).

MSHRs track outstanding cache misses and merge secondary misses to the same
line so only one DRAM request is issued per line.  The baseline L2 has 32
MSHRs per core.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["MshrFile"]


class MshrFile:
    """A fixed-size file of miss-status holding registers."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: dict[int, list[Callable[[], None]]] = {}
        self.merges = 0
        self.allocations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def outstanding(self, line_address: int) -> bool:
        return line_address in self._entries

    def allocate(self, line_address: int, waiter: Callable[[], None] | None) -> bool:
        """Register a miss for ``line_address``.

        Returns ``True`` if this is a *primary* miss (a new DRAM request is
        needed) and ``False`` if it merged into an existing entry.  Raises
        if a primary miss is needed but the file is full (callers must check
        :attr:`full` first for primary misses).
        """
        if line_address in self._entries:
            if waiter is not None:
                self._entries[line_address].append(waiter)
            self.merges += 1
            return False
        if self.full:
            raise RuntimeError("MSHR file is full")
        self._entries[line_address] = [waiter] if waiter is not None else []
        self.allocations += 1
        return True

    def complete(self, line_address: int) -> list[Callable[[], None]]:
        """Retire the entry for ``line_address``; returns waiters to notify."""
        waiters = self._entries.pop(line_address, None)
        if waiters is None:
            raise KeyError(f"no MSHR outstanding for {line_address:#x}")
        return waiters
