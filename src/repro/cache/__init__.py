"""Per-core cache hierarchy: caches, MSHRs, and the two-level wrapper."""

from .cache import AccessResult, Cache, CacheStats
from .hierarchy import CacheHierarchy
from .mshr import MshrFile

__all__ = ["AccessResult", "Cache", "CacheStats", "CacheHierarchy", "MshrFile"]
