"""Set-associative write-back cache with LRU replacement.

Used to filter raw program traces down to the DRAM request streams the
memory controller sees (L1 32 KB 4-way and L2 512 KB 8-way per core in the
baseline, 64-byte lines).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["Cache", "CacheStats", "AccessResult"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a cache access."""

    hit: bool
    writeback_address: int | None = None  # dirty victim evicted by the fill


class Cache:
    """A single cache level.

    Parameters
    ----------
    size_bytes: total capacity.
    associativity: ways per set.
    line_bytes: cache-line size (64 in the baseline).
    latency: access latency in cycles (bookkeeping only; the hierarchy
        applies it).
    """

    def __init__(
        self,
        size_bytes: int,
        associativity: int,
        line_bytes: int = 64,
        latency: int = 0,
        name: str = "cache",
    ) -> None:
        if size_bytes <= 0 or associativity <= 0 or line_bytes <= 0:
            raise ValueError("cache parameters must be positive")
        if size_bytes % (associativity * line_bytes) != 0:
            raise ValueError("size must be divisible by associativity * line size")
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.latency = latency
        self.name = name
        self.num_sets = size_bytes // (associativity * line_bytes)
        # Per set: OrderedDict tag -> dirty flag; LRU order = insertion order,
        # least-recently-used first.
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    # -- address helpers -----------------------------------------------------
    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def line_address(self, address: int) -> int:
        return (address // self.line_bytes) * self.line_bytes

    # -- operations ------------------------------------------------------------
    def lookup(self, address: int) -> bool:
        """Non-modifying presence check."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Access the cache; on a miss, the line is *not* allocated (call
        :meth:`fill` when the data arrives)."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            ways.move_to_end(tag)
            if is_write:
                ways[tag] = True
            self.stats.hits += 1
            return AccessResult(hit=True)
        self.stats.misses += 1
        return AccessResult(hit=False)

    def fill(self, address: int, dirty: bool = False) -> AccessResult:
        """Allocate the line for ``address``, evicting LRU if needed.

        Returns the dirty victim's address (for a writeback) if any.
        """
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        writeback = None
        if tag in ways:
            ways.move_to_end(tag)
            ways[tag] = ways[tag] or dirty
            return AccessResult(hit=True)
        if len(ways) >= self.associativity:
            victim_tag, victim_dirty = ways.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
                victim_line = victim_tag * self.num_sets + set_index
                writeback = victim_line * self.line_bytes
        ways[tag] = dirty
        return AccessResult(hit=False, writeback_address=writeback)

    def invalidate(self, address: int) -> bool:
        """Drop the line if present; returns whether it was dirty."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            dirty = ways.pop(tag)
            return dirty
        return False
