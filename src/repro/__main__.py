"""Command-line interface: run any paper experiment by name.

Examples::

    python -m repro list
    python -m repro fig3
    python -m repro case-study fig5 --instructions 100000
    python -m repro aggregate --cores 4 --count 12
    python -m repro table4 --count 6
    python -m repro sweep marking-cap --count 4
    python -m repro priorities
    python -m repro characterize
"""

from __future__ import annotations

import argparse
import logging
import os
import sys

from .config import baseline_system
from .experiments.ablations import (
    batching_choice_sweep,
    marking_cap_sweep,
    ranking_scheme_sweep,
)
from .experiments.abstract_fig3 import run_fig3
from .experiments.aggregate import run_aggregate
from .experiments.case_studies import CASE_STUDIES, run_case_study
from .experiments.characterization import run_characterization
from .experiments.priorities import run_opportunistic, run_weighted_lbm
from .experiments.summary import run_table4
from .sim.runner import ExperimentRunner

_CASE_ALIASES = {
    "fig5": "fig5_case_study_1",
    "fig6": "fig6_case_study_2",
    "fig7": "fig7_case_study_3",
    "fig9": "fig9_8core_mix",
}

_EXPERIMENTS = """Available experiments (paper artifact -> command):
  Figure 3   python -m repro fig3
  Table 3    python -m repro characterize
  Figure 5   python -m repro case-study fig5
  Figure 6   python -m repro case-study fig6
  Figure 7   python -m repro case-study fig7
  Figure 8   python -m repro aggregate --cores 4
  Figure 9   python -m repro case-study fig9
  Figure 10  python -m repro aggregate --cores 16
  Table 4    python -m repro table4
  Figure 11  python -m repro sweep marking-cap
  Figure 12  python -m repro sweep batching
  Figure 13  python -m repro sweep ranking
  Figure 14  python -m repro priorities"""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PAR-BS reproduction experiment runner"
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="instructions per thread (default: library default / REPRO_SCALE)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent simulations "
        "(default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log progress (once: INFO — pool fan-out, cache traffic; "
        "twice: DEBUG)",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help="write per-simulation JSONL event traces into DIR "
        "(exports REPRO_TRACE)",
    )
    parser.add_argument(
        "--trace-events",
        metavar="CATS",
        default=None,
        help="comma-separated event categories to trace "
        "(request,dram,batch,sched,core,sample; default: all)",
    )
    parser.add_argument(
        "--sample-interval",
        type=int,
        metavar="CYCLES",
        default=None,
        help="periodic telemetry sample interval in cycles",
    )
    parser.add_argument(
        "--perfetto",
        action="store_true",
        help="also export each trace as Perfetto-loadable Chrome-trace JSON",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiments")
    sub.add_parser("fig3", help="Figure 3: abstract within-batch model")
    sub.add_parser("characterize", help="Table 3: benchmark characterization")
    sub.add_parser("priorities", help="Figure 14: thread priorities")

    case = sub.add_parser("case-study", help="Figures 5/6/7/9")
    case.add_argument("name", choices=sorted(_CASE_ALIASES) + sorted(CASE_STUDIES))

    agg = sub.add_parser("aggregate", help="Figures 8/10: workload averages")
    agg.add_argument("--cores", type=int, default=4, choices=(4, 8, 16))
    agg.add_argument("--count", type=int, default=None, help="random mixes")
    agg.add_argument("--samples", action="store_true", help="include named sample mixes")

    table = sub.add_parser("table4", help="Table 4: 4/8/16-core summary")
    table.add_argument("--count", type=int, default=None, help="mixes per system size")

    sweep = sub.add_parser("sweep", help="Figures 11/12/13: ablations")
    sweep.add_argument("kind", choices=("marking-cap", "batching", "ranking"))
    sweep.add_argument("--count", type=int, default=4, help="random mixes")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    instructions = args.instructions
    if args.verbose:
        # Make the library's logger.info lines (pool fan-out, cache hits,
        # cache report) visible; -vv turns on DEBUG.
        logging.basicConfig(
            level=logging.DEBUG if args.verbose > 1 else logging.INFO,
            format="%(levelname)s %(name)s: %(message)s",
        )
    if args.jobs is not None:
        # Every runner (including ones constructed deep inside experiment
        # helpers) resolves its default worker count from REPRO_JOBS, so
        # exporting it here reaches all subcommands uniformly.
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))
    # Observability flags export the REPRO_TRACE* environment variables so
    # every runner constructed inside experiment helpers — and every pool
    # worker — resolves the same TraceConfig (the --jobs/REPRO_JOBS pattern).
    if args.trace is not None:
        os.environ["REPRO_TRACE"] = args.trace
    if args.trace_events is not None:
        os.environ["REPRO_TRACE_EVENTS"] = args.trace_events
    if args.sample_interval is not None:
        os.environ["REPRO_SAMPLE_INTERVAL"] = str(args.sample_interval)
    if args.perfetto:
        os.environ["REPRO_TRACE_PERFETTO"] = "1"

    status = _dispatch(args, instructions)
    if args.command != "list":
        from .sim.diskcache import GLOBAL_STATS

        print(
            f"[cache] {GLOBAL_STATS['hits']} hits, "
            f"{GLOBAL_STATS['misses']} misses, "
            f"{GLOBAL_STATS['writes']} writes",
            file=sys.stderr,
        )
    return status


def _dispatch(args: argparse.Namespace, instructions: int | None) -> int:
    if args.command == "list":
        print(_EXPERIMENTS)
        return 0
    if args.command == "fig3":
        print(run_fig3().report())
        return 0
    if args.command == "characterize":
        print(run_characterization(instructions=instructions).report())
        return 0
    if args.command == "priorities":
        print(run_weighted_lbm(instructions=instructions).report())
        print()
        print(run_opportunistic(instructions=instructions).report())
        return 0
    if args.command == "case-study":
        name = _CASE_ALIASES.get(args.name, args.name)
        print(run_case_study(name, instructions=instructions).report())
        return 0
    if args.command == "aggregate":
        result = run_aggregate(
            args.cores,
            count=args.count,
            instructions=instructions,
            include_sample_mixes=args.samples,
        )
        print(result.report())
        return 0
    if args.command == "table4":
        counts = None
        if args.count is not None:
            counts = {4: args.count, 8: args.count, 16: args.count}
        print(run_table4(counts=counts, instructions=instructions).report())
        return 0
    if args.command == "sweep":
        runner = ExperimentRunner(baseline_system(4), instructions=instructions)
        if args.kind == "marking-cap":
            result = marking_cap_sweep(count=args.count, runner=runner)
            print(result.report("Figure 11: Marking-Cap sweep"))
        elif args.kind == "batching":
            result = batching_choice_sweep(count=args.count, runner=runner)
            print(result.report("Figure 12: batching choice"))
        else:
            result = ranking_scheme_sweep(count=args.count, runner=runner)
            print(result.report("Figure 13: within-batch ranking"))
        return 0
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
