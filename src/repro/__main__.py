"""Command-line interface: run any paper experiment by name.

Examples::

    python -m repro list
    python -m repro fig3
    python -m repro case-study fig5 --instructions 100000
    python -m repro aggregate --cores 4 --count 12
    python -m repro table4 --count 6
    python -m repro sweep marking-cap --count 4
    python -m repro priorities
    python -m repro characterize
    python -m repro campaign run examples/campaign_smoke.toml
    python -m repro campaign report examples/campaign_smoke.toml
    python -m repro cache stats
"""

from __future__ import annotations

import argparse
import logging
import os
import sys

from .config import baseline_system
from .envknobs import EnvKnobError
from .events import SimulationStalled
from .guard import InvariantViolation
from .experiments.ablations import (
    batching_choice_sweep,
    marking_cap_sweep,
    ranking_scheme_sweep,
)
from .experiments.abstract_fig3 import run_fig3
from .experiments.aggregate import run_aggregate
from .experiments.case_studies import CASE_STUDIES, run_case_study
from .experiments.characterization import run_characterization
from .experiments.priorities import run_opportunistic, run_weighted_lbm
from .experiments.summary import run_table4
from .sim.runner import ExperimentRunner
from .workloads.mixes import UnknownMixError

_CASE_ALIASES = {
    "fig5": "fig5_case_study_1",
    "fig6": "fig6_case_study_2",
    "fig7": "fig7_case_study_3",
    "fig9": "fig9_8core_mix",
}

_EXPERIMENTS = """Available experiments (paper artifact -> command):
  Figure 3   python -m repro fig3
  Table 3    python -m repro characterize
  Figure 5   python -m repro case-study fig5
  Figure 6   python -m repro case-study fig6
  Figure 7   python -m repro case-study fig7
  Figure 8   python -m repro aggregate --cores 4
  Figure 9   python -m repro case-study fig9
  Figure 10  python -m repro aggregate --cores 16
  Table 4    python -m repro table4
  Figure 11  python -m repro sweep marking-cap
  Figure 12  python -m repro sweep batching
  Figure 13  python -m repro sweep ranking
  Figure 14  python -m repro priorities

Infrastructure:
  Campaigns  python -m repro campaign run|work|status|resume|watch|report|export SPEC
  Traces     python -m repro trace info|decode|gen|run
  Cache      python -m repro cache stats|prune|clear"""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PAR-BS reproduction experiment runner"
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="instructions per thread (default: library default / REPRO_SCALE)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent simulations "
        "(default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--guard",
        nargs="?",
        const="strict",
        choices=("check", "strict"),
        default=None,
        metavar="MODE",
        help="enable runtime invariant checking: 'strict' (default) raises "
        "on the first violation, 'check' collects and logs them "
        "(exports REPRO_GUARD)",
    )
    parser.add_argument(
        "--backend",
        choices=("python", "fast", "verify"),
        default=None,
        help="simulation backend: 'fast' swaps in the flat-array timing "
        "kernel (bit-identical results, several times faster), 'verify' "
        "runs python and fast side by side and asserts bit-for-bit "
        "agreement (exports REPRO_BACKEND)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log progress (once: INFO — pool fan-out, cache traffic; "
        "twice: DEBUG)",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help="write per-simulation JSONL event traces into DIR "
        "(exports REPRO_TRACE)",
    )
    parser.add_argument(
        "--trace-events",
        metavar="CATS",
        default=None,
        help="comma-separated event categories to trace "
        "(request,dram,batch,sched,core,sample,campaign; default: all)",
    )
    parser.add_argument(
        "--sample-interval",
        type=int,
        metavar="CYCLES",
        default=None,
        help="periodic telemetry sample interval in cycles",
    )
    parser.add_argument(
        "--perfetto",
        action="store_true",
        help="also export each trace as Perfetto-loadable Chrome-trace JSON",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiments")
    sub.add_parser("fig3", help="Figure 3: abstract within-batch model")
    sub.add_parser("characterize", help="Table 3: benchmark characterization")
    sub.add_parser("priorities", help="Figure 14: thread priorities")

    case = sub.add_parser("case-study", help="Figures 5/6/7/9")
    case.add_argument("name", choices=sorted(_CASE_ALIASES) + sorted(CASE_STUDIES))

    agg = sub.add_parser("aggregate", help="Figures 8/10: workload averages")
    agg.add_argument("--cores", type=int, default=4, choices=(4, 8, 16))
    agg.add_argument("--count", type=int, default=None, help="random mixes")
    agg.add_argument("--samples", action="store_true", help="include named sample mixes")

    table = sub.add_parser("table4", help="Table 4: 4/8/16-core summary")
    table.add_argument("--count", type=int, default=None, help="mixes per system size")

    sweep = sub.add_parser("sweep", help="Figures 11/12/13: ablations")
    sweep.add_argument("kind", choices=("marking-cap", "batching", "ranking"))
    sweep.add_argument("--count", type=int, default=4, help="random mixes")

    campaign = sub.add_parser(
        "campaign", help="declarative resumable experiment campaigns"
    )
    csub = campaign.add_subparsers(dest="action", required=True)
    for action, desc in (
        ("run", "run every grid cell missing from the result store"),
        ("resume", "alias of run: completed cells are never re-simulated"),
    ):
        runp = csub.add_parser(action, help=desc)
        runp.add_argument("spec", help="campaign spec file (.toml or .json)")
        runp.add_argument("--db", default=None, help="result store path")
        runp.add_argument(
            "--limit",
            type=int,
            default=None,
            help="simulate at most N missing jobs this invocation",
        )
        runp.add_argument("--retries", type=int, default=2)
        runp.add_argument(
            "--chaos",
            metavar="SPEC",
            default=None,
            help="fault-injection plan, e.g. 'kill=0.3,corrupt=0.5,seed=7' "
            "(rates per fault kind; exports REPRO_CHAOS so pool workers "
            "share the plan)",
        )
        runp.add_argument(
            "--job-timeout",
            type=float,
            metavar="SECONDS",
            default=None,
            help="no-progress timeout for pool workers "
            "(default: REPRO_JOB_TIMEOUT_S)",
        )
        runp.add_argument(
            "--dry-run",
            action="store_true",
            help="print the expanded grid summary and exit",
        )
    workp = csub.add_parser(
        "work",
        help="drain jobs from a shared store as one distributed worker",
    )
    workp.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="campaign spec file (.toml or .json); omit with --fingerprint",
    )
    workp.add_argument("--db", default=None, help="shared result store path")
    workp.add_argument(
        "--fingerprint",
        metavar="FP",
        default=None,
        help="drain the already-registered campaign with this fingerprint "
        "(unique prefix accepted; spec comes from the store)",
    )
    workp.add_argument(
        "--jobs", type=int, default=1, help="local pool processes (default 1)"
    )
    workp.add_argument(
        "--lease",
        type=float,
        metavar="S",
        default=None,
        help="lease duration in seconds (default: REPRO_LEASE_S, 30)",
    )
    workp.add_argument(
        "--heartbeat",
        type=float,
        metavar="S",
        default=None,
        help="heartbeat renewal period (default: REPRO_HEARTBEAT_S, lease/3)",
    )
    workp.add_argument("--retries", type=int, default=2)
    workp.add_argument(
        "--poll",
        type=float,
        metavar="S",
        default=0.5,
        help="idle poll period while peers hold every remaining lease",
    )
    workp.add_argument(
        "--worker-id", default=None, help="queue identity (default: generated)"
    )
    workp.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="resolve at most N jobs, then exit",
    )
    workp.add_argument(
        "--no-wait",
        action="store_true",
        help="exit once every remaining job is leased to a live peer "
        "(default: wait for the campaign to settle)",
    )
    workp.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="fault-injection plan (adds leasekill=/hbfreeze= lease faults)",
    )
    workp.add_argument(
        "--job-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="no-progress timeout for pool workers "
        "(default: REPRO_JOB_TIMEOUT_S)",
    )
    watchp = csub.add_parser(
        "watch", help="live progress: counts, rate/ETA, merged metrics"
    )
    watchp.add_argument("spec")
    watchp.add_argument("--db", default=None)
    watchp.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (default: refresh until done)",
    )
    watchp.add_argument(
        "--interval",
        type=float,
        metavar="S",
        default=5.0,
        help="refresh interval in seconds (default: 5)",
    )
    watchp.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="also write the merged metrics snapshot as JSON",
    )
    watchp.add_argument(
        "--metrics-prom",
        metavar="PATH",
        default=None,
        help="also write the merged metrics snapshot as Prometheus text",
    )
    statusp = csub.add_parser("status", help="job lifecycle counts")
    statusp.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="spec file (omit to list every campaign in the store)",
    )
    statusp.add_argument("--db", default=None)
    reportp = csub.add_parser(
        "report", help="aggregate tables from the store (no simulation)"
    )
    reportp.add_argument("spec")
    reportp.add_argument("--db", default=None)
    reportp.add_argument("--format", choices=("markdown", "csv"), default="markdown")
    reportp.add_argument("--out", default=None, help="write to file instead of stdout")
    exportp = csub.add_parser("export", help="raw per-job rows from the store")
    exportp.add_argument("spec")
    exportp.add_argument("--db", default=None)
    exportp.add_argument("--format", choices=("csv", "json"), default="csv")
    exportp.add_argument("--out", default=None, help="write to file instead of stdout")

    trace = sub.add_parser(
        "trace", help="trace files: inspect, decode, generate samples, run"
    )
    tsub = trace.add_subparsers(dest="action", required=True)
    infop = tsub.add_parser(
        "info", help="format, record counts and content hash per file"
    )
    infop.add_argument("files", nargs="+", metavar="FILE")
    decodep = tsub.add_parser(
        "decode", help="print decoded DRAM coordinates for the first records"
    )
    decodep.add_argument("file", metavar="FILE")
    decodep.add_argument(
        "--decoder",
        default="dramsim2",
        help="preset name or 'field=bits,...' layout spec (default: dramsim2)",
    )
    decodep.add_argument(
        "--limit", type=int, default=16, help="records to print (default: 16)"
    )
    genp = tsub.add_parser("gen", help="generate sample-library trace files")
    genp.add_argument(
        "names", nargs="*", metavar="NAME", help="sample names (default: all committed)"
    )
    genp.add_argument(
        "--all", action="store_true", help="include non-committed samples"
    )
    genp.add_argument(
        "--force", action="store_true", help="regenerate even when present"
    )
    tracerun = tsub.add_parser("run", help="simulate a traced workload mix")
    tracerun.add_argument(
        "threads",
        nargs="*",
        metavar="THREAD",
        help="workload entries: benchmark names or trace:NAME",
    )
    tracerun.add_argument(
        "--mix", default=None, metavar="NAME", help="registered mix name (e.g. tmix1)"
    )
    tracerun.add_argument("--scheduler", default="PAR-BS")
    tracerun.add_argument(
        "--trace-file",
        action="append",
        default=[],
        metavar="ALIAS=PATH",
        help="bind a trace alias to a file (repeatable)",
    )
    tracerun.add_argument(
        "--decoder",
        default="dramsim2",
        help="address layout for all trace files (preset or 'field=bits,...')",
    )

    cache = sub.add_parser("cache", help="simulation disk-cache maintenance")
    cachesub = cache.add_subparsers(dest="action", required=True)
    cachesub.add_parser("stats", help="entry counts and sizes per kind")
    prunep = cachesub.add_parser(
        "prune", help="LRU-prune the cache down to a size bound"
    )
    prunep.add_argument(
        "--max-mb",
        type=float,
        default=None,
        help="size bound in MB (default: REPRO_CACHE_MAX_MB)",
    )
    cachesub.add_parser("clear", help="delete every cache entry")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    instructions = args.instructions
    if args.verbose:
        # Make the library's logger.info lines (pool fan-out, cache hits,
        # cache report) visible; -vv turns on DEBUG.
        logging.basicConfig(
            level=logging.DEBUG if args.verbose > 1 else logging.INFO,
            format="%(levelname)s %(name)s: %(message)s",
        )
    if args.jobs is not None:
        # Every runner (including ones constructed deep inside experiment
        # helpers) resolves its default worker count from REPRO_JOBS, so
        # exporting it here reaches all subcommands uniformly.
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))
    if args.guard is not None:
        # Every System resolves its guard from REPRO_GUARD (pool workers
        # included), so the flag reaches all subcommands uniformly.
        os.environ["REPRO_GUARD"] = args.guard
    if args.backend is not None:
        # Every runner resolves its backend from REPRO_BACKEND (pool
        # workers included), so the flag reaches all subcommands uniformly.
        os.environ["REPRO_BACKEND"] = args.backend
    # Observability flags export the REPRO_TRACE* environment variables so
    # every runner constructed inside experiment helpers — and every pool
    # worker — resolves the same TraceConfig (the --jobs/REPRO_JOBS pattern).
    if args.trace is not None:
        os.environ["REPRO_TRACE"] = args.trace
    if args.trace_events is not None:
        os.environ["REPRO_TRACE_EVENTS"] = args.trace_events
    if args.sample_interval is not None:
        os.environ["REPRO_SAMPLE_INTERVAL"] = str(args.sample_interval)
    if args.perfetto:
        os.environ["REPRO_TRACE_PERFETTO"] = "1"

    try:
        status = _dispatch(args, instructions)
    except (EnvKnobError, UnknownMixError) as exc:
        # Configuration mistakes (bad knob value, mix-name typo): the
        # message already says what was wrong and what is valid.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (InvariantViolation, SimulationStalled) as exc:
        # Structured failures from the guard layer: the message already
        # carries cycle/bank/request context or the stall diagnostic dump.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    # Cache statistics no longer interleave with experiment output here:
    # they flow through the metrics registry (collect_process_metrics) into
    # campaign reports and `campaign watch`; `-v` still logs the pool's
    # one-line cache report at INFO.
    return status


def _dispatch(args: argparse.Namespace, instructions: int | None) -> int:
    if args.command == "list":
        print(_EXPERIMENTS)
        return 0
    if args.command == "fig3":
        print(run_fig3().report())
        return 0
    if args.command == "characterize":
        print(run_characterization(instructions=instructions).report())
        return 0
    if args.command == "priorities":
        print(run_weighted_lbm(instructions=instructions).report())
        print()
        print(run_opportunistic(instructions=instructions).report())
        return 0
    if args.command == "case-study":
        name = _CASE_ALIASES.get(args.name, args.name)
        print(run_case_study(name, instructions=instructions).report())
        return 0
    if args.command == "aggregate":
        result = run_aggregate(
            args.cores,
            count=args.count,
            instructions=instructions,
            include_sample_mixes=args.samples,
        )
        print(result.report())
        return 0
    if args.command == "table4":
        counts = None
        if args.count is not None:
            counts = {4: args.count, 8: args.count, 16: args.count}
        print(run_table4(counts=counts, instructions=instructions).report())
        return 0
    if args.command == "sweep":
        runner = ExperimentRunner(baseline_system(4), instructions=instructions)
        if args.kind == "marking-cap":
            result = marking_cap_sweep(count=args.count, runner=runner)
            print(result.report("Figure 11: Marking-Cap sweep"))
        elif args.kind == "batching":
            result = batching_choice_sweep(count=args.count, runner=runner)
            print(result.report("Figure 12: batching choice"))
        else:
            result = ranking_scheme_sweep(count=args.count, runner=runner)
            print(result.report("Figure 13: within-batch ranking"))
        return 0
    if args.command == "campaign":
        return _dispatch_campaign(args, instructions)
    if args.command == "trace":
        return _dispatch_trace(args, instructions)
    if args.command == "cache":
        return _dispatch_cache(args)
    return 1  # pragma: no cover


def _emit(text: str, out: str | None) -> None:
    if out:
        with open(out, "w") as fh:
            fh.write(text)
        print(f"wrote {out}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def _dispatch_campaign(args: argparse.Namespace, instructions: int | None) -> int:
    from .campaign import (
        ResultStore,
        campaign_report,
        export_text,
        load_spec,
        run_campaign,
        status_report,
    )

    if args.action == "status" and args.spec is None:
        with ResultStore(args.db) as store:
            rows = store.campaigns()
            if not rows:
                print("no campaigns in store")
                return 0
            for row in rows:
                print(
                    f"{row['name']}  {row['fingerprint'][:12]}  "
                    f"{row['done']}/{row['total']} done, "
                    f"{row['failed']} failed  "
                    f"({row['instructions']} instructions)"
                )
        return 0

    if args.action == "work":
        return _campaign_work(args)

    spec = load_spec(args.spec)
    if instructions is not None:
        # --instructions overrides the spec file's value (same precedence
        # as every other subcommand).
        from .campaign import spec_from_dict

        spec = spec_from_dict({**spec.to_dict(), "instructions": instructions})

    if args.action in ("run", "resume"):
        if args.dry_run:
            print(spec.describe())
            return 0
        chaos = None
        if args.chaos is not None:
            from .guard.chaos import ChaosPlan

            chaos = ChaosPlan.parse(args.chaos)
            # Export the *resolved* plan (its marker dir pinned) so pool
            # workers share the same once-only fault markers.
            os.environ["REPRO_CHAOS"] = chaos.spec()
        probe = None
        tracer = None
        trace_dir = os.environ.get("REPRO_TRACE")
        if trace_dir:
            from pathlib import Path

            from .obs.config import TraceConfig
            from .obs.trace import JsonlSink, Tracer

            cfg = TraceConfig.from_env() or TraceConfig()
            Path(trace_dir).mkdir(parents=True, exist_ok=True)
            tracer = Tracer(
                [JsonlSink(Path(trace_dir) / f"campaign-{spec.name}.jsonl")],
                events=cfg.events,
            )
            probe = tracer.probe("campaign")
        try:
            with ResultStore(args.db) as store:
                stats = run_campaign(
                    spec,
                    store,
                    limit=args.limit,
                    retries=args.retries,
                    probe=probe,
                    chaos=chaos,
                    job_timeout_s=args.job_timeout,
                )
        finally:
            if tracer is not None:
                tracer.close()
        print(stats.summary_line(spec.name))
        return 1 if stats.failed else 0
    if args.action == "watch":
        return _campaign_watch(spec, args)
    with ResultStore(args.db) as store:
        if args.action == "status":
            print(status_report(spec, store))
        elif args.action == "report":
            _emit(campaign_report(spec, store, fmt=args.format), args.out)
        elif args.action == "export":
            _emit(export_text(spec, store, fmt=args.format), args.out)
    return 0


def _campaign_work(args: argparse.Namespace) -> int:
    """``campaign work``: one distributed worker draining a shared store.

    Unlike ``campaign run`` (which registers the grid and owns the whole
    drain), ``work`` is a peer: N invocations against the same ``--db``
    split the campaign's jobs through the lease queue, heartbeat while
    simulating, and reclaim leases from peers that died.  The spec comes
    from a file or — for workers that only have the store — from the
    registered campaign row via ``--fingerprint``.
    """
    from .campaign import ResultStore, drain_campaign, load_spec

    if (args.spec is None) == (args.fingerprint is None):
        print(
            "campaign work: pass a spec file or --fingerprint (not both)",
            file=sys.stderr,
        )
        return 2
    chaos = None
    if args.chaos is not None:
        from .guard.chaos import ChaosPlan

        chaos = ChaosPlan.parse(args.chaos)
        # Resolved plan (marker dir pinned) so pool workers share the
        # same once-only fault markers — mirrors ``campaign run``.
        os.environ["REPRO_CHAOS"] = chaos.spec()
    with ResultStore(args.db) as store:
        if args.fingerprint is not None:
            try:
                spec = store.spec_for(args.fingerprint)
            except KeyError as exc:
                print(f"campaign work: {exc}", file=sys.stderr)
                return 2
        else:
            spec = load_spec(args.spec)
        store.chaos = chaos
        stats = drain_campaign(
            spec,
            store,
            worker_id=args.worker_id,
            jobs=args.jobs,
            lease_s=args.lease,
            heartbeat_s=args.heartbeat,
            poll_s=args.poll,
            retries=args.retries,
            job_timeout_s=args.job_timeout,
            chaos=chaos,
            hard_kill=True,
            wait_for_peers=not args.no_wait,
            max_jobs=args.max_jobs,
        )
    print(
        f"worker {stats.worker_id}: claimed={stats.claimed} "
        f"completed={stats.completed} failed={stats.failed} "
        f"retried={stats.retried} requeued={stats.requeued} "
        f"reclaimed={stats.reclaimed} fenced={stats.fenced} "
        f"lost={stats.lost} foreign_done={stats.foreign_done}"
    )
    return 1 if stats.failed else 0


def _campaign_watch(spec, args: argparse.Namespace) -> int:
    """``campaign watch``: snapshot (or follow) campaign progress."""
    import time as _time

    from .campaign.store import ResultStore
    from .campaign.watch import merged_metrics, watch_counts, watch_report
    from .obs.export import write_snapshot

    while True:
        # A fresh connection per snapshot: watch is a reader racing a
        # writer; WAL mode makes that safe, and reconnecting keeps each
        # snapshot consistent.
        with ResultStore(args.db) as store:
            print(watch_report(spec, store))
            counts = watch_counts(spec, store)
            if args.metrics_json or args.metrics_prom:
                snapshot = merged_metrics(spec, store).snapshot()
                if args.metrics_json:
                    write_snapshot(args.metrics_json, snapshot)
                    print(f"wrote {args.metrics_json}")
                if args.metrics_prom:
                    write_snapshot(args.metrics_prom, snapshot)
                    print(f"wrote {args.metrics_prom}")
        if args.once or not counts["pending"]:
            return 0
        _time.sleep(max(0.1, args.interval))
        print()


def _parse_trace_file_args(entries: list[str]) -> dict[str, str]:
    """``--trace-file ALIAS=PATH`` flags as an alias -> path dict."""
    files: dict[str, str] = {}
    for entry in entries:
        alias, sep, path = entry.partition("=")
        if not sep or not alias or not path:
            raise ValueError(
                f"--trace-file expects ALIAS=PATH, got {entry!r}"
            )
        files[alias] = path
    return files


def _dispatch_trace(args: argparse.Namespace, instructions: int | None) -> int:
    from .traces import (
        SAMPLE_TRACES,
        IngestStats,
        ensure_sample_trace,
        open_trace,
        parse_decoder,
        sample_trace_path,
        trace_content_sha256,
    )

    if args.action == "info":
        for path in args.files:
            stats = IngestStats()
            reads = writes = 0
            for record in open_trace(path, stats=stats):
                if record.is_write:
                    writes += 1
                else:
                    reads += 1
            print(
                f"{path}: format={stats.format} lines={stats.lines_read} "
                f"records={stats.records} (reads={reads} writes={writes}) "
                f"skipped={stats.lines_skipped}"
            )
            print(f"  sha256={trace_content_sha256(path)}")
        return 0
    if args.action == "decode":
        decoder = parse_decoder(args.decoder)
        print(f"decoder: {decoder.spec()}")
        shown = 0
        for record in open_trace(args.file):
            if shown >= args.limit:
                print("  ...")
                break
            d = decoder.decode(record.address)
            rw = "W" if record.is_write else "R"
            print(
                f"  {record.address:#012x} {rw} cycle={record.cycle} -> "
                f"ch={d.channel} rank={d.rank} bank={d.bank} "
                f"row={d.row} col={d.column}"
            )
            shown += 1
        return 0
    if args.action == "gen":
        names = list(args.names)
        if not names:
            names = [
                n for n, s in SAMPLE_TRACES.items() if s.committed or args.all
            ]
        for name in names:
            if name not in SAMPLE_TRACES:
                print(
                    f"error: unknown sample trace {name!r} "
                    f"(known: {', '.join(sorted(SAMPLE_TRACES))})",
                    file=sys.stderr,
                )
                return 2
            path = sample_trace_path(name)
            if args.force and path.exists():
                path.unlink()
            path = ensure_sample_trace(name)
            print(f"{name}: {path}")
        return 0
    if args.action == "run":
        from .workloads.mixes import get_mix

        if args.mix and args.threads:
            print("error: pass --mix or THREAD arguments, not both", file=sys.stderr)
            return 2
        workload = get_mix(args.mix) if args.mix else list(args.threads)
        if not workload:
            print(
                "error: nothing to run: pass --mix NAME or THREAD entries",
                file=sys.stderr,
            )
            return 2
        try:
            trace_files = _parse_trace_file_args(args.trace_file)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        runner = ExperimentRunner(
            baseline_system(len(workload)),
            instructions=instructions,
            trace_files=trace_files,
            decoder=args.decoder,
        )
        result = runner.run_workload(workload, args.scheduler)
        print(result.describe())
        return 0
    return 1  # pragma: no cover


def _dispatch_cache(args: argparse.Namespace) -> int:
    from .sim.diskcache import DiskCache, default_cache_dir, max_cache_mb

    cache = DiskCache()
    if args.action == "stats":
        usage = cache.usage()
        total_n = sum(n for n, _b in usage.values())
        total_b = sum(b for _n, b in usage.values())
        print(f"cache dir: {default_cache_dir()}")
        bound = max_cache_mb()
        print(f"size bound: {'unbounded' if bound is None else f'{bound:g} MB'}")
        for kind in sorted(usage):
            n, b = usage[kind]
            print(f"  {kind}: {n} entries, {b / 1e6:.2f} MB")
        print(f"  total: {total_n} entries, {total_b / 1e6:.2f} MB")
        return 0
    if args.action == "prune":
        limit = args.max_mb if args.max_mb is not None else cache.max_mb
        if limit is None:
            print(
                "error: no size bound: pass --max-mb or set REPRO_CACHE_MAX_MB",
                file=sys.stderr,
            )
            return 2
        removed, freed = cache.prune(max_mb=limit)
        print(f"pruned {removed} entries, {freed / 1e6:.2f} MB freed")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries")
        return 0
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
