"""Observability: structured tracing, time-series probes, Perfetto export.

The :mod:`repro.obs` package is the instrumentation layer threaded through
the simulator.  It has three parts:

* a **structured trace bus** (:mod:`repro.obs.trace`): typed events emitted
  through per-site :class:`Probe` objects.  Instrumented components hold a
  probe *or* ``None``; a disabled category resolves to ``None`` so the hot
  path pays one local ``is not None`` check and nothing else — the probes
  "compile out" when tracing is off;
* **sink backends**: :class:`JsonlSink` (one JSON object per line, the
  on-disk interchange format), :class:`RingBufferSink` (bounded in-memory
  buffer for tests and interactive use), and the Chrome-trace-event
  exporter (:mod:`repro.obs.perfetto`) whose output loads directly in
  Perfetto / ``chrome://tracing``;
* **periodic samplers** (:mod:`repro.obs.sampler`): time series of queue
  occupancy, per-thread outstanding requests, instantaneous bank-level
  parallelism, windowed row-hit rate and batch size, plus log-bucketed
  per-thread latency histograms (p50/p95/p99/max) surfaced in
  :class:`~repro.metrics.summary.WorkloadResult`;
* a **metrics registry** (:mod:`repro.obs.metrics`): probe-or-None
  counters/gauges/histograms over the operational layers (pool, cache,
  store, guard, chaos), picklable and order-independently mergeable
  across workers, snapshotting to JSON and Prometheus text exposition
  format (:mod:`repro.obs.export`) — the substrate behind
  ``campaign watch``.

Wiring happens in :class:`~repro.sim.system.System` (accepts a tracer and
a telemetry recorder), :class:`~repro.sim.runner.ExperimentRunner` /
:mod:`repro.sim.pool` (per-job trace files keyed by the job's content
hash), and the CLI (``--trace`` / ``--trace-events`` /
``--sample-interval`` / ``--perfetto``, or the ``REPRO_TRACE`` family of
environment variables).
"""

from .config import TraceConfig
from .export import to_json, to_prometheus, write_snapshot
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_process_metrics,
    job_metrics,
    merge_job_metrics,
    metrics_enabled,
    metrics_from_env,
    reset_metrics,
)
from .perfetto import chrome_trace, write_chrome_trace
from .sampler import LatencyHistogram, Telemetry, TelemetrySummary
from .trace import (
    CATEGORIES,
    JsonlSink,
    Probe,
    RingBufferSink,
    Tracer,
    read_jsonl,
)

__all__ = [
    "CATEGORIES",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LatencyHistogram",
    "MetricsRegistry",
    "Probe",
    "RingBufferSink",
    "Telemetry",
    "TelemetrySummary",
    "TraceConfig",
    "Tracer",
    "chrome_trace",
    "collect_process_metrics",
    "job_metrics",
    "merge_job_metrics",
    "metrics_enabled",
    "metrics_from_env",
    "read_jsonl",
    "reset_metrics",
    "to_json",
    "to_prometheus",
    "write_chrome_trace",
    "write_snapshot",
]
