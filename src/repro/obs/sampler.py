"""Periodic telemetry samplers and log-bucketed latency histograms.

The paper's claims live in dynamics — queue pressure, per-thread
outstanding requests, bank-level parallelism, batch sizes — so
:class:`Telemetry` attaches to a running :class:`~repro.sim.system.System`
and records two kinds of data:

* **pull**: a periodic sample (every ``sample_interval`` cycles) of queue
  occupancy, per-thread buffered + in-service request counts, windowed
  row-hit rate, data-bus utilization and the current batch state;
* **push**: per-thread request latencies, recorded by the controller on
  every completion into a :class:`LatencyHistogram` (power-of-two buckets,
  so 64 counters cover any latency with <2x relative error on the
  quantiles while ``max`` stays exact).

Everything is summarized into the picklable :class:`TelemetrySummary`
carried on :class:`~repro.metrics.summary.WorkloadResult`, so telemetry
survives the process-pool boundary and shows up in experiment reports.
Like the trace probes, telemetry costs nothing when absent: the
controller's completion path guards on ``telemetry is not None`` and the
sampler schedules no events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.system import System
    from .trace import Probe

__all__ = ["LatencyHistogram", "Telemetry", "TelemetrySummary"]


class LatencyHistogram:
    """Log-bucketed (power-of-two) histogram of integer latencies.

    Bucket ``b`` counts values whose bit length is ``b``, i.e. the range
    ``[2**(b-1), 2**b - 1]`` (bucket 0 holds exact zeros).  Quantiles are
    answered with the bucket's upper edge, clamped to the exact observed
    maximum — a <2x overestimate by construction, which is plenty for
    p50/p95/p99 tail reporting.
    """

    __slots__ = ("counts", "count", "total", "max")

    def __init__(self) -> None:
        self.counts: list[int] = []
        self.count = 0
        self.total = 0
        self.max = 0

    def record(self, value: int) -> None:
        bucket = value.bit_length()
        counts = self.counts
        if bucket >= len(counts):
            counts.extend([0] * (bucket + 1 - len(counts)))
        counts[bucket] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def percentile(self, p: float) -> int:
        """Upper bound of the bucket containing the ``p``-quantile."""
        if not 0.0 < p <= 1.0:
            raise ValueError("percentile must be in (0, 1]")
        if self.count == 0:
            return 0
        target = p * self.count
        seen = 0
        for bucket, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                upper = (1 << bucket) - 1 if bucket else 0
                return min(upper, self.max)
        return self.max  # pragma: no cover - defensive

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """The quantile digest reported per thread."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self.max,
        }


@dataclass(frozen=True)
class TelemetrySummary:
    """Picklable digest of one run's telemetry, carried on WorkloadResult."""

    sample_interval: int | None
    samples: tuple[dict, ...]  # time-ordered periodic samples
    latency: Mapping[int, Mapping[str, float]] = field(default_factory=dict)
    bus: Mapping[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable latency digest (one line per thread)."""
        lines = []
        for thread_id in sorted(self.latency):
            h = self.latency[thread_id]
            lines.append(
                f"  t{thread_id} latency p50={h['p50']:.0f} p95={h['p95']:.0f} "
                f"p99={h['p99']:.0f} max={h['max']:.0f} "
                f"({h['count']:.0f} requests)"
            )
        if self.samples:
            lines.append(
                f"  {len(self.samples)} samples every "
                f"{self.sample_interval} cycles"
            )
        return "\n".join(lines)


class Telemetry:
    """Telemetry recorder for one simulation.

    Parameters
    ----------
    sample_interval:
        Period of the pull sampler in cycles, or ``None`` to record only
        push-side data (latency histograms).
    probe:
        Optional ``sample``-category trace probe; when present, every
        periodic sample is also emitted as a ``sample.tick`` event so the
        Perfetto export gets counter tracks.
    """

    def __init__(
        self,
        sample_interval: int | None = None,
        probe: "Probe | None" = None,
    ) -> None:
        self.sample_interval = sample_interval
        self.probe = probe
        self.samples: list[dict] = []
        self.histograms: dict[int, LatencyHistogram] = {}
        self._system: "System | None" = None
        self._task = None
        # Windowed row-hit accounting: totals at the previous sample.
        self._last_hits = 0
        self._last_conflicts = 0

    # -- push side (called from the controller's completion path) ----------
    def record_latency(self, thread_id: int, latency: int) -> None:
        hist = self.histograms.get(thread_id)
        if hist is None:
            hist = self.histograms[thread_id] = LatencyHistogram()
        hist.record(latency)

    # -- pull side ----------------------------------------------------------
    def attach(self, system: "System") -> None:
        """Bind to a system and start the periodic sampler (if configured)."""
        self._system = system
        if self.sample_interval is not None:
            self._task = system.queue.schedule_every(
                self.sample_interval, self._sample, priority=5
            )

    def _sample(self) -> None:
        system = self._system
        assert system is not None
        controller = system.controller
        now = system.queue.now
        threads: dict[int, list[int]] = {}
        hits = 0
        conflicts = 0
        for thread_id, stats in controller.thread_stats.items():
            threads[thread_id] = [
                controller.pending_reads(thread_id),
                stats.in_service,
            ]
            hits += stats.row_hits
            conflicts += stats.row_conflicts
        window = (hits - self._last_hits) + (conflicts - self._last_conflicts)
        row_hit_rate = (hits - self._last_hits) / window if window else 0.0
        self._last_hits = hits
        self._last_conflicts = conflicts

        batcher = getattr(controller.scheduler, "batcher", None)
        record = {
            "t": now,
            "queue_reads": controller.read_occupancy,
            "queue_writes": controller.write_occupancy,
            "row_hit_rate": row_hit_rate,
            "threads": threads,
        }
        if batcher is not None:
            record["marked"] = batcher.total_marked
            record["batch_index"] = batcher.batch_index
        self.samples.append(record)
        probe = self.probe
        if probe is not None:
            probe.emit(now, "sample.tick", **{k: v for k, v in record.items() if k != "t"})

    def finalize(self, now: int) -> None:
        """Stop sampling; called by ``System.run`` when the run completes."""
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # -- reporting ----------------------------------------------------------
    def summary(self) -> TelemetrySummary:
        bus: dict[str, float] = {}
        system = self._system
        if system is not None:
            buses = [channel.bus for channel in system.controller.channels]
            bus = {
                "busy_cycles": float(sum(b.busy_cycles for b in buses)),
                "wait_cycles": float(sum(b.wait_cycles for b in buses)),
                "transfers": float(sum(b.transfers for b in buses)),
            }
        return TelemetrySummary(
            sample_interval=self.sample_interval,
            samples=tuple(self.samples),
            latency={
                thread_id: hist.summary()
                for thread_id, hist in sorted(self.histograms.items())
            },
            bus=bus,
        )
