"""Chrome trace-event (Perfetto-loadable) export of a structured trace.

Converts a stream of :mod:`repro.obs.trace` events into the Chrome
trace-event JSON format, which both https://ui.perfetto.dev and
``chrome://tracing`` open directly.  The memory system is mapped onto
tracks so a full PAR-BS batch lifecycle is visually inspectable:

* **pid 1 "cores"** — one track per hardware thread: request wait
  (enqueue→issue) and service (issue→complete) slices, plus commit-stall
  slices from the core model;
* **pid 2 "DRAM banks"** — one track per (channel, bank): the serviced
  request as a slice, with instant markers for the PRE/ACT/RD/WR command
  sequence;
* **pid 3 "scheduler"** — batch lifetimes as slices (args carry the
  per-thread marked counts and the Max-Total ranking), epoch bumps and
  index rebuilds as instants;
* **pid 4 "counters"** — counter tracks from the periodic sampler (queue
  occupancy, marked requests, per-thread outstanding, row-hit rate).

Timestamps are microseconds (``ts = cycles / cycles_per_us``; 4 GHz cores
→ 4000 cycles/µs).  Events may arrive in emission order rather than time
order — the viewers sort internally, so no pre-sort is needed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

__all__ = ["chrome_trace", "write_chrome_trace"]

# Default cycles-per-microsecond at the paper's 4 GHz core clock.
CYCLES_PER_US = 4000.0

PID_CORES = 1
PID_BANKS = 2
PID_SCHED = 3
PID_COUNTERS = 4


def _bank_tid(channel: int, bank: int) -> int:
    # Flat, stable track id per (channel, bank); 64 banks/channel is far
    # above any configuration in the suite.
    return channel * 64 + bank


def chrome_trace(
    events: Iterable[dict], cycles_per_us: float = CYCLES_PER_US
) -> dict:
    """Convert trace-bus events into a Chrome trace-event JSON object."""
    out: list[dict] = []
    named: set[tuple[int, int]] = set()

    def name_track(pid: int, tid: int, name: str) -> None:
        if (pid, tid) in named:
            return
        named.add((pid, tid))
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    for pid, name in (
        (PID_CORES, "cores"),
        (PID_BANKS, "DRAM banks"),
        (PID_SCHED, "scheduler"),
        (PID_COUNTERS, "counters"),
    ):
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )

    def ts(cycles: int) -> float:
        return cycles / cycles_per_us

    def slice_event(pid, tid, name, start, end, args=None) -> dict:
        event = {
            "name": name,
            "cat": "repro",
            "ph": "X",
            "ts": ts(start),
            "dur": max(0.0, ts(end) - ts(start)),
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        return event

    def instant(pid, tid, name, t, args=None) -> dict:
        event = {
            "name": name,
            "cat": "repro",
            "ph": "i",
            "s": "t",
            "ts": ts(t),
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        return event

    def counter(name, t, values: dict) -> dict:
        return {
            "name": name,
            "ph": "C",
            "ts": ts(t),
            "pid": PID_COUNTERS,
            "tid": 0,
            "args": values,
        }

    enqueued: dict[int, dict] = {}  # req -> enqueue event
    issued: dict[int, dict] = {}  # req -> issue event
    stalled: dict[int, int] = {}  # thread -> stall start cycle
    batch_open: dict[int, dict] = {}  # batch index -> formed event

    for event in events:
        ev = event["ev"]
        t = event["t"]
        if ev == "request.enqueue":
            enqueued[event["req"]] = event
            name_track(PID_CORES, event["thread"], f"thread {event['thread']}")
        elif ev == "request.issue":
            issued[event["req"]] = event
            start = enqueued.pop(event["req"], None)
            if start is not None:
                out.append(
                    slice_event(
                        PID_CORES,
                        event["thread"],
                        f"wait b{event['bank']}",
                        start["t"],
                        t,
                        {"row": event["row"], "result": event["result"]},
                    )
                )
        elif ev == "request.complete":
            issue = issued.pop(event["req"], None)
            if issue is not None:
                tid = _bank_tid(issue["ch"], issue["bank"])
                name_track(PID_BANKS, tid, f"ch{issue['ch']} bank{issue['bank']}")
                name_track(PID_CORES, event["thread"], f"thread {event['thread']}")
                args = {
                    "req": event["req"],
                    "thread": event["thread"],
                    "row": issue["row"],
                    "result": issue["result"],
                    "latency_cycles": event["latency"],
                }
                out.append(
                    slice_event(
                        PID_BANKS,
                        tid,
                        f"t{event['thread']} row{issue['row']} {issue['result']}",
                        issue["t"],
                        t,
                        args,
                    )
                )
                out.append(
                    slice_event(
                        PID_CORES,
                        event["thread"],
                        f"dram b{issue['bank']}",
                        issue["t"],
                        t,
                        args,
                    )
                )
        elif ev == "dram.cmd":
            tid = _bank_tid(event["ch"], event["bank"])
            name_track(PID_BANKS, tid, f"ch{event['ch']} bank{event['bank']}")
            out.append(
                instant(
                    PID_BANKS,
                    tid,
                    event["cmd"],
                    t,
                    {k: v for k, v in event.items() if k not in ("t", "ev")},
                )
            )
        elif ev == "dram.drain":
            out.append(counter("write_drain", t, {"on": event["on"]}))
        elif ev == "batch.formed":
            batch_open[event["index"]] = event
            name_track(PID_SCHED, 0, "batches")
            out.append(
                instant(
                    PID_SCHED,
                    0,
                    f"batch {event['index']} formed",
                    t,
                    {
                        "marked": event["marked"],
                        "per_thread": event["per_thread"],
                        "ranks": event.get("ranks", {}),
                        "backlog": event.get("backlog", {}),
                    },
                )
            )
            out.append(counter("batch_marked", t, {"marked": event["marked"]}))
        elif ev == "batch.completed":
            formed = batch_open.pop(event["index"], None)
            name_track(PID_SCHED, 0, "batches")
            if formed is not None:
                out.append(
                    slice_event(
                        PID_SCHED,
                        0,
                        f"batch {event['index']}",
                        formed["t"],
                        t,
                        {
                            "marked": formed["marked"],
                            "per_thread": formed["per_thread"],
                            "ranks": formed.get("ranks", {}),
                            "duration_cycles": event["duration"],
                        },
                    )
                )
            out.append(counter("batch_marked", t, {"marked": 0}))
        elif ev == "sched.epoch":
            name_track(PID_SCHED, 1, "epochs")
            out.append(instant(PID_SCHED, 1, f"epoch {event['epoch']}", t))
        elif ev == "sched.rqindex_rebuild":
            name_track(PID_SCHED, 2, "rqindex rebuilds")
            out.append(
                instant(
                    PID_SCHED,
                    2,
                    f"rebuild ch{event['ch']} b{event['bank']}",
                    t,
                    {"epoch": event["epoch"], "size": event["size"]},
                )
            )
        elif ev == "core.stall":
            stalled[event["thread"]] = t
            name_track(PID_CORES, event["thread"], f"thread {event['thread']}")
        elif ev == "core.unstall":
            start_t = stalled.pop(event["thread"], None)
            if start_t is not None:
                out.append(
                    slice_event(PID_CORES, event["thread"], "stall", start_t, t)
                )
        elif ev == "sample.tick":
            out.append(
                counter(
                    "queue occupancy",
                    t,
                    {
                        "reads": event["queue_reads"],
                        "writes": event["queue_writes"],
                    },
                )
            )
            out.append(
                counter(
                    "row-hit rate", t, {"rate": round(event["row_hit_rate"], 4)}
                )
            )
            if "marked" in event:
                out.append(counter("marked (sampled)", t, {"marked": event["marked"]}))
            for thread_id, (pending, in_service) in sorted(
                event.get("threads", {}).items()
            ):
                out.append(
                    counter(
                        f"t{thread_id} outstanding",
                        t,
                        {"buffered": pending, "in_service": in_service},
                    )
                )

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path,
    events: Iterable[dict],
    cycles_per_us: float = CYCLES_PER_US,
) -> Path:
    """Write ``events`` as a Chrome/Perfetto trace JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="\n") as fh:
        json.dump(chrome_trace(events, cycles_per_us), fh, separators=(",", ":"))
        fh.write("\n")
    return path
