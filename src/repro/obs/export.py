"""Metrics snapshot exporters: canonical JSON and Prometheus text.

Both renderers are pure functions of a :meth:`MetricsRegistry.snapshot`
dict, so the same store contents always produce byte-identical output —
the property every determinism gate in this repo leans on.  The JSON
form is the interchange format (``campaign watch --metrics-json``); the
Prometheus text exposition format feeds scrapers and the CI artifact
uploads.

Prometheus naming: metric names are sanitized (``.`` and ``-`` become
``_``) and prefixed ``repro_``; counters gain the conventional
``_total`` suffix, histograms render the ``_bucket{le=...}`` /
``_sum`` / ``_count`` series with cumulative buckets and a ``+Inf``
terminal, exactly as scrapers expect.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Mapping

__all__ = ["to_json", "to_prometheus", "write_snapshot"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def to_json(snapshot: Mapping[str, Any], indent: int | None = None) -> str:
    """Canonical JSON (sorted keys, trailing newline)."""
    return json.dumps(snapshot, sort_keys=True, indent=indent) + "\n"


def to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for exp in sorted(data["buckets"], key=int):
            cumulative += data["buckets"][exp]
            lines.append(
                f'{prom}_bucket{{le="{_prom_value(float(2 ** int(exp)))}"}} '
                f"{cumulative}"
            )
        lines.append(f'{prom}_bucket{{le="+Inf"}} {data["count"]}')
        lines.append(f"{prom}_sum {_prom_value(data['sum'])}")
        lines.append(f"{prom}_count {data['count']}")
    return "\n".join(lines) + "\n"


def write_snapshot(path: str | Path, snapshot: Mapping[str, Any]) -> Path:
    """Write ``snapshot`` to ``path``, format chosen by suffix.

    ``.prom`` / ``.txt`` render Prometheus text; anything else (the
    ``.json`` convention) renders indented canonical JSON.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix in (".prom", ".txt"):
        path.write_text(to_prometheus(snapshot))
    else:
        path.write_text(to_json(snapshot, indent=2))
    return path
