"""Probe-or-None metrics registry: counters, gauges, histograms.

The trace bus (:mod:`repro.obs.trace`) answers "what happened, in
order"; this module answers "how much, how often, how long" for the
*operational* layers built around the simulator — pool incidents, cache
traffic, store commit retries, guard violations, chaos injections, and
the fast backend's elision/rebuild counters.  The discipline is the same
as every other observability hook in the repo:

* **probe-or-None** — :func:`metrics_from_env` returns the process
  registry when ``REPRO_METRICS`` enables it (the default) and exactly
  ``None`` otherwise, so a disabled site pays one ``is not None`` test
  and nothing else.  Nothing in the simulator's per-event hot path
  touches the registry at all: instrumentation lives at run and job
  boundaries (a job committed, a pool respawned, a cache entry pruned).
* **mergeable** — a :class:`MetricsRegistry` pickles, and
  :meth:`MetricsRegistry.merge` combines registries or snapshots
  order-independently (counters sum, gauges keep the max, histograms add
  bucket-wise), so serial and ``--jobs N`` executions of the same work
  merge to identical *deterministic* metrics — the same bit-identity
  contract the trace bus keeps for per-job trace files.
* **two kinds of truth** — :func:`job_metrics` extracts the
  *deterministic* per-job counters from a finished
  :class:`~repro.metrics.summary.WorkloadResult` (logical events, elided
  wakes, min-rebuilds, cycles, row outcomes): pure functions of the job
  description, safe to compare byte-for-byte across serial/parallel
  runs.  :func:`collect_process_metrics` gathers the *operational*
  counters of this process (cache hits, respawns, retries): honest
  telemetry, never part of a determinism gate.

Snapshots export to JSON and Prometheus text via :mod:`repro.obs.export`.
"""

from __future__ import annotations

import os
from math import frexp
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from ..metrics.summary import WorkloadResult

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_process_metrics",
    "job_metrics",
    "merge_job_metrics",
    "metrics_enabled",
    "metrics_from_env",
    "reset_metrics",
]

_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off")


class Counter:
    """A monotonically increasing count (merge: sum)."""

    __slots__ = ("value",)

    def __init__(self, value: int | float = 0) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A last-written level (merge: max — the only order-independent
    combination that still means something for high-water marks)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Log-bucketed (base-2) distribution of non-negative observations.

    Buckets are keyed by the power-of-two upper bound exponent: an
    observation ``v`` lands in the smallest bucket ``2**e >= v`` (zero
    and sub-1 values share bucket ``0``, i.e. upper bound ``2**0``).
    Same shape as the sampler's per-thread latency histograms, so one
    exporter renders both.  Merge is bucket-wise addition — exact and
    order-independent, unlike quantile digests.
    """

    __slots__ = ("buckets", "count", "total", "vmax")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.vmax = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram observations must be >= 0 (got {value})")
        if value <= 1.0:
            exponent = 0
        else:
            mantissa, exponent = frexp(value)
            if mantissa == 0.5:  # exact power of two: 2**(e-1)
                exponent -= 1
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1
        self.count += 1
        self.total += value
        if value > self.vmax:
            self.vmax = value


class MetricsRegistry:
    """Named counters, gauges and histograms with mergeable snapshots.

    Instruments get-or-create their metric once per site
    (``registry.counter("pool.respawns").inc()``); the registry pickles
    across process boundaries, and :meth:`merge` folds another registry
    (or a :meth:`snapshot` dict) in without caring about order.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access ------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable snapshot with deterministic key order."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "max": h.vmax,
                    "buckets": {
                        str(exp): h.buckets[exp] for exp in sorted(h.buckets)
                    },
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_snapshot(cls, data: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(data)
        return registry

    def merge(self, other: "MetricsRegistry | Mapping[str, Any]") -> "MetricsRegistry":
        """Fold ``other`` (a registry or a snapshot dict) into this one.

        Counters sum, gauges keep the maximum, histograms add bucket-wise
        (sum/count/max follow) — all order-independent, so merging worker
        registries in any completion order yields identical state.
        Returns ``self`` for chaining.
        """
        if isinstance(other, MetricsRegistry):
            other = other.snapshot()
        for name, value in other.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in other.get("gauges", {}).items():
            self.gauge(name).max(value)
        for name, data in other.get("histograms", {}).items():
            h = self.histogram(name)
            h.count += data["count"]
            h.total += data["sum"]
            if data["max"] > h.vmax:
                h.vmax = data["max"]
            for exp, n in data["buckets"].items():
                exp = int(exp)
                h.buckets[exp] = h.buckets.get(exp, 0) + n
        return self


# -- process-global registry (probe-or-None) --------------------------------

# The per-process operational registry.  It exists unconditionally (so
# toggling REPRO_METRICS between reads never loses counts) but is only
# *handed out* when the knob enables it — disabled sites hold None.
_REGISTRY = MetricsRegistry()


def metrics_enabled(environ: Mapping[str, str] | None = None) -> bool:
    """Whether ``REPRO_METRICS`` enables the registry (default: on).

    Operational metrics are boundary-cost only (nothing per simulated
    event), so unlike tracing they default on; set ``REPRO_METRICS=0``
    to compile every site down to ``None``.
    """
    env = os.environ if environ is None else environ
    raw = (env.get("REPRO_METRICS") or "").strip().lower()
    if raw == "" or raw in _TRUE:
        return True
    if raw in _FALSE:
        return False
    from ..envknobs import EnvKnobError

    raise EnvKnobError(
        f"REPRO_METRICS must be one of {', '.join(_TRUE + _FALSE)} (got {raw!r})"
    )


def metrics_from_env(environ: Mapping[str, str] | None = None) -> MetricsRegistry | None:
    """The process metrics registry, or exactly ``None`` when disabled.

    The probe-or-None contract of the trace bus and the guard: a site
    does ``reg = metrics_from_env()`` once per boundary event and pays a
    single ``is not None`` test when metrics are off.
    """
    return _REGISTRY if metrics_enabled(environ) else None


def reset_metrics() -> None:
    """Zero the process registry (test isolation)."""
    _REGISTRY._counters.clear()
    _REGISTRY._gauges.clear()
    _REGISTRY._histograms.clear()


# -- deterministic per-job metrics ------------------------------------------

def job_metrics(result: "WorkloadResult") -> dict[str, int]:
    """The deterministic simulation counters of one finished job.

    Every value is a pure function of the job description (seeded
    simulation, pinned backend), so per-job blobs — and any merge of
    them — are bit-identical between serial and ``--jobs N`` execution.
    This is what the campaign progress table stores and what
    ``campaign watch`` merges; wall-clock and cache traffic explicitly
    do *not* belong here.
    """
    return {
        "sim.cycles": result.sim_cycles,
        "sim.events_elided": result.events_elided,
        "sim.events_logical": result.events_logical,
        "sim.events_processed": result.events_processed,
        "sim.min_rebuilds": result.min_rebuilds,
        "sim.row_conflicts": result.total_row_conflicts,
        "sim.row_hits": result.total_row_hits,
    }


def merge_job_metrics(blobs: Iterable[Mapping[str, int]]) -> dict[str, int]:
    """Sum per-job metric blobs key-wise (order-independent)."""
    merged: dict[str, int] = {}
    for blob in blobs:
        for name, value in blob.items():
            merged[name] = merged.get(name, 0) + value
    return {name: merged[name] for name in sorted(merged)}


# -- operational collection --------------------------------------------------

def collect_process_metrics() -> MetricsRegistry:
    """This process's operational counters as one fresh registry.

    Pull-style collection: the pool, disk cache, guard and chaos layers
    keep their native plain-dict counters (zero overhead, no imports of
    this module), and this function folds them — together with whatever
    instruments pushed into the probe-or-None registry — into a single
    mergeable snapshot.  Imports are lazy so the obs package never drags
    the campaign stack in at import time.
    """
    registry = MetricsRegistry()
    registry.merge(_REGISTRY)

    from ..sim.diskcache import GLOBAL_STATS

    for name in sorted(GLOBAL_STATS):
        registry.counter(f"cache.{name}").inc(GLOBAL_STATS[name])

    from ..sim.pool import JOB_STATS, POOL_STATS

    registry.counter("pool.jobs_executed").inc(JOB_STATS["executed"])
    for name in sorted(POOL_STATS):
        registry.counter(f"pool.{name}").inc(POOL_STATS[name])

    from ..guard.invariants import GUARD_STATS

    for kind in sorted(GUARD_STATS):
        registry.counter(f"guard.violations.{kind}").inc(GUARD_STATS[kind])

    from ..guard.chaos import CHAOS_STATS

    for kind in sorted(CHAOS_STATS):
        registry.counter(f"chaos.fired.{kind}").inc(CHAOS_STATS[kind])

    from ..campaign.store import STORE_STATS

    registry.counter("store.commit_retries").inc(STORE_STATS["commit_retries"])

    from ..campaign.queue import QUEUE_STATS

    for name in sorted(QUEUE_STATS):
        registry.counter(f"worker.{name}").inc(QUEUE_STATS[name])
    return registry
