"""Structured trace bus: typed events, per-site probes, sink backends.

Events are plain dicts with two mandatory keys — ``t`` (simulation time in
CPU cycles) and ``ev`` (a dotted ``category.kind`` type name) — plus
event-specific fields.  Field insertion order is fixed at the emit site,
and every field is a deterministic function of the simulation state, so a
serialized stream is byte-identical across processes for identical jobs
(the property the serial-vs-parallel determinism tests pin down).

Event vocabulary (``category.kind``):

=======================  =====================================================
``request.enqueue``      request entered the buffer (thread/channel/bank/row)
``request.issue``        request won arbitration (row result, queue delay)
``request.complete``     data transfer done (latency incl. overhead)
``dram.cmd``             DRAM command: PRE / ACT / RD / WR with row-hit flag
``dram.drain``           write-drain mode flipped on (1) or off (0)
``batch.formed``         PAR-BS batch formed: per-thread marked counts,
                         Max-Total ranking, per-thread backlog
``batch.completed``      the current batch fully drained (duration)
``sched.epoch``          scheduler priority epoch bumped
``sched.rqindex_rebuild``a bank's arbitration index rebuilt its heaps
``core.stall``           a core's commit blocked on an incomplete DRAM load
``core.unstall``         the core resumed retiring instructions
``sample.tick``          periodic telemetry sample (see repro.obs.sampler)
``campaign.start``       campaign run began (total/pending job counts)
``campaign.job``         one campaign job finished (key, variant, status)
``campaign.done``        campaign run finished (ran/failed/skipped counts)
=======================  =====================================================

``dram.cmd`` events are emitted at *issue* time but stamped with the cycle
the command occupies the command bus, so a stream is ordered by emission,
not strictly by timestamp; consumers that need time order must sort (the
Perfetto exporter does not need to — trace viewers sort internally).

The zero-overhead contract: an instrumentation site asks the tracer for a
:class:`Probe` once, at construction/attach time.  When tracing is
disabled (no tracer) or the category is filtered out, the site holds
``None`` and its guard is a single local ``is not None`` test — there is
no call, no allocation, and no formatting on the disabled path.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterable, Iterator

__all__ = [
    "CATEGORIES",
    "JsonlSink",
    "Probe",
    "RingBufferSink",
    "Tracer",
    "read_jsonl",
]

# Every event category the simulator emits; ``--trace-events`` selects a
# subset of these.  ``campaign`` events come from the campaign
# orchestrator (job lifecycle), not from inside a simulation.
CATEGORIES = ("request", "dram", "batch", "sched", "core", "sample", "campaign")


class Probe:
    """One instrumentation site's handle on the trace bus.

    A probe is bound to a category; :meth:`emit` stamps the event dict and
    fans it out to every sink.  Sites never construct probes directly —
    they ask :meth:`Tracer.probe`, which returns ``None`` for disabled
    categories so the site's guard short-circuits.
    """

    __slots__ = ("category", "_sinks")

    def __init__(self, category: str, sinks: list["JsonlSink | RingBufferSink"]) -> None:
        self.category = category
        self._sinks = sinks

    def emit(self, t: int, ev: str, **fields) -> None:
        """Emit one event at simulation time ``t``.

        ``ev`` is the dotted type name (its prefix is this probe's
        category); ``fields`` become the event payload.
        """
        event: dict = {"t": t, "ev": ev}
        event.update(fields)
        for sink in self._sinks:
            sink.emit(event)


class Tracer:
    """The trace bus: category filtering plus sink fan-out.

    Parameters
    ----------
    sinks:
        Sink backends receiving every emitted event.
    events:
        Iterable of category names to enable, or ``None`` for all of
        :data:`CATEGORIES`.  Unknown names raise immediately — a silently
        ignored typo in ``--trace-events`` would read as "no events of
        that kind happened".
    """

    def __init__(
        self,
        sinks: Iterable["JsonlSink | RingBufferSink"],
        events: Iterable[str] | None = None,
    ) -> None:
        self.sinks = list(sinks)
        if events is None:
            self.categories = frozenset(CATEGORIES)
        else:
            categories = frozenset(events)
            unknown = categories - frozenset(CATEGORIES)
            if unknown:
                raise ValueError(
                    f"unknown trace event categories {sorted(unknown)}; "
                    f"known: {', '.join(CATEGORIES)}"
                )
            self.categories = categories

    def probe(self, category: str) -> Probe | None:
        """A probe for ``category``, or ``None`` when it is filtered out.

        Instrumentation sites store the result and guard emissions with
        ``if probe is not None`` — the whole disabled-path cost.
        """
        if category not in CATEGORIES:
            raise ValueError(f"unknown trace event category {category!r}")
        if category not in self.categories:
            return None
        return Probe(category, self.sinks)

    def close(self) -> None:
        """Flush and close every sink."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RingBufferSink:
    """Bounded in-memory sink (the test and interactive backend).

    Keeps the most recent ``capacity`` events (unbounded by default).
    Iterating yields events oldest-first.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.events: deque[dict] = deque(maxlen=capacity)
        self.emitted = 0  # total ever, including ones the ring dropped

    def emit(self, event: dict) -> None:
        self.events.append(event)
        self.emitted += 1

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.events)

    def of_type(self, ev: str) -> list[dict]:
        """Events whose type is ``ev`` (or starts with ``ev + '.'``)."""
        prefix = ev + "."
        return [e for e in self.events if e["ev"] == ev or e["ev"].startswith(prefix)]


class JsonlSink:
    """Append events to a file, one compact JSON object per line.

    The file is opened lazily on the first event (so a run that emits
    nothing leaves nothing behind) with ``newline="\\n"`` — the stream is
    byte-identical across platforms and processes for identical event
    sequences, which the determinism tests rely on.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None
        self.emitted = 0

    def emit(self, event: dict) -> None:
        fh = self._fh
        if fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fh = self._fh = self.path.open("w", newline="\n")
        fh.write(json.dumps(event, separators=(",", ":")))
        fh.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL trace file back into a list of event dicts."""
    events = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
