"""Tracing configuration: a picklable description of what to record.

:class:`TraceConfig` travels with :class:`~repro.sim.pool.SimJob` across
process boundaries so workers write the same per-job trace files a serial
run would.  It is resolved from the CLI flags (``--trace`` /
``--trace-events`` / ``--sample-interval`` / ``--perfetto``) or from the
environment (``REPRO_TRACE``, ``REPRO_TRACE_EVENTS``,
``REPRO_SAMPLE_INTERVAL``, ``REPRO_TRACE_PERFETTO``) — the CLI simply
exports the environment variables so every runner constructed deep inside
an experiment helper sees the same configuration, mirroring ``--jobs`` /
``REPRO_JOBS``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..envknobs import read_optional_int

__all__ = ["TraceConfig"]


@dataclass(frozen=True)
class TraceConfig:
    """What the observability layer should record for each simulation.

    The default (all fields unset) is *inactive*: passing
    ``TraceConfig()`` to a runner explicitly disables tracing even when
    ``REPRO_TRACE`` is set in the environment.
    """

    dir: str | None = None  # directory for per-job JSONL trace files
    events: tuple[str, ...] | None = None  # event categories (None = all)
    sample_interval: int | None = None  # telemetry sample period, cycles
    perfetto: bool = False  # also write a Chrome-trace JSON per job

    def __post_init__(self) -> None:
        if self.sample_interval is not None and self.sample_interval < 1:
            raise ValueError("sample_interval must be >= 1 cycle")

    @property
    def active(self) -> bool:
        """Whether any recording is requested at all."""
        return self.dir is not None or self.sample_interval is not None

    @property
    def wants_events(self) -> bool:
        """Whether per-event trace files should be written."""
        return self.dir is not None

    @classmethod
    def from_env(cls, environ: dict | None = None) -> "TraceConfig | None":
        """Configuration from ``REPRO_TRACE*``, or ``None`` when unset."""
        env = os.environ if environ is None else environ
        trace_dir = env.get("REPRO_TRACE") or None
        interval = read_optional_int("REPRO_SAMPLE_INTERVAL", floor=1, environ=env)
        if trace_dir is None and interval is None:
            return None
        events_raw = env.get("REPRO_TRACE_EVENTS")
        events = (
            tuple(e.strip() for e in events_raw.split(",") if e.strip())
            if events_raw
            else None
        )
        perfetto = env.get("REPRO_TRACE_PERFETTO", "").lower() in ("1", "true", "yes")
        return cls(
            dir=trace_dir,
            events=events,
            sample_interval=interval,
            perfetto=perfetto,
        )
