"""Deterministic discrete-event simulation kernel.

Every component in the simulator (cores, caches, the DRAM controller)
advances time through a single :class:`EventQueue`.  Events are ordered by
``(time, priority, sequence)``; the monotonically increasing sequence number
makes the simulation fully deterministic for equal-time events regardless of
heap internals.

Time is measured in integer CPU cycles (4 GHz in the baseline configuration,
so one cycle is 0.25 ns).
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventQueue", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class EventQueue:
    """A priority queue of timed callbacks driving the simulation.

    Example
    -------
    >>> q = EventQueue()
    >>> hits = []
    >>> q.schedule(10, lambda: hits.append(q.now))
    >>> q.run()
    1
    >>> hits
    [10]
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, int, Callable[[], None]]] = []
        self._seq: int = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, when: int, callback: Callable[[], None], priority: int = 0) -> None:
        """Schedule ``callback`` to run at absolute time ``when``.

        ``priority`` breaks ties between events at the same time; lower
        priorities run first.  Scheduling in the past is an error.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event at {when}, current time is {self.now}"
            )
        heapq.heappush(self._heap, (when, priority, self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay: int, callback: Callable[[], None], priority: int = 0) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback, priority)

    def step(self) -> bool:
        """Run the earliest pending event.  Returns ``False`` if none remain."""
        if not self._heap:
            return False
        when, _prio, _seq, callback = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event heap time went backwards")
        self.now = when
        callback()
        return True

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains, ``until`` is passed, or
        ``max_events`` have executed.  Returns the number of events run.
        """
        count = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if max_events is not None and count >= max_events:
                break
            self.step()
            count += 1
        if until is not None and self.now < until:
            self.now = until
        return count

    def peek_time(self) -> int | None:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        return self._heap[0][0] if self._heap else None
