"""Deterministic discrete-event simulation kernel.

Every component in the simulator (cores, caches, the DRAM controller)
advances time through a single :class:`EventQueue`.  Events are ordered by
``(time, priority, sequence)``; the monotonically increasing sequence number
makes the simulation fully deterministic for equal-time events regardless of
heap internals.

Time is measured in integer CPU cycles (4 GHz in the baseline configuration,
so one cycle is 0.25 ns).
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventQueue", "PeriodicTask", "SimulationError", "SimulationStalled"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class SimulationStalled(SimulationError):
    """The no-progress watchdog fired: bounded cycles passed with zero
    instruction commits.  Carries a diagnostic dump of queue/bank/batch
    state (see :func:`repro.guard.diagnostics.stall_report`) so a
    livelock is debuggable instead of silently burning the event budget.
    """

    def __init__(self, message: str, report: str = "") -> None:
        self.report = report
        super().__init__(message)


class PeriodicTask:
    """A self-rescheduling periodic callback (telemetry samplers, watchdogs).

    Created via :meth:`EventQueue.schedule_every`.  The task re-arms itself
    after every firing until :meth:`cancel` is called; a cancelled task's
    already-scheduled event becomes a no-op, so cancellation is safe at any
    point (including from inside the callback).
    """

    __slots__ = ("queue", "interval", "callback", "priority", "cancelled", "fired")

    def __init__(
        self,
        queue: "EventQueue",
        interval: int,
        callback: Callable[[], None],
        priority: int,
    ) -> None:
        if interval < 1:
            raise ValueError("periodic interval must be >= 1 cycle")
        self.queue = queue
        self.interval = interval
        self.callback = callback
        self.priority = priority
        self.cancelled = False
        self.fired = 0

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fired += 1
        self.callback()
        if not self.cancelled:
            self.queue.schedule_in(self.interval, self._fire, self.priority)

    def cancel(self) -> None:
        """Stop future firings (pending heap entries become no-ops)."""
        self.cancelled = True


class EventQueue:
    """A priority queue of timed callbacks driving the simulation.

    Example
    -------
    >>> q = EventQueue()
    >>> hits = []
    >>> q.schedule(10, lambda: hits.append(q.now))
    >>> q.run()
    1
    >>> hits
    [10]
    """

    # Slotted: ``now`` and ``_seq`` are read/written multiple times per
    # event by the run loop and the fast backend's inlined push sites.
    # ``now_seq`` is the sequence number of the event currently being
    # dispatched — sequence numbers are unique, so it identifies *which*
    # event is running, not just when.  The fast backend's wake elision
    # uses it to tell same-event enqueues apart from same-cycle ones.
    __slots__ = ("now", "_heap", "_seq", "now_seq")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, int, Callable[[], None]]] = []
        self._seq: int = 0
        self.now_seq: int = -1

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, when: int, callback: Callable[[], None], priority: int = 0) -> None:
        """Schedule ``callback`` to run at absolute time ``when``.

        ``priority`` breaks ties between events at the same time; lower
        priorities run first.  Scheduling in the past is an error.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event at {when}, current time is {self.now}"
            )
        heapq.heappush(self._heap, (when, priority, self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay: int, callback: Callable[[], None], priority: int = 0) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback, priority)

    def schedule_every(
        self, interval: int, callback: Callable[[], None], priority: int = 5
    ) -> PeriodicTask:
        """Run ``callback`` every ``interval`` cycles until cancelled.

        The first firing is one interval from now.  Returns the
        :class:`PeriodicTask` handle; callers that drive the queue with
        ``run()`` (which drains the heap) must cancel it to terminate.
        """
        task = PeriodicTask(self, interval, callback, priority)
        self.schedule(self.now + interval, task._fire, priority)
        return task

    def step(self) -> bool:
        """Run the earliest pending event.  Returns ``False`` if none remain."""
        if not self._heap:
            return False
        when, _prio, seq, callback = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event heap time went backwards")
        self.now = when
        self.now_seq = seq
        callback()
        return True

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains, ``until`` is passed, or
        ``max_events`` have executed.  Returns the number of events run.
        """
        count = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if max_events is not None and count >= max_events:
                break
            self.step()
            count += 1
        if until is not None and self.now < until:
            self.now = until
        return count

    def peek_time(self) -> int | None:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        return self._heap[0][0] if self._heap else None
