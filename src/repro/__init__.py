"""repro: a reproduction of *Parallelism-Aware Batch Scheduling* (PAR-BS).

Mutlu & Moscibroda, ISCA 2008 — a shared-DRAM scheduler that batches
requests for fairness/starvation-freedom and ranks threads within a batch
(shortest-job-first over per-bank loads) to preserve each thread's
bank-level parallelism.

Quick start::

    from repro import ExperimentRunner, CASE_STUDY_1

    runner = ExperimentRunner()
    results = runner.compare_schedulers(CASE_STUDY_1)
    for name, result in results.items():
        print(name, f"unfairness={result.unfairness:.2f}",
              f"wspeedup={result.weighted_speedup:.2f}")

Package layout:

* :mod:`repro.core` — the paper's contribution (PAR-BS, batching, ranking);
* :mod:`repro.schedulers` — FCFS, FR-FCFS, NFQ and STFM baselines;
* :mod:`repro.dram` — banks, buses, channels, the memory controller;
* :mod:`repro.cpu` / :mod:`repro.cache` — core model and cache hierarchy;
* :mod:`repro.workloads` — Table 3 profiles, trace generator, mixes;
* :mod:`repro.sim` / :mod:`repro.metrics` — runners and paper metrics;
* :mod:`repro.experiments` — drivers reproducing every table and figure.
"""

from .config import CoreConfig, DramConfig, SystemConfig, baseline_system
from .core import OPPORTUNISTIC, ParBsScheduler
from .metrics import WorkloadResult, geomean, unfairness
from .schedulers import FcfsScheduler, FrFcfsScheduler, NfqScheduler, StfmScheduler
from .sim import SCHEDULER_NAMES, ExperimentRunner, System, make_scheduler
from .workloads import (
    CASE_STUDY_1,
    CASE_STUDY_2,
    CASE_STUDY_3,
    EIGHT_CORE_MIX,
    FIG8_SAMPLE_MIXES,
    SIXTEEN_CORE_MIXES,
    PROFILES,
    generate_trace,
    profile,
    random_mixes,
)

__version__ = "1.0.0"

__all__ = [
    "CoreConfig",
    "DramConfig",
    "SystemConfig",
    "baseline_system",
    "OPPORTUNISTIC",
    "ParBsScheduler",
    "WorkloadResult",
    "geomean",
    "unfairness",
    "FcfsScheduler",
    "FrFcfsScheduler",
    "NfqScheduler",
    "StfmScheduler",
    "SCHEDULER_NAMES",
    "ExperimentRunner",
    "System",
    "make_scheduler",
    "CASE_STUDY_1",
    "CASE_STUDY_2",
    "CASE_STUDY_3",
    "EIGHT_CORE_MIX",
    "FIG8_SAMPLE_MIXES",
    "SIXTEEN_CORE_MIXES",
    "PROFILES",
    "generate_trace",
    "profile",
    "random_mixes",
    "__version__",
]
