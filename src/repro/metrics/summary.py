"""Result records aggregating per-run metrics.

:class:`WorkloadResult` packages everything the paper reports for one
multiprogrammed run under one scheduler: per-thread memory slowdowns,
unfairness, weighted/hmean speedup, average stall time per request, and
worst-case request latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from .fairness import memory_slowdown, unfairness
from .speedup import hmean_speedup, weighted_speedup

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.sampler import TelemetrySummary

__all__ = ["ThreadResult", "WorkloadResult", "geomean"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregation across workloads)."""
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class ThreadResult:
    """Shared-run statistics of one thread, plus its alone-run baseline."""

    thread_id: int
    benchmark: str
    ipc_shared: float
    ipc_alone: float
    mcpi_shared: float
    mcpi_alone: float
    ast_per_req: float
    blp_shared: float
    blp_alone: float
    row_hit_rate: float
    worst_latency: int
    # Per-thread DRAM detail (previously collected by the controller but
    # dropped on the way out): row-buffer outcome counts and the average
    # request latency in the shared run.
    row_hits: int = 0
    row_conflicts: int = 0
    latency_avg: float = 0.0
    # Trace-ingestion provenance, populated only for threads driven by an
    # external trace file (see :mod:`repro.traces`): how many requests
    # the file contributed, how many lines failed to parse, and whether
    # the stream was cut off by the instruction/request budget.
    requests_read: int = 0
    lines_skipped: int = 0
    truncated: bool = False

    @property
    def memory_slowdown(self) -> float:
        return memory_slowdown(self.mcpi_shared, self.mcpi_alone)

    @property
    def latency_max(self) -> int:
        """Worst shared-run request latency (alias of ``worst_latency``)."""
        return self.worst_latency

    def describe(self) -> str:
        """One-line summary (the per-thread row of
        :meth:`WorkloadResult.describe`); traced threads append their
        ingestion provenance."""
        line = (
            f"t{self.thread_id} {self.benchmark:<12} "
            f"slowdown={self.memory_slowdown:5.2f} "
            f"AST/req={self.ast_per_req:7.1f} BLP={self.blp_shared:.2f} "
            f"(alone {self.blp_alone:.2f}) rowhit={self.row_hit_rate:.0%} "
            f"lat avg={self.latency_avg:.0f} max={self.latency_max}"
        )
        if self.requests_read:
            line += (
                f" trace[reqs={self.requests_read}"
                f" skipped={self.lines_skipped}"
                f"{' truncated' if self.truncated else ''}]"
            )
        return line


@dataclass(frozen=True)
class WorkloadResult:
    """All metrics for one workload under one scheduler."""

    scheduler: str
    workload: tuple[str, ...]
    threads: tuple[ThreadResult, ...]
    sim_cycles: int = 0
    extra: Mapping[str, float] = field(default_factory=dict)
    # Optional telemetry digest (latency quantiles, periodic samples, bus
    # counters) recorded when the run had observability enabled.
    telemetry: "TelemetrySummary | None" = None
    # Simulator event accounting for the shared run.  ``events_processed``
    # is what the event loop dispatched; ``events_elided`` counts the
    # wakes the fast backend proved no-ops and skipped (always 0 on the
    # python backend); ``min_rebuilds`` counts cached-minimum rebuilds in
    # the fast arbitration kernel (a removal evicted a bucket minimum).
    # ``events_logical`` (processed + elided) is backend-independent:
    # it equals the python backend's processed count for the same job.
    events_processed: int = 0
    events_elided: int = 0
    min_rebuilds: int = 0

    def slowdowns(self) -> dict[int, float]:
        return {t.thread_id: t.memory_slowdown for t in self.threads}

    @property
    def unfairness(self) -> float:
        return unfairness([t.memory_slowdown for t in self.threads])

    @property
    def weighted_speedup(self) -> float:
        return weighted_speedup(
            [t.ipc_shared for t in self.threads],
            [t.ipc_alone for t in self.threads],
        )

    @property
    def hmean_speedup(self) -> float:
        return hmean_speedup(
            [t.ipc_shared for t in self.threads],
            [t.ipc_alone for t in self.threads],
        )

    @property
    def avg_stall_per_request(self) -> float:
        """AST/req averaged over threads with any DRAM loads."""
        values = [t.ast_per_req for t in self.threads if t.ast_per_req > 0]
        return sum(values) / len(values) if values else 0.0

    @property
    def worst_case_latency(self) -> int:
        return max((t.worst_latency for t in self.threads), default=0)

    @property
    def events_logical(self) -> int:
        """Backend-independent event count (processed + elided wakes)."""
        return self.events_processed + self.events_elided

    @property
    def total_row_hits(self) -> int:
        return sum(t.row_hits for t in self.threads)

    @property
    def total_row_conflicts(self) -> int:
        return sum(t.row_conflicts for t in self.threads)

    @property
    def row_hit_rate(self) -> float:
        """Workload-wide row-buffer hit rate of the shared run."""
        total = self.total_row_hits + self.total_row_conflicts
        return self.total_row_hits / total if total else 0.0

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"{self.scheduler} on {'+'.join(self.workload)}:",
            f"  unfairness={self.unfairness:.2f}  "
            f"wspeedup={self.weighted_speedup:.2f}  "
            f"hspeedup={self.hmean_speedup:.3f}",
        ]
        if self.events_logical:
            lines.append(
                f"  events={self.events_logical} "
                f"(processed {self.events_processed}, "
                f"elided {self.events_elided}, "
                f"min-rebuilds {self.min_rebuilds})"
            )
        for t in self.threads:
            lines.append(f"  {t.describe()}")
        if self.telemetry is not None:
            described = self.telemetry.describe()
            if described:
                lines.append(described)
        return "\n".join(lines)
