"""Fairness metrics (paper Section 7.1).

The paper measures fairness with the *unfairness index*: the ratio of the
maximum to the minimum memory-related slowdown across the threads sharing
the DRAM system, where a thread's memory slowdown is its memory stall time
per instruction running shared divided by the same quantity running alone:

    MemSlowdown_i = MCPI_shared_i / MCPI_alone_i
    Unfairness    = max_i MemSlowdown_i / min_j MemSlowdown_j
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["memory_slowdown", "unfairness"]

# Threads with essentially no memory activity have MCPI ≈ 0 alone; clamp
# the denominator so their slowdown stays finite and near 1.
_MIN_MCPI = 1e-6


def memory_slowdown(mcpi_shared: float, mcpi_alone: float) -> float:
    """Memory-related slowdown of one thread.

    Both inputs are memory stall cycles per instruction.  A thread that
    stalls no more in the shared system than alone has slowdown 1.0.
    """
    if mcpi_shared < 0 or mcpi_alone < 0:
        raise ValueError("MCPI values must be non-negative")
    denominator = max(mcpi_alone, _MIN_MCPI)
    return max(mcpi_shared / denominator, 1.0)


def unfairness(slowdowns: Sequence[float] | Mapping[int, float]) -> float:
    """Unfairness index over per-thread memory slowdowns (≥ 1.0)."""
    values = list(slowdowns.values()) if isinstance(slowdowns, Mapping) else list(slowdowns)
    if not values:
        raise ValueError("need at least one slowdown")
    if any(v <= 0 for v in values):
        raise ValueError("slowdowns must be positive")
    return max(values) / min(values)
