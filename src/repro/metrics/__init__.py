"""Evaluation metrics: fairness, throughput, and result records."""

from .fairness import memory_slowdown, unfairness
from .speedup import hmean_speedup, weighted_speedup
from .summary import ThreadResult, WorkloadResult, geomean

__all__ = [
    "memory_slowdown",
    "unfairness",
    "hmean_speedup",
    "weighted_speedup",
    "ThreadResult",
    "WorkloadResult",
    "geomean",
]
