"""System-throughput metrics (paper Section 7.1).

Weighted speedup [Snavely & Tullsen] sums each thread's shared-vs-alone
IPC ratio; hmean speedup [Luo et al.] is the harmonic mean of those
ratios times the thread count, balancing fairness and throughput:

    WeightedSpeedup = sum_i IPC_shared_i / IPC_alone_i
    HmeanSpeedup    = NumThreads / sum_i (IPC_alone_i / IPC_shared_i)
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["weighted_speedup", "hmean_speedup"]


def _validate(ipc_shared: Sequence[float], ipc_alone: Sequence[float]) -> None:
    if len(ipc_shared) != len(ipc_alone):
        raise ValueError("shared and alone IPC lists must have equal length")
    if not ipc_shared:
        raise ValueError("need at least one thread")
    if any(v <= 0 for v in ipc_alone) or any(v <= 0 for v in ipc_shared):
        raise ValueError("IPC values must be positive")


def weighted_speedup(ipc_shared: Sequence[float], ipc_alone: Sequence[float]) -> float:
    """Sum of per-thread relative IPCs (max = thread count)."""
    _validate(ipc_shared, ipc_alone)
    return sum(s / a for s, a in zip(ipc_shared, ipc_alone))


def hmean_speedup(ipc_shared: Sequence[float], ipc_alone: Sequence[float]) -> float:
    """Harmonic-mean speedup: balances throughput and fairness."""
    _validate(ipc_shared, ipc_alone)
    return len(ipc_shared) / sum(a / s for s, a in zip(ipc_shared, ipc_alone))
