"""FCFS: first-come-first-serve DRAM scheduling.

Services requests strictly in arrival order per bank, ignoring row-buffer
state.  Fair-ish but leaves row-buffer locality and bank throughput on the
table (paper Sections 3 and 8).
"""

from __future__ import annotations

from typing import Sequence

from ..dram.request import MemoryRequest
from .base import BankKey, Scheduler

__all__ = ["FcfsScheduler"]


class FcfsScheduler(Scheduler):
    """Oldest-request-first arbitration."""

    name = "FCFS"

    # Age is the whole priority; the open row never matters, so the index
    # answers every decision from the bank-wide heap alone.
    index_uses_row = False

    def index_key(self, request: MemoryRequest) -> tuple:
        return (request.arrival_time, request.request_id)

    def pack_key(self, request: MemoryRequest) -> int:
        # Ids are allocated at construction and requests enqueue
        # immediately, so the raw id orders identically to (arrival, id).
        return request.request_id

    def select(
        self, candidates: Sequence[MemoryRequest], bank: BankKey, now: int
    ) -> MemoryRequest:
        return min(candidates, key=lambda r: (r.arrival_time, r.request_id))
