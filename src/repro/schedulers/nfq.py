"""NFQ: network-fair-queueing based memory scheduling [Nesbit et al., MICRO-39].

Reimplementation of the FQ-VFTF variant the paper compares against
(virtual-finish-time-first fair queueing with the priority-inversion
prevention optimization):

* each thread owns a bandwidth share (equal by default, or proportional to
  a weight);
* a request's *virtual finish time* is its thread's previous virtual finish
  time in the same bank (or its arrival time, whichever is later) plus the
  nominal access cost scaled by the inverse of the thread's share;
* the scheduler services the request with the earliest virtual finish time;
* priority-inversion prevention: row-hit requests may jump ahead of
  earlier-deadline requests, but only while the open row is younger than a
  tRAS-based threshold, bounding how long a row streak can invert
  deadlines.

This design exhibits the *idleness problem* the PAR-BS paper discusses:
threads with bursty access patterns receive near-term deadlines after idle
periods and are prioritized over continuously backlogged threads, which
destroys the latter's bank-level parallelism.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from ..dram.request import MemoryRequest
from .base import BankKey, Scheduler

__all__ = ["NfqScheduler"]


class NfqScheduler(Scheduler):
    """Fair-queueing (FQ-VFTF) arbitration with per-thread weights."""

    name = "NFQ"

    def __init__(
        self,
        num_threads: int,
        weights: dict[int, float] | None = None,
        inversion_threshold: int | None = None,
    ) -> None:
        super().__init__()
        self.num_threads = num_threads
        self.weights = dict(weights or {})
        # Virtual finish time of the last request per (thread, channel, bank).
        self._vft: dict[tuple[int, int, int], float] = defaultdict(float)
        # Last row requested per (thread, channel, bank), to estimate the
        # service cost of a new request (row hits are cheap, so threads with
        # high row locality consume their share slowly).
        self._last_row: dict[tuple[int, int, int], int] = {}
        # Time at which the currently open row of each bank was last opened
        # by this policy's accounting (for priority-inversion prevention).
        self._row_open_since: dict[BankKey, int] = {}
        self._row_open_row: dict[BankKey, int | None] = {}
        self._inversion_threshold = inversion_threshold

    # -- share bookkeeping ---------------------------------------------------
    def _share(self, thread_id: int) -> float:
        weight = self.weights.get(thread_id, 1.0)
        total = sum(self.weights.get(t, 1.0) for t in range(self.num_threads))
        return weight / total if total > 0 else 1.0 / self.num_threads

    def _estimated_cost(self, request: MemoryRequest) -> int:
        """Estimated service cost: row-hit latency if the thread's previous
        request to this bank targeted the same row, conflict cost otherwise."""
        t = self.controller.timing
        key = (request.thread_id, request.channel, request.bank)
        if self._last_row.get(key) == request.row:
            return t.row_hit_latency + t.tBUS
        return t.row_conflict_latency + t.tBUS

    def on_enqueue(self, request: MemoryRequest, now: int) -> None:
        key = (request.thread_id, request.channel, request.bank)
        start = max(float(now), self._vft[key])
        cost = self._estimated_cost(request) / self._share(request.thread_id)
        self._last_row[key] = request.row
        finish = start + cost
        self._vft[key] = finish
        request.virtual_finish = finish

    def on_issue(self, request: MemoryRequest, now: int) -> None:
        bank: BankKey = (request.channel, request.bank)
        if self._row_open_row.get(bank) != request.row:
            self._row_open_row[bank] = request.row
            self._row_open_since[bank] = now

    # -- arbitration -----------------------------------------------------------
    def index_key(self, request: MemoryRequest) -> tuple:
        # Virtual finish times are stamped at enqueue and never revised, so
        # NFQ keys are static and the epoch never bumps.
        return (request.virtual_finish, request.arrival_time, request.request_id)

    def select_indexed(
        self, index, bank: BankKey, now: int, open_row: int | None
    ) -> MemoryRequest:
        # The inversion-prevention rule is not a lexicographic key — an
        # in-budget row streak diverts service to the open-row bucket
        # wholesale — so the generic prefix comparison does not apply:
        # either the whole decision comes from the open row's heap, or the
        # row buffer is ignored entirely.
        if index.heap_epoch != self.index_epoch:
            index.ensure(self)
        if open_row is not None:
            hit = index.peek_row(open_row)
            if hit is not None:
                threshold = self._inversion_threshold
                if threshold is None:
                    threshold = self.controller.timing.tRAS
                if now - self._row_open_since.get(bank, now) < threshold:
                    return hit[1]
        return index.peek()[1]

    def select(
        self, candidates: Sequence[MemoryRequest], bank: BankKey, now: int
    ) -> MemoryRequest:
        threshold = self._inversion_threshold
        if threshold is None:
            # Nesbit et al. bound priority inversion with a tRAS threshold:
            # an open row may divert service from earlier virtual deadlines
            # for at most tRAS.  This is what limits the row-buffer locality
            # NFQ can exploit (paper Section 8.1.3).
            threshold = self.controller.timing.tRAS
        # Row-hit status is derived from the bank's open row, resolved once
        # per arbitration rather than per candidate.
        open_row = self.controller.channels[bank[0]].banks[bank[1]].open_row
        hits = (
            [r for r in candidates if r.row == open_row]
            if open_row is not None
            else []
        )
        if hits:
            open_since = self._row_open_since.get(bank, now)
            if now - open_since < threshold:
                # Row streak still within its inversion budget: exploit
                # locality, earliest deadline among the hits.
                return min(
                    hits, key=lambda r: (r.virtual_finish, r.arrival_time, r.request_id)
                )
        return min(
            candidates, key=lambda r: (r.virtual_finish, r.arrival_time, r.request_id)
        )
