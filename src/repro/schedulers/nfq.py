"""NFQ: network-fair-queueing based memory scheduling [Nesbit et al., MICRO-39].

Reimplementation of the FQ-VFTF variant the paper compares against
(virtual-finish-time-first fair queueing with the priority-inversion
prevention optimization):

* each thread owns a bandwidth share (equal by default, or proportional to
  a weight);
* a request's *virtual finish time* is its thread's previous virtual finish
  time in the same bank (or its arrival time, whichever is later) plus the
  nominal access cost scaled by the inverse of the thread's share;
* the scheduler services the request with the earliest virtual finish time;
* priority-inversion prevention: row-hit requests may jump ahead of
  earlier-deadline requests, but only while the open row is younger than a
  tRAS-based threshold, bounding how long a row streak can invert
  deadlines.

This design exhibits the *idleness problem* the PAR-BS paper discusses:
threads with bursty access patterns receive near-term deadlines after idle
periods and are prioritized over continuously backlogged threads, which
destroys the latter's bank-level parallelism.
"""

from __future__ import annotations

from struct import Struct
from typing import Sequence

from ..dram.request import MemoryRequest
from .base import BankKey, Scheduler

__all__ = ["NfqScheduler"]

_DOUBLE_BITS = Struct(">d").pack


class NfqScheduler(Scheduler):
    """Fair-queueing (FQ-VFTF) arbitration with per-thread weights."""

    name = "NFQ"

    def __init__(
        self,
        num_threads: int,
        weights: dict[int, float] | None = None,
        inversion_threshold: int | None = None,
    ) -> None:
        super().__init__()
        self.num_threads = num_threads
        self.weights = dict(weights or {})
        # Time at which the currently open row of each bank was last opened
        # by this policy's accounting (for priority-inversion prevention).
        self._row_open_since: dict[BankKey, int] = {}
        self._row_open_row: dict[BankKey, int | None] = {}
        self._inversion_threshold = inversion_threshold
        # Shares are fixed at construction (weights are not mutated mid-
        # run), so the normalizing sum in ``_share`` is hoisted out of the
        # per-enqueue deadline stamp into a flat per-thread table.
        self._share_by_tid: list[float] = [
            self._share(tid) for tid in range(num_threads)
        ]
        # Per-(thread, channel, bank) virtual-finish / last-row state; laid
        # out flat in :meth:`attach` once the bank geometry is known (the
        # deadline stamp runs once per enqueue, where a list index beats a
        # tuple-keyed dict).  Zero-filled vft matches the defaultdict the
        # accounting originally used; ``None`` never equals a row id.
        self._vft_flat: list[float] = []
        self._last_row_flat: list[int | None] = []
        self._nch = 0
        self._nbanks = 0

    def attach(self, controller) -> None:  # type: ignore[override]
        super().attach(controller)
        timing = controller.timing
        # Loop-invariant cost model and inversion budget, resolved once:
        # ``row_conflict_latency`` is a property and ``tRAS`` an attribute
        # chase, both otherwise re-derived per enqueue / per arbitration.
        self._hit_cost = timing.row_hit_latency + timing.tBUS
        self._miss_cost = timing.row_conflict_latency + timing.tBUS
        self._inv_thresh = (
            self._inversion_threshold
            if self._inversion_threshold is not None
            else timing.tRAS
        )
        self._nch = len(controller.channels)
        self._nbanks = len(controller.channels[0].banks)
        n = self.num_threads * self._nch * self._nbanks
        self._vft_flat = [0.0] * n
        self._last_row_flat = [None] * n

    # -- share bookkeeping ---------------------------------------------------
    def _share(self, thread_id: int) -> float:
        weight = self.weights.get(thread_id, 1.0)
        total = sum(self.weights.get(t, 1.0) for t in range(self.num_threads))
        return weight / total if total > 0 else 1.0 / self.num_threads

    def _estimated_cost(self, request: MemoryRequest) -> int:
        """Estimated service cost: row-hit latency if the thread's previous
        request to this bank targeted the same row, conflict cost otherwise."""
        idx = (
            request.thread_id * self._nch + request.channel
        ) * self._nbanks + request.bank
        if self._last_row_flat[idx] == request.row:
            return self._hit_cost
        return self._miss_cost

    def on_enqueue(self, request: MemoryRequest, now: int) -> None:
        tid = request.thread_id
        idx = (tid * self._nch + request.channel) * self._nbanks + request.bank
        vft = self._vft_flat
        start = float(now)
        prev = vft[idx]
        if prev > start:
            start = prev
        last_row = self._last_row_flat
        row = request.row
        cost = self._hit_cost if last_row[idx] == row else self._miss_cost
        last_row[idx] = row
        finish = start + cost / self._share_by_tid[tid]
        vft[idx] = finish
        request.virtual_finish = finish

    def on_issue(self, request: MemoryRequest, now: int) -> None:
        bank: BankKey = (request.channel, request.bank)
        if self._row_open_row.get(bank) != request.row:
            self._row_open_row[bank] = request.row
            self._row_open_since[bank] = now

    # -- arbitration -----------------------------------------------------------
    def index_key(self, request: MemoryRequest) -> tuple:
        # Virtual finish times are stamped at enqueue and never revised, so
        # NFQ keys are static and the epoch never bumps.
        return (request.virtual_finish, request.arrival_time, request.request_id)

    def pack_key(self, request: MemoryRequest) -> int:
        # Virtual finish times are non-negative, and non-negative IEEE-754
        # doubles order identically to their big-endian bit patterns, so
        # the float packs into the integer key without losing a single
        # comparison: (vf bits, id) sorts exactly like (vf, arrival, id).
        return (
            int.from_bytes(_DOUBLE_BITS(request.virtual_finish), "big") << 40
            | request.request_id
        )

    def select_indexed(
        self, index, bank: BankKey, now: int, open_row: int | None
    ) -> MemoryRequest:
        # The inversion-prevention rule is not a lexicographic key — an
        # in-budget row streak diverts service to the open-row bucket
        # wholesale — so the generic prefix comparison does not apply:
        # either the whole decision comes from the open row's heap, or the
        # row buffer is ignored entirely.
        if index.heap_epoch != self.index_epoch:
            index.ensure(self)
        if open_row is not None:
            hit = index.peek_row(open_row)
            if hit is not None:
                if now - self._row_open_since.get(bank, now) < self._inv_thresh:
                    return hit[1]
        return index.peek()[1]

    def select(
        self, candidates: Sequence[MemoryRequest], bank: BankKey, now: int
    ) -> MemoryRequest:
        # Nesbit et al. bound priority inversion with a tRAS threshold: an
        # open row may divert service from earlier virtual deadlines for at
        # most tRAS.  This is what limits the row-buffer locality NFQ can
        # exploit (paper Section 8.1.3).  Resolved once in :meth:`attach`.
        threshold = self._inv_thresh
        # Row-hit status is derived from the bank's open row, resolved once
        # per arbitration rather than per candidate.
        open_row = self.controller.channels[bank[0]].banks[bank[1]].open_row
        hits = (
            [r for r in candidates if r.row == open_row]
            if open_row is not None
            else []
        )
        if hits:
            open_since = self._row_open_since.get(bank, now)
            if now - open_since < threshold:
                # Row streak still within its inversion budget: exploit
                # locality, earliest deadline among the hits.
                return min(
                    hits, key=lambda r: (r.virtual_finish, r.arrival_time, r.request_id)
                )
        return min(
            candidates, key=lambda r: (r.virtual_finish, r.arrival_time, r.request_id)
        )
