"""FR-FCFS: first-ready, first-come-first-serve [Rixner et al., Zuravleff].

The baseline policy of modern single-thread-optimized controllers:

1. row-hit requests are prioritized over row-closed/conflict requests;
2. ties are broken by age (oldest first).

Maximizes DRAM data throughput but is thread-unaware: threads with high
row-buffer locality or high memory intensity can starve others
(paper Section 3).
"""

from __future__ import annotations

from typing import Sequence

from ..dram.request import MemoryRequest
from .base import BankKey, Scheduler

__all__ = ["FrFcfsScheduler"]


class FrFcfsScheduler(Scheduler):
    """Row-hit-first, then oldest-first arbitration."""

    name = "FR-FCFS"

    # Scan key is (row_miss, age): nothing outranks a row hit, so the
    # prefix is empty — the open-row bucket's best always wins when the
    # bucket is non-empty — and age keys never go stale (epoch never bumps).
    index_prefix_len = 0

    def index_key(self, request: MemoryRequest) -> tuple:
        return (request.arrival_time, request.request_id)

    # Packed form: the raw id alone (id order == age order); the prefix
    # stays empty (``pack_prefix_shift`` None), so the fast kernel's
    # open-row best always wins when the bucket is non-empty.
    def pack_key(self, request: MemoryRequest) -> int:
        return request.request_id

    def select(
        self, candidates: Sequence[MemoryRequest], bank: BankKey, now: int
    ) -> MemoryRequest:
        # Resolve the open row once per arbitration instead of re-deriving
        # row-hit status per candidate (rows are ints, so ``row != None``
        # correctly reads as a miss when the bank is precharged).
        open_row = self.controller.channels[bank[0]].banks[bank[1]].open_row
        return min(
            candidates,
            key=lambda r: (r.row != open_row, r.arrival_time, r.request_id),
        )
