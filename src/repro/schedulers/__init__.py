"""Baseline DRAM scheduling policies the paper compares against."""

from .base import BankKey, Scheduler
from .fcfs import FcfsScheduler
from .frfcfs import FrFcfsScheduler
from .nfq import NfqScheduler
from .stfm import StfmScheduler

__all__ = [
    "BankKey",
    "Scheduler",
    "FcfsScheduler",
    "FrFcfsScheduler",
    "NfqScheduler",
    "StfmScheduler",
]
