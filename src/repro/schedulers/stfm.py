"""STFM: stall-time fair memory scheduling [Mutlu & Moscibroda, MICRO-40].

Reimplementation of the scheduler the PAR-BS paper identifies as the best
previous technique.  STFM aims to equalize the memory-related slowdown of
all threads:

* for each thread the controller tracks ``T_shared`` — the memory stall
  time the thread experiences in the shared system (approximated here by
  the time the thread has at least one outstanding read) — and estimates
  ``T_interference`` — the extra stall caused by other threads;
* the estimated slowdown is ``S = T_shared / (T_shared - T_interference)``;
* if the ratio of the maximum to minimum slowdown exceeds ``alpha``, the
  scheduler switches from FR-FCFS to a fairness-oriented policy that
  prioritizes the most-slowed-down thread's requests.

Interference accounting follows the published description: when a request
occupies a bank, every other thread with requests waiting on that bank
accrues the service duration divided by its current bank-level parallelism
(a thread whose requests proceed in parallel in other banks loses less).
As the PAR-BS paper notes, these estimates are heuristic and can
under-estimate the slowdown of threads with high inherent bank-level
parallelism — a behaviour this reimplementation shares by construction.

Thread weights (for the priority experiments) scale the *perceived*
slowdown: ``S_eff = 1 + (S - 1) * weight``, so heavier threads look more
slowed-down and are prioritized earlier.
"""

from __future__ import annotations

from typing import Sequence

from ..dram.request import MemoryRequest
from .base import BankKey, Scheduler

__all__ = ["StfmScheduler"]


class StfmScheduler(Scheduler):
    """Stall-time fair arbitration."""

    name = "STFM"
    # ``on_issue`` reads ``request.service_outcome`` for the alone-time
    # model; the fast backend must materialize the outcome object.
    uses_service_outcome = True

    def __init__(
        self,
        num_threads: int,
        alpha: float = 1.10,
        interval_length: int = 2**22,
        weights: dict[int, float] | None = None,
    ) -> None:
        super().__init__()
        if alpha < 1.0:
            raise ValueError("alpha must be >= 1")
        self.num_threads = num_threads
        self.alpha = alpha
        self.interval_length = interval_length
        self.weights = dict(weights or {})

        # Per-thread counters as flat lists (thread ids are dense).
        self._t_shared: list[float] = [0.0] * num_threads
        self._t_interference: list[float] = [0.0] * num_threads
        # Outstanding read tracking for T_shared integration.
        self._outstanding: list[int] = [0] * num_threads
        self._last_change: list[int] = [0] * num_threads
        # Banks with waiting-or-in-service reads per thread (for the bank
        # parallelism divisor in interference accounting), plus an O(1)
        # count of banks with a positive request count so the divisor
        # needs no per-victim scan over the bank map.
        self._banks_busy: list[dict[BankKey, int]] = [{} for _ in range(num_threads)]
        self._busy_bank_count: list[int] = [0] * num_threads
        self._last_decay = 0
        # Incrementally maintained slowdown table: ``select`` runs once per
        # bank wake and recomputing every thread's slowdown each time is
        # the policy's main arbitration cost.  A thread's entry is
        # recomputed only when its counters changed since the last
        # arbitration (dirty) or when its estimate is time-dependent (it
        # has outstanding reads, so T_shared grows with ``now``).  Threads
        # that are idle and untouched keep their cached value — computing
        # it again would evaluate the same expression on the same inputs.
        self._slowdown_cache: dict[int, float] = {}
        self._slowdown_cache_time = -1
        self._sd_dirty: list[bool] = [False] * num_threads
        self._sd_time: list[int] = [-1] * num_threads
        self._sd_any_dirty = False
        # Epoch-scoped arbitration mode for the incremental index:
        # (fairness mode active, thread being boosted).  Buffered index
        # keys are built against this snapshot; ``refresh_index`` bumps the
        # epoch only when a decision actually observes a different mode.
        self._index_mode: tuple[bool, int] = (False, -1)
        # Cycle the mode was last derived for: several banks arbitrating in
        # the same cycle with no counter changes in between would re-derive
        # the identical (fair, slowest) decision from the identical
        # slowdown table — skip the scan entirely (see ``refresh_index``).
        self._mode_time = -1
        # Flat weight mirror for the inlined slowdown math in
        # ``_slowdowns`` (thread ids are dense).
        self._weight_by_tid: list[float] = [
            self.weights.get(tid, 1.0) for tid in range(num_threads)
        ]

    # -- bookkeeping -----------------------------------------------------------
    def _advance(self, thread_id: int, now: int) -> None:
        if self._outstanding[thread_id] > 0:
            self._t_shared[thread_id] += now - self._last_change[thread_id]
        self._last_change[thread_id] = now

    def _decay(self, now: int) -> None:
        if now - self._last_decay < self.interval_length:
            return
        for table in (self._t_shared, self._t_interference):
            for tid in range(self.num_threads):
                table[tid] *= 0.5
        self._last_decay = now
        # Every estimate changed; recompute all on the next arbitration.
        for tid in range(self.num_threads):
            self._sd_dirty[tid] = True
        self._sd_any_dirty = True

    def _mark_dirty(self, thread_id: int) -> None:
        self._sd_dirty[thread_id] = True
        self._sd_any_dirty = True

    def _bank_parallelism(self, thread_id: int) -> int:
        count = self._busy_bank_count[thread_id]
        return count if count > 1 else 1

    # The three lifecycle hooks run once per request event and together
    # dominate STFM's bookkeeping cost, so ``_advance``, ``_mark_dirty``
    # and the (almost always false) ``_decay`` trigger check are inlined
    # into their bodies; the helper methods above remain the documented
    # reference for what the inlined statements do.
    def on_enqueue(self, request: MemoryRequest, now: int) -> None:
        if not request.is_read:
            return
        tid = request.thread_id
        out = self._outstanding[tid]
        if out > 0:
            self._t_shared[tid] += now - self._last_change[tid]
        self._last_change[tid] = now
        self._outstanding[tid] = out + 1
        bank_counts = self._banks_busy[tid]
        key: BankKey = (request.channel, request.bank)
        before = bank_counts.get(key, 0)
        bank_counts[key] = before + 1
        if before == 0:
            self._busy_bank_count[tid] += 1
        if now - self._last_decay >= self.interval_length:
            self._decay(now)
        self._sd_dirty[tid] = True
        self._sd_any_dirty = True

    def on_issue(self, request: MemoryRequest, now: int) -> None:
        if not request.is_read:
            return
        outcome = request.service_outcome
        duration = outcome.bank_free - outcome.start if outcome is not None else 0
        key: BankKey = (request.channel, request.bank)
        # Charge interference to every *other* thread waiting on this bank
        # (the controller maintains per-bank thread counts, so no scan).
        issuer = request.thread_id
        t_interference = self._t_interference
        busy_count = self._busy_bank_count
        dirty = self._sd_dirty
        charged = False
        for tid in self.controller.buffered_read_threads(key):
            if tid == issuer:
                continue
            count = busy_count[tid]
            t_interference[tid] += duration / (count if count > 1 else 1)
            dirty[tid] = True
            charged = True
        if charged:
            self._sd_any_dirty = True

    def on_complete(self, request: MemoryRequest, now: int) -> None:
        if not request.is_read:
            return
        tid = request.thread_id
        out = self._outstanding[tid]
        if out > 0:
            self._t_shared[tid] += now - self._last_change[tid]
        self._last_change[tid] = now
        self._outstanding[tid] = out - 1
        bank_counts = self._banks_busy[tid]
        key: BankKey = (request.channel, request.bank)
        after = bank_counts[key] - 1
        bank_counts[key] = after
        if after == 0:
            self._busy_bank_count[tid] -= 1
        if now - self._last_decay >= self.interval_length:
            self._decay(now)
        self._sd_dirty[tid] = True
        self._sd_any_dirty = True

    # -- slowdown estimation -----------------------------------------------------
    def slowdown(self, thread_id: int, now: int | None = None) -> float:
        """Current estimated memory slowdown of ``thread_id``."""
        shared = self._t_shared[thread_id]
        if now is not None and self._outstanding[thread_id] > 0:
            shared += now - self._last_change[thread_id]
        interference = min(self._t_interference[thread_id], shared * 0.999)
        alone = max(shared - interference, 1e-9)
        if shared <= 0:
            return 1.0
        slow = shared / alone
        weight = self.weights.get(thread_id, 1.0)
        return 1.0 + (slow - 1.0) * weight

    # -- arbitration -----------------------------------------------------------
    def _slowdowns(self, now: int) -> dict[int, float]:
        """All active threads' slowdowns, incrementally maintained.

        The returned mapping holds exactly the threads with
        ``T_shared > 0`` or outstanding reads.  An entry is refreshed only
        when its thread was marked dirty by a counter change, or when the
        thread has outstanding reads (its ``T_shared`` integrates ``now``,
        so the estimate is time-dependent).  Clean idle threads keep the
        cached value — it is the result of the identical expression on
        identical inputs, so skipping the recompute is bit-exact.
        """
        cache = self._slowdown_cache
        if self._slowdown_cache_time == now and not self._sd_any_dirty:
            return cache
        t_shared = self._t_shared
        t_interference = self._t_interference
        last_change = self._last_change
        weight_by_tid = self._weight_by_tid
        outstanding = self._outstanding
        dirty = self._sd_dirty
        sd_time = self._sd_time
        for tid in range(self.num_threads):
            out = outstanding[tid]
            shared = t_shared[tid]
            if shared > 0 or out > 0:
                if dirty[tid] or (out > 0 and sd_time[tid] != now):
                    # ``slowdown(tid, now)`` inlined: identical expressions
                    # in identical order, minus the call and dict lookups
                    # (this runs for every dirty/outstanding thread on
                    # every arbitration cycle).
                    if out > 0:
                        shared += now - last_change[tid]
                    if shared <= 0:
                        cache[tid] = 1.0
                    else:
                        interference = t_interference[tid]
                        limit = shared * 0.999
                        if interference > limit:
                            interference = limit
                        alone = shared - interference
                        if alone < 1e-9:
                            alone = 1e-9
                        cache[tid] = (
                            1.0 + (shared / alone - 1.0) * weight_by_tid[tid]
                        )
                    dirty[tid] = False
                    sd_time[tid] = now
            elif dirty[tid]:
                # Left the active set (e.g. enqueue and completion in the
                # same cycle never accrued shared stall time).
                cache.pop(tid, None)
                dirty[tid] = False
        self._slowdown_cache_time = now
        self._sd_any_dirty = False
        return cache

    def refresh_index(self, now: int) -> None:
        # Slowdown estimates drift with every enqueue/completion, but they
        # only invalidate buffered keys when the *decision* they imply —
        # fair mode on/off, and which thread is slowest — changes.  Derive
        # that decision exactly as ``select`` does and bump the epoch on a
        # flip, so heaps rebuild per flip rather than per estimate update.
        # When the slowdown table is untouched since the last derivation in
        # this same cycle (several banks arbitrating back to back), the
        # decision cannot have changed either — skip the scan.
        if self._mode_time == now and not self._sd_any_dirty:
            return
        slowdowns = self._slowdowns(now)
        self._mode_time = now
        # max/min/argmax fused into one pass; the argmax tie-break prefers
        # the lower thread id, matching ``max(key=lambda t: (s[t], -t))``.
        fair = False
        slowest = -1
        if slowdowns:
            worst = best = None
            worst_tid = -1
            for tid, estimate in slowdowns.items():
                if worst is None:
                    worst = best = estimate
                    worst_tid = tid
                else:
                    if estimate > worst or (
                        estimate == worst and tid < worst_tid
                    ):
                        worst = estimate
                        worst_tid = tid
                    if estimate < best:
                        best = estimate
            if best > 0 and worst / best > self.alpha:
                fair = True
                slowest = worst_tid
        mode = (fair, slowest)
        if mode != self._index_mode:
            self._index_mode = mode
            self.index_prefix_len = 1 if fair else 0
            self.pack_prefix_shift = 40 if fair else None
            self.bump_index_epoch(now)

    def index_key(self, request: MemoryRequest) -> tuple:
        fair, slowest = self._index_mode
        if fair:
            return (
                request.thread_id != slowest,
                request.arrival_time,
                request.request_id,
            )
        return (request.arrival_time, request.request_id)

    def pack_key(self, request: MemoryRequest) -> int:
        # Fair mode: one boost bit (0 = the slowest thread) above the age;
        # throughput mode: pure age (the prefix is empty, matching
        # ``pack_prefix_shift`` None).
        fair, slowest = self._index_mode
        if fair:
            return (request.thread_id != slowest) << 40 | request.request_id
        return request.request_id

    def select(
        self, candidates: Sequence[MemoryRequest], bank: BankKey, now: int
    ) -> MemoryRequest:
        slowdowns = self._slowdowns(now)
        open_row = self.controller.channels[bank[0]].banks[bank[1]].open_row
        if slowdowns:
            worst = max(slowdowns.values())
            best = min(slowdowns.values())
            if best > 0 and worst / best > self.alpha:
                slowest = max(slowdowns, key=lambda t: (slowdowns[t], -t))
                return min(
                    candidates,
                    key=lambda r: (
                        r.thread_id != slowest,
                        r.row != open_row,
                        r.arrival_time,
                        r.request_id,
                    ),
                )
        # Fair enough: maximize throughput with FR-FCFS.
        return min(
            candidates,
            key=lambda r: (r.row != open_row, r.arrival_time, r.request_id),
        )
