"""STFM: stall-time fair memory scheduling [Mutlu & Moscibroda, MICRO-40].

Reimplementation of the scheduler the PAR-BS paper identifies as the best
previous technique.  STFM aims to equalize the memory-related slowdown of
all threads:

* for each thread the controller tracks ``T_shared`` — the memory stall
  time the thread experiences in the shared system (approximated here by
  the time the thread has at least one outstanding read) — and estimates
  ``T_interference`` — the extra stall caused by other threads;
* the estimated slowdown is ``S = T_shared / (T_shared - T_interference)``;
* if the ratio of the maximum to minimum slowdown exceeds ``alpha``, the
  scheduler switches from FR-FCFS to a fairness-oriented policy that
  prioritizes the most-slowed-down thread's requests.

Interference accounting follows the published description: when a request
occupies a bank, every other thread with requests waiting on that bank
accrues the service duration divided by its current bank-level parallelism
(a thread whose requests proceed in parallel in other banks loses less).
As the PAR-BS paper notes, these estimates are heuristic and can
under-estimate the slowdown of threads with high inherent bank-level
parallelism — a behaviour this reimplementation shares by construction.

Thread weights (for the priority experiments) scale the *perceived*
slowdown: ``S_eff = 1 + (S - 1) * weight``, so heavier threads look more
slowed-down and are prioritized earlier.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from ..dram.request import MemoryRequest
from .base import BankKey, Scheduler

__all__ = ["StfmScheduler"]


class StfmScheduler(Scheduler):
    """Stall-time fair arbitration."""

    name = "STFM"

    def __init__(
        self,
        num_threads: int,
        alpha: float = 1.10,
        interval_length: int = 2**22,
        weights: dict[int, float] | None = None,
    ) -> None:
        super().__init__()
        if alpha < 1.0:
            raise ValueError("alpha must be >= 1")
        self.num_threads = num_threads
        self.alpha = alpha
        self.interval_length = interval_length
        self.weights = dict(weights or {})

        self._t_shared: dict[int, float] = defaultdict(float)
        self._t_interference: dict[int, float] = defaultdict(float)
        # Outstanding read tracking for T_shared integration.
        self._outstanding: dict[int, int] = defaultdict(int)
        self._last_change: dict[int, int] = defaultdict(int)
        # Banks with waiting-or-in-service reads per thread (for the bank
        # parallelism divisor in interference accounting).
        self._banks_busy: dict[int, dict[BankKey, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._last_decay = 0
        # Slowdown table memoized per cycle: ``select`` runs once per bank
        # wake and recomputing every thread's slowdown each time is the
        # policy's main arbitration cost.  Any state change invalidates it.
        self._slowdown_cache: dict[int, float] | None = None
        self._slowdown_cache_time = -1
        # Epoch-scoped arbitration mode for the incremental index:
        # (fairness mode active, thread being boosted).  Buffered index
        # keys are built against this snapshot; ``refresh_index`` bumps the
        # epoch only when a decision actually observes a different mode.
        self._index_mode: tuple[bool, int] = (False, -1)

    # -- bookkeeping -----------------------------------------------------------
    def _advance(self, thread_id: int, now: int) -> None:
        if self._outstanding[thread_id] > 0:
            self._t_shared[thread_id] += now - self._last_change[thread_id]
        self._last_change[thread_id] = now

    def _decay(self, now: int) -> None:
        if now - self._last_decay < self.interval_length:
            return
        for table in (self._t_shared, self._t_interference):
            for key in table:
                table[key] *= 0.5
        self._last_decay = now

    def _bank_parallelism(self, thread_id: int) -> int:
        return max(1, sum(1 for c in self._banks_busy[thread_id].values() if c > 0))

    def on_enqueue(self, request: MemoryRequest, now: int) -> None:
        if not request.is_read:
            return
        tid = request.thread_id
        self._advance(tid, now)
        self._outstanding[tid] += 1
        self._banks_busy[tid][(request.channel, request.bank)] += 1
        self._decay(now)
        self._slowdown_cache = None

    def on_issue(self, request: MemoryRequest, now: int) -> None:
        if not request.is_read:
            return
        outcome = request.service_outcome
        duration = outcome.bank_free - outcome.start if outcome is not None else 0
        key: BankKey = (request.channel, request.bank)
        # Charge interference to every *other* thread waiting on this bank
        # (the controller maintains per-bank thread counts, so no scan).
        victims = [
            tid
            for tid in self.controller.buffered_read_threads(key)
            if tid != request.thread_id
        ]
        for tid in victims:
            self._t_interference[tid] += duration / self._bank_parallelism(tid)
        if victims:
            self._slowdown_cache = None

    def on_complete(self, request: MemoryRequest, now: int) -> None:
        if not request.is_read:
            return
        tid = request.thread_id
        self._advance(tid, now)
        self._outstanding[tid] -= 1
        bank_counts = self._banks_busy[tid]
        key: BankKey = (request.channel, request.bank)
        bank_counts[key] -= 1
        self._decay(now)
        self._slowdown_cache = None

    # -- slowdown estimation -----------------------------------------------------
    def slowdown(self, thread_id: int, now: int | None = None) -> float:
        """Current estimated memory slowdown of ``thread_id``."""
        shared = self._t_shared[thread_id]
        if now is not None and self._outstanding[thread_id] > 0:
            shared += now - self._last_change[thread_id]
        interference = min(self._t_interference[thread_id], shared * 0.999)
        alone = max(shared - interference, 1e-9)
        if shared <= 0:
            return 1.0
        slow = shared / alone
        weight = self.weights.get(thread_id, 1.0)
        return 1.0 + (slow - 1.0) * weight

    # -- arbitration -----------------------------------------------------------
    def _slowdowns(self, now: int) -> dict[int, float]:
        """All active threads' slowdowns, memoized for the current cycle."""
        if self._slowdown_cache is not None and self._slowdown_cache_time == now:
            return self._slowdown_cache
        slowdowns = {
            tid: self.slowdown(tid, now)
            for tid in range(self.num_threads)
            if self._t_shared[tid] > 0 or self._outstanding[tid] > 0
        }
        self._slowdown_cache = slowdowns
        self._slowdown_cache_time = now
        return slowdowns

    def refresh_index(self, now: int) -> None:
        # Slowdown estimates drift with every enqueue/completion, but they
        # only invalidate buffered keys when the *decision* they imply —
        # fair mode on/off, and which thread is slowest — changes.  Derive
        # that decision exactly as ``select`` does and bump the epoch on a
        # flip, so heaps rebuild per flip rather than per estimate update.
        slowdowns = self._slowdowns(now)
        fair = False
        slowest = -1
        if slowdowns:
            worst = max(slowdowns.values())
            best = min(slowdowns.values())
            if best > 0 and worst / best > self.alpha:
                fair = True
                slowest = max(slowdowns, key=lambda t: (slowdowns[t], -t))
        mode = (fair, slowest)
        if mode != self._index_mode:
            self._index_mode = mode
            self.index_prefix_len = 1 if fair else 0
            self.bump_index_epoch(now)

    def index_key(self, request: MemoryRequest) -> tuple:
        fair, slowest = self._index_mode
        if fair:
            return (
                request.thread_id != slowest,
                request.arrival_time,
                request.request_id,
            )
        return (request.arrival_time, request.request_id)

    def select(
        self, candidates: Sequence[MemoryRequest], bank: BankKey, now: int
    ) -> MemoryRequest:
        slowdowns = self._slowdowns(now)
        open_row = self.controller.channels[bank[0]].banks[bank[1]].open_row
        if slowdowns:
            worst = max(slowdowns.values())
            best = min(slowdowns.values())
            if best > 0 and worst / best > self.alpha:
                slowest = max(slowdowns, key=lambda t: (slowdowns[t], -t))
                return min(
                    candidates,
                    key=lambda r: (
                        r.thread_id != slowest,
                        r.row != open_row,
                        r.arrival_time,
                        r.request_id,
                    ),
                )
        # Fair enough: maximize throughput with FR-FCFS.
        return min(
            candidates,
            key=lambda r: (r.row != open_row, r.arrival_time, r.request_id),
        )
