"""Scheduler plug-in interface for the memory controller.

A scheduler's job is request arbitration: whenever a bank is free and has
pending read requests, the controller asks the scheduler to pick one.  The
controller also feeds the scheduler lifecycle hooks (enqueue, issue,
completion) so policies can maintain state such as batches, virtual finish
times, or slowdown estimates.

All policies in the paper are expressible as a priority over the per-bank
candidate list plus bookkeeping in the hooks, mirroring the
priority-register hardware implementation sketched in Section 6 of the
paper.  Each policy therefore has two equivalent arbitration paths:

* :meth:`Scheduler.select` — the reference scan, ``min()`` over the
  candidate list with the policy's full key;
* :meth:`Scheduler.select_indexed` — the same decision answered from the
  controller's incremental :class:`~repro.dram.rqindex.BankReadIndex`
  (row buckets + epoch-cached priority heaps) without scanning.

The index protocol a policy opts into by defining :meth:`index_key`:

``index_key(request)``
    The policy's priority key with the row-hit component *removed* (it is
    resolved via the row buckets instead).  Must be immutable while
    ``index_epoch`` stands still; bump the epoch whenever global priority
    state invalidates buffered keys.
``index_prefix_len``
    How many leading key components outrank row-hit status in the
    policy's scan key.  E.g. PAR-BS scans with ``(marked, priority,
    row_hit, rank, age)`` → the index key is ``(marked, priority, rank,
    age)`` with prefix length 2.
``index_uses_row``
    False for row-blind policies (FCFS) so the open row is never even
    resolved.
``refresh_index(now)``
    Called before each indexed decision; a policy whose priority state
    drifts continuously (STFM) re-derives it here and bumps the epoch
    only when the drift actually changes buffered keys.

The fast backend's packed-key kernel (:mod:`repro.dram.fastsched`) adds
an optional second encoding of the same order:

``pack_key(request)``
    ``index_key`` packed into one integer — policy fields stacked above
    the request id in the low :data:`~repro.dram.fastsched.AGE_BITS`
    bits (ids are allocated at construction and requests enqueue
    immediately, so the raw id orders identically to ``(arrival_time,
    request_id)``).  Must sort identically to ``index_key`` and obey the
    same epoch protocol.  Policies without it still run on the fast
    backend using their tuple keys.
``pack_prefix_shift``
    ``index_prefix_len`` in shift form: right-shifting two packed keys
    by this many bits compares exactly the prefix components.  ``None``
    means an empty prefix (nothing outranks a row hit) — policies whose
    prefix length changes at runtime (STFM) must flip both attributes
    together.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Sequence

from ..dram.request import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..dram.controller import MemoryController
    from ..dram.rqindex import BankReadIndex

__all__ = ["Scheduler", "BankKey"]

# (channel_id, bank_id)
BankKey = tuple[int, int]


class Scheduler(ABC):
    """Base class for DRAM request arbitration policies."""

    name: str = "base"

    # -- incremental-index protocol (see module docstring) -------------------
    # Policies that support index-based arbitration override ``index_key``;
    # the controller falls back to scan arbitration when it is None, so
    # custom scan-only schedulers keep working unchanged.
    index_key: Callable[[MemoryRequest], tuple] | None = None
    index_prefix_len: int = 0
    index_uses_row: bool = True

    # Packed-integer twin of ``index_key`` for the fast backend's
    # flat-array kernel (see module docstring); optional — ``None`` falls
    # back to the tuple keys inside :class:`~repro.dram.fastsched.
    # FastBankSched`.  ``pack_prefix_shift`` is ``index_prefix_len``
    # expressed as a right-shift bit count (``None`` = empty prefix).
    pack_key: Callable[[MemoryRequest], int] | None = None
    pack_prefix_shift: int | None = None

    # Set True by policies whose hooks read ``request.service_outcome``
    # (e.g. STFM's row-hit-aware alone-time model).  The fast backend
    # otherwise skips materializing the ``AccessOutcome`` object when no
    # guard, tracer or command log will read it either.
    uses_service_outcome: bool = False

    def __init__(self) -> None:
        self.controller: "MemoryController | None" = None
        # Bumped whenever buffered requests' priority keys go stale; the
        # index rebuilds a bank's heaps lazily when it observes a new epoch.
        self.index_epoch = 0
        # ``sched``-category trace probe, bound in :meth:`attach`; None
        # whenever tracing is off, so instrumented paths stay free.
        self._p_sched = None
        # Runtime invariant checker (probe-or-None); bound in :meth:`attach`.
        self._guard = None

    # -- lifecycle hooks ---------------------------------------------------
    def attach(self, controller: "MemoryController") -> None:
        """Called once when the controller is built."""
        self.controller = controller
        tracer = getattr(controller, "tracer", None)
        self._p_sched = tracer.probe("sched") if tracer is not None else None
        self._guard = getattr(controller, "guard", None)

    def bump_index_epoch(self, now: int) -> None:
        """Invalidate every bank's cached priority heaps (and trace it)."""
        self.index_epoch += 1
        probe = self._p_sched
        if probe is not None:
            probe.emit(now, "sched.epoch", epoch=self.index_epoch)

    def on_enqueue(self, request: MemoryRequest, now: int) -> None:
        """A new request entered the request buffer."""

    def on_issue(self, request: MemoryRequest, now: int) -> None:
        """``request`` was issued to its bank."""

    def on_complete(self, request: MemoryRequest, now: int) -> None:
        """``request`` finished its data transfer."""

    # -- arbitration ---------------------------------------------------------
    @abstractmethod
    def select(
        self, candidates: Sequence[MemoryRequest], bank: BankKey, now: int
    ) -> MemoryRequest:
        """Pick the next request to service from ``candidates`` (non-empty,
        all targeting ``bank``)."""

    def refresh_index(self, now: int) -> None:
        """Re-derive epoch-scoped priority state before an indexed decision
        (no-op for policies whose keys only change at explicit events)."""

    def select_indexed(
        self, index: "BankReadIndex", bank: BankKey, now: int,
        open_row: int | None,
    ) -> MemoryRequest:
        """Answer :meth:`select` from the bank's index without scanning.

        ``open_row`` is the bank's currently latched row (the controller
        already has the bank object in hand at every arbitration, so it is
        passed in rather than re-resolved here).

        The policy's scan key factors as ``(prefix, row_hit, rest)`` with
        ``len(prefix) == index_prefix_len`` and ``index_key == prefix +
        rest``.  Because a lexicographic minimum also minimizes every key
        prefix, the scan winner is:

        * the best open-row request, if its prefix ties the bank-wide
          best (row hits win the ``row_hit`` component on equal prefixes);
        * the bank-wide best otherwise (which is then provably a miss —
          were it a hit, the best hit's prefix would tie it).
        """
        self.refresh_index(now)
        if index.heap_epoch != self.index_epoch:
            index.ensure(self)
            probe = self._p_sched
            if probe is not None:
                probe.emit(
                    now,
                    "sched.rqindex_rebuild",
                    ch=bank[0],
                    bank=bank[1],
                    epoch=self.index_epoch,
                    size=index.size,
                )
        best = index.peek()
        if open_row is None or not self.index_uses_row:
            return best[1]
        hit = index.peek_row(open_row)
        if hit is None:
            return best[1]
        prefix = self.index_prefix_len
        if prefix == 0 or hit[0][:prefix] == best[0][:prefix]:
            return hit[1]
        return best[1]

    # -- helpers shared by concrete policies ---------------------------------
    def _row_hit(self, request: MemoryRequest) -> bool:
        """Whether ``request`` would hit in its bank's row buffer right now."""
        assert self.controller is not None
        bank = self.controller.channels[request.channel].banks[request.bank]
        return bank.row_state(request.row) == "hit"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} ({self.name})>"
