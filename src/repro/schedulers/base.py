"""Scheduler plug-in interface for the memory controller.

A scheduler's job is request arbitration: whenever a bank is free and has
pending read requests, the controller asks the scheduler to pick one.  The
controller also feeds the scheduler lifecycle hooks (enqueue, issue,
completion) so policies can maintain state such as batches, virtual finish
times, or slowdown estimates.

All policies in the paper are expressible as a priority over the per-bank
candidate list plus bookkeeping in the hooks, mirroring the
priority-register hardware implementation sketched in Section 6 of the
paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from ..dram.request import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..dram.controller import MemoryController

__all__ = ["Scheduler", "BankKey"]

# (channel_id, bank_id)
BankKey = tuple[int, int]


class Scheduler(ABC):
    """Base class for DRAM request arbitration policies."""

    name: str = "base"

    def __init__(self) -> None:
        self.controller: "MemoryController | None" = None

    # -- lifecycle hooks ---------------------------------------------------
    def attach(self, controller: "MemoryController") -> None:
        """Called once when the controller is built."""
        self.controller = controller

    def on_enqueue(self, request: MemoryRequest, now: int) -> None:
        """A new request entered the request buffer."""

    def on_issue(self, request: MemoryRequest, now: int) -> None:
        """``request`` was issued to its bank."""

    def on_complete(self, request: MemoryRequest, now: int) -> None:
        """``request`` finished its data transfer."""

    # -- arbitration ---------------------------------------------------------
    @abstractmethod
    def select(
        self, candidates: Sequence[MemoryRequest], bank: BankKey, now: int
    ) -> MemoryRequest:
        """Pick the next request to service from ``candidates`` (non-empty,
        all targeting ``bank``)."""

    # -- helpers shared by concrete policies ---------------------------------
    def _row_hit(self, request: MemoryRequest) -> bool:
        """Whether ``request`` would hit in its bank's row buffer right now."""
        assert self.controller is not None
        bank = self.controller.channels[request.channel].banks[request.bank]
        return bank.row_state(request.row) == "hit"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} ({self.name})>"
