"""Abstract within-batch scheduling model (paper Figures 1-3).

The paper motivates PAR-BS with a simplified model that abstracts away DRAM
bus contention and detailed timing: requests in a batch are all present at
time zero, each bank services one request at a time, a row-conflict access
costs 1 latency unit and a row-hit access (same row as the immediately
preceding access in that bank) costs 0.5 units.  The first access to each
bank is a row-conflict.

A thread's *batch-completion time* is when its last request finishes; it is
a proxy for the thread's memory-related stall time within the batch.  This
module reproduces the Figure 3 comparison of FCFS, FR-FCFS and PAR-BS
(Max-Total ranking) inside one batch, and is also used by the test suite to
validate the ranking logic in isolation from the full simulator.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Literal

from .ranking import batch_loads

__all__ = ["AbstractRequest", "AbstractBatch", "ScheduleResult"]

Policy = Literal["fcfs", "fr-fcfs", "par-bs"]

CONFLICT_COST = Fraction(1)
HIT_COST = Fraction(1, 2)


@dataclass(frozen=True)
class AbstractRequest:
    """One request in the abstract batch: (thread, bank, row)."""

    thread: int
    bank: int
    row: int
    order: int = 0  # arrival order within the batch


@dataclass
class ScheduleResult:
    """Outcome of scheduling one batch under a policy."""

    completion: dict[int, Fraction]  # per-thread batch-completion time
    bank_order: dict[int, list[AbstractRequest]]  # service order per bank

    @property
    def average_completion(self) -> Fraction:
        if not self.completion:
            return Fraction(0)
        return sum(self.completion.values()) / len(self.completion)

    def as_floats(self) -> dict[int, float]:
        return {t: float(v) for t, v in self.completion.items()}


class AbstractBatch:
    """A batch of requests scheduled under the Figure 3 model."""

    def __init__(self, requests: list[AbstractRequest]) -> None:
        self.requests = [
            AbstractRequest(r.thread, r.bank, r.row, order=i)
            for i, r in enumerate(requests)
        ]

    @classmethod
    def from_bank_columns(cls, columns: dict[int, list[tuple[int, int]]]) -> "AbstractBatch":
        """Build a batch from per-bank request columns.

        ``columns`` maps a bank id to a list of ``(thread, row)`` pairs,
        oldest first (the bottom-most request in the paper's figure).
        Arrival order interleaves the columns round-robin, oldest first.
        """
        requests: list[AbstractRequest] = []
        depth = max((len(col) for col in columns.values()), default=0)
        order = 0
        for level in range(depth):
            for bank in sorted(columns):
                col = columns[bank]
                if level < len(col):
                    thread, row = col[level]
                    requests.append(AbstractRequest(thread, bank, row, order=order))
                    order += 1
        return cls(requests)

    # -- scheduling -------------------------------------------------------------
    def schedule(self, policy: Policy, ranks: dict[int, int] | None = None) -> ScheduleResult:
        """Schedule the batch under ``policy``.

        For ``"par-bs"`` the thread ranking defaults to Max-Total computed
        over the batch (ties broken by thread id for determinism).
        """
        key = self._policy_key(policy, ranks)
        per_bank: dict[int, list[AbstractRequest]] = defaultdict(list)
        for request in self.requests:
            per_bank[request.bank].append(request)

        completion: dict[int, Fraction] = defaultdict(Fraction)
        bank_order: dict[int, list[AbstractRequest]] = {}
        for bank, queue in per_bank.items():
            remaining = list(queue)
            time = Fraction(0)
            open_row: int | None = None
            order: list[AbstractRequest] = []
            while remaining:
                request = min(remaining, key=lambda r: key(r, open_row))
                remaining.remove(request)
                cost = HIT_COST if request.row == open_row else CONFLICT_COST
                time += cost
                open_row = request.row
                order.append(request)
                completion[request.thread] = max(completion[request.thread], time)
            bank_order[bank] = order
        return ScheduleResult(completion=dict(completion), bank_order=bank_order)

    def max_total_ranks(self) -> dict[int, int]:
        """Deterministic Max-Total ranking over the batch (Rule 3)."""
        adapters = [_RankAdapter(r.thread, r.bank) for r in self.requests]
        max_load, total = batch_loads(adapters)  # type: ignore[arg-type]
        threads = sorted({r.thread for r in self.requests})
        ordered = sorted(threads, key=lambda t: (max_load[t], total[t], t))
        return {t: i for i, t in enumerate(ordered)}

    def _policy_key(
        self, policy: Policy, ranks: dict[int, int] | None
    ) -> Callable[[AbstractRequest, int | None], tuple]:
        if policy == "fcfs":
            return lambda r, open_row: (r.order,)
        if policy == "fr-fcfs":
            return lambda r, open_row: (r.row != open_row, r.order)
        if policy == "par-bs":
            rank_map = ranks if ranks is not None else self.max_total_ranks()
            return lambda r, open_row: (r.row != open_row, rank_map[r.thread], r.order)
        raise ValueError(f"unknown policy {policy!r}")


class _RankAdapter:
    """Duck-typed stand-in for MemoryRequest in batch_loads()."""

    __slots__ = ("thread_id", "channel", "bank")

    def __init__(self, thread_id: int, bank: int) -> None:
        self.thread_id = thread_id
        self.channel = 0
        self.bank = bank
