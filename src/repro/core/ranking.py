"""Within-batch thread ranking schemes (paper Section 4.2 and 8.3.3).

When a new batch is formed, PAR-BS computes a ranking over all threads with
marked requests.  The ranking stays fixed while the batch is processed and
is applied identically across all banks, which is what preserves each
thread's bank-level parallelism.

``MaxTotalRanking`` is the paper's scheme (Rule 3): shortest-job-first by
maximum per-bank marked-request count (*max-bank-load*), tie-broken by the
total number of marked requests (*total-load*), remaining ties broken
randomly.  The alternatives (Total-Max, random, round-robin) are the
ablations of Section 8.3.3.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import defaultdict
from typing import Iterable, Mapping  # noqa: F401 (Iterable used in signatures)

from ..dram.request import MemoryRequest

__all__ = [
    "ThreadRanking",
    "MaxTotalRanking",
    "TotalMaxRanking",
    "RandomRanking",
    "RoundRobinRanking",
    "make_ranking",
    "batch_loads",
]

UNRANKED = 1 << 30


def batch_loads(
    marked: Iterable[MemoryRequest],
) -> tuple[dict[int, int], dict[int, int]]:
    """Compute (max-bank-load, total-load) per thread over ``marked``.

    Returns two dicts keyed by thread id: the maximum number of marked
    requests any single bank holds for the thread, and the thread's total
    marked-request count.
    """
    per_bank: dict[tuple[int, int, int], int] = defaultdict(int)
    total: dict[int, int] = defaultdict(int)
    for request in marked:
        per_bank[(request.thread_id, request.channel, request.bank)] += 1
        total[request.thread_id] += 1
    max_load: dict[int, int] = defaultdict(int)
    for (thread_id, _ch, _b), count in per_bank.items():
        max_load[thread_id] = max(max_load[thread_id], count)
    return dict(max_load), dict(total)


class ThreadRanking(ABC):
    """Strategy interface: rank threads for one batch.

    ``rank`` returns a mapping from thread id to rank position, where 0 is
    the highest rank (serviced first).  Per the paper's hardware sketch
    (Section 6), the ranking registers (``ReqsInBankPerThread``,
    ``ReqsPerThread``) count *all* buffered requests, so the ranking is
    computed over every thread's current backlog — a thread with no
    outstanding requests has zero load and therefore ranks highest (its
    next request is the "shortest job").
    """

    name: str = "base"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._batch_index = 0

    def rank(
        self,
        requests: list[MemoryRequest],
        threads: Iterable[int] | None = None,
    ) -> dict[int, int]:
        """Rank ``threads`` (default: those present in ``requests``) using
        the per-bank loads implied by ``requests``."""
        self._batch_index += 1
        universe = (
            sorted(threads)
            if threads is not None
            else sorted({r.thread_id for r in requests})
        )
        return self._rank(requests, universe)

    @abstractmethod
    def _rank(
        self, requests: list[MemoryRequest], threads: list[int]
    ) -> dict[int, int]: ...


class MaxTotalRanking(ThreadRanking):
    """The paper's Max-Total rule: lower max-bank-load ranks higher, then
    lower total-load, then random."""

    name = "max-total"

    def _rank(self, requests: list[MemoryRequest], threads: list[int]) -> dict[int, int]:
        max_load, total = batch_loads(requests)
        jitter = {t: self._rng.random() for t in threads}
        ordered = sorted(
            threads, key=lambda t: (max_load.get(t, 0), total.get(t, 0), jitter[t])
        )
        return {t: i for i, t in enumerate(ordered)}


class TotalMaxRanking(ThreadRanking):
    """Total rule first, Max rule as tie-breaker (Section 4.4)."""

    name = "total-max"

    def _rank(self, requests: list[MemoryRequest], threads: list[int]) -> dict[int, int]:
        max_load, total = batch_loads(requests)
        jitter = {t: self._rng.random() for t in threads}
        ordered = sorted(
            threads, key=lambda t: (total.get(t, 0), max_load.get(t, 0), jitter[t])
        )
        return {t: i for i, t in enumerate(ordered)}


class RandomRanking(ThreadRanking):
    """Random rank per batch (ablation: no shortest-job-first)."""

    name = "random"

    def _rank(self, requests: list[MemoryRequest], threads: list[int]) -> dict[int, int]:
        order = list(threads)
        self._rng.shuffle(order)
        return {t: i for i, t in enumerate(order)}


class RoundRobinRanking(ThreadRanking):
    """Rotate thread ranks across consecutive batches (ablation)."""

    name = "round-robin"

    def _rank(self, requests: list[MemoryRequest], threads: list[int]) -> dict[int, int]:
        if not threads:
            return {}
        shift = self._batch_index % len(threads)
        rotated = threads[shift:] + threads[:shift]
        return {t: i for i, t in enumerate(rotated)}


_SCHEMES: Mapping[str, type[ThreadRanking]] = {
    "max-total": MaxTotalRanking,
    "total-max": TotalMaxRanking,
    "random": RandomRanking,
    "round-robin": RoundRobinRanking,
}


def make_ranking(name: str, seed: int = 0) -> ThreadRanking:
    """Build a ranking scheme by name (see :data:`_SCHEMES` keys)."""
    try:
        cls = _SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown ranking scheme {name!r}; choose from {sorted(_SCHEMES)}"
        ) from None
    return cls(seed=seed)
