"""Hardware cost model for PAR-BS (paper Section 6, Table 1).

PAR-BS extends an FR-FCFS controller's per-request priority with a marked
bit and a thread rank; the ranking is computed from per-thread and
per-thread-per-bank request counters.  Table 1 itemizes the additional
state; for the paper's example configuration (8 cores, 128-entry request
buffer, 8 banks) it totals 1412 bits, which :func:`hardware_cost`
reproduces exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["HardwareCost", "hardware_cost", "MARKING_CAP_BITS"]

# The Marking-Cap register is 5 bits in Table 1 (caps up to 31).
MARKING_CAP_BITS = 5


@dataclass(frozen=True)
class HardwareCost:
    """Bit counts of the additional state PAR-BS needs beyond FR-FCFS."""

    per_request_bits: int  # marked bit + thread-rank + thread-id, x buffer entries
    per_thread_per_bank_bits: int  # ReqsInBankPerThread counters
    per_thread_bits: int  # ReqsPerThread counters
    individual_bits: int  # TotalMarkedRequests + Marking-Cap

    @property
    def total_bits(self) -> int:
        return (
            self.per_request_bits
            + self.per_thread_per_bank_bits
            + self.per_thread_bits
            + self.individual_bits
        )

    def breakdown(self) -> str:
        return (
            f"per-request: {self.per_request_bits} bits\n"
            f"per-thread-per-bank counters: {self.per_thread_per_bank_bits} bits\n"
            f"per-thread counters: {self.per_thread_bits} bits\n"
            f"individual registers: {self.individual_bits} bits\n"
            f"total: {self.total_bits} bits"
        )


def hardware_cost(
    num_threads: int = 8,
    request_buffer_size: int = 128,
    num_banks: int = 8,
) -> HardwareCost:
    """Additional state (in bits) to implement PAR-BS over FR-FCFS.

    Follows Table 1: each request buffer entry stores a marked bit, a
    thread rank (``log2 NumThreads`` bits, the only new field in the
    priority value of Figure 4) and a thread id; ranking needs a
    per-thread-per-bank and a per-thread request counter (each
    ``log2 RequestBufferSize`` bits); plus a marked-request count and the
    Marking-Cap register.

    >>> hardware_cost(8, 128, 8).total_bits
    1412
    """
    if num_threads < 2 or request_buffer_size < 2 or num_banks < 1:
        raise ValueError("need >= 2 threads, >= 2 buffer entries, >= 1 bank")
    thread_bits = math.ceil(math.log2(num_threads))
    count_bits = math.ceil(math.log2(request_buffer_size))

    per_request = request_buffer_size * (1 + thread_bits + thread_bits)
    per_thread_per_bank = num_threads * num_banks * count_bits
    per_thread = num_threads * count_bits
    individual = count_bits + MARKING_CAP_BITS
    return HardwareCost(
        per_request_bits=per_request,
        per_thread_per_bank_bits=per_thread_per_bank,
        per_thread_bits=per_thread,
        individual_bits=individual,
    )
