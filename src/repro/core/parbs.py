"""PAR-BS: the Parallelism-Aware Batch Scheduler (the paper's contribution).

Combines a :mod:`batching <repro.core.batcher>` engine with
:mod:`within-batch ranking <repro.core.ranking>` and applies the request
prioritization rules of Rule 2 (extended with the thread-priority rule of
Section 5):

1. **BS** — marked requests first;
2. **PRIORITY** — higher-priority (lower level) threads first;
3. **RH** — row-hit requests first;
4. **RANK** — higher-ranked threads first (Max-Total by default);
5. **FCFS** — older requests first.

The within-batch component is configurable for the Section 8.3.3
ablations: ``within_batch="par"`` uses a thread ranking (parallelism-aware),
``"frfcfs"`` and ``"fcfs"`` drop the ranking and fall back to the named
policy inside batches, isolating the effect of parallelism-awareness from
batching itself.
"""

from __future__ import annotations

from typing import Sequence

from ..dram.request import MemoryRequest
from ..schedulers.base import BankKey, Scheduler
from .batcher import (
    OPPORTUNISTIC,
    AdaptiveCapBatcher,
    Batcher,
    EslotBatcher,
    FullBatcher,
    StaticBatcher,
)
from .ranking import UNRANKED, ThreadRanking, make_ranking

__all__ = ["ParBsScheduler", "OPPORTUNISTIC"]


class ParBsScheduler(Scheduler):
    """Parallelism-aware batch scheduling.

    Parameters
    ----------
    num_threads:
        Number of hardware threads sharing the controller.
    marking_cap:
        ``Marking-Cap`` — maximum requests marked per thread per bank when a
        batch forms.  ``None`` disables the cap (paper's "no-c").
    batching:
        ``"full"`` (default), ``"static"`` or ``"eslot"`` (Section 4.4),
        ``"adaptive"`` (full batching with a self-tuning cap — the
        future-work extension of Section 8.3.1), or a pre-built
        :class:`~repro.core.batcher.Batcher`.
    batch_duration:
        Interval for static batching, in cycles.
    within_batch:
        ``"par"`` (ranking-based, default), ``"frfcfs"`` or ``"fcfs"``.
    ranking:
        Ranking scheme name for ``within_batch="par"``: ``"max-total"``
        (default), ``"total-max"``, ``"random"`` or ``"round-robin"``.
    priorities:
        Optional thread-priority levels (1 = highest); threads at
        :data:`OPPORTUNISTIC` receive purely opportunistic service.
    seed:
        Seed for random tie-breaking in rankings.
    """

    name = "PAR-BS"

    def __init__(
        self,
        num_threads: int,
        marking_cap: int | None = 5,
        batching: str | Batcher = "full",
        batch_duration: int | None = None,
        within_batch: str = "par",
        ranking: str | ThreadRanking = "max-total",
        priorities: dict[int, int] | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.num_threads = num_threads
        self.priorities = dict(priorities or {})

        if isinstance(batching, Batcher):
            self.batcher = batching
        elif batching == "full":
            self.batcher = FullBatcher(marking_cap=marking_cap, priorities=self.priorities)
        elif batching == "eslot":
            self.batcher = EslotBatcher(marking_cap=marking_cap, priorities=self.priorities)
        elif batching == "adaptive":
            self.batcher = AdaptiveCapBatcher(priorities=self.priorities)
        elif batching == "static":
            if batch_duration is None:
                raise ValueError("static batching requires batch_duration")
            self.batcher = StaticBatcher(
                batch_duration, marking_cap=marking_cap, priorities=self.priorities
            )
        else:
            raise ValueError(f"unknown batching discipline {batching!r}")
        self.batcher.on_new_batch = self._on_new_batch

        if within_batch not in ("par", "frfcfs", "fcfs"):
            raise ValueError(f"unknown within-batch policy {within_batch!r}")
        self.within_batch = within_batch
        # Incremental-index protocol: the scan key is (marked, priority,
        # row_hit, [rank,] age), so marked+priority form the prefix that
        # outranks row hits; the "fcfs" ablation ignores the row buffer
        # entirely.  Keys stay valid between batch boundaries — marks and
        # ranks change only when a batch forms, which bumps the epoch in
        # ``_on_new_batch``.
        self.index_prefix_len = 2
        self.index_uses_row = within_batch != "fcfs"
        self.index_key = (
            self._index_key_ranked if within_batch == "par" else self._index_key_plain
        )
        # Packed twin for the fast backend's flat-array kernel: the same
        # fields as ``index_key`` stacked above the 40 age bits — ranked:
        # (not-marked | priority:21 | rank:31 | id:40), plain: (not-marked
        # | priority:21 | id:40).  Rank values are thread positions or
        # ``UNRANKED`` (2**30), so 31 bits hold them; priority levels top
        # out at ``OPPORTUNISTIC`` (2**20).  The prefix (marked, priority)
        # sits above the shift in both layouts.
        if any(level < 0 or level >= 1 << 21 for level in self.priorities.values()):
            raise ValueError("priority levels must be in [0, 2**21)")
        if within_batch == "par":
            self.pack_key = self._pack_key_ranked
            self.pack_prefix_shift = 31 + 40
        else:
            self.pack_key = self._pack_key_plain
            self.pack_prefix_shift = 40
        if within_batch == "par":
            self.ranking: ThreadRanking | None = (
                ranking if isinstance(ranking, ThreadRanking) else make_ranking(ranking, seed)
            )
            self.name = f"PAR-BS/{self.batcher.name}/{self.ranking.name}"
        else:
            self.ranking = None
            self.name = f"BS/{self.batcher.name}/{within_batch}"
        self._ranks: dict[int, int] = {}
        # Flat per-thread mirrors of the rank and priority tables: both sit
        # on the index-key hot path (every enqueue, plus every buffered
        # request on an index rebuild), where a list index beats a dict
        # ``get`` with a default.  Thread ids are dense by construction.
        self._rank_by_tid: list[int] = [UNRANKED] * num_threads
        self._prio_by_tid: list[int] = [
            self.priorities.get(tid, 1) for tid in range(num_threads)
        ]
        # Completion handling is pure delegation (see ``on_complete`` below,
        # kept for introspection/subclassing); the instance binding skips the
        # wrapper frame on every request completion.  Same for enqueue when
        # no thread priorities are configured: every request already arrives
        # with ``priority_level == 1`` (the constructor default), so the
        # wrapper's store is redundant and ``on_enqueue`` reduces to the
        # batcher notification.
        self.on_complete = self.batcher.request_completed
        if not self.priorities:
            self.on_enqueue = self.batcher.request_arrived

    # -- wiring ----------------------------------------------------------------
    def attach(self, controller) -> None:  # type: ignore[override]
        super().attach(controller)
        self.batcher.attach(controller)
        if isinstance(self.batcher, StaticBatcher):
            self._schedule_static_tick()

    def _schedule_static_tick(self) -> None:
        assert isinstance(self.batcher, StaticBatcher)
        queue = self.controller.queue
        period = self.batcher.batch_duration

        def tick() -> None:
            self.batcher.tick(queue.now)
            queue.schedule_in(period, tick, priority=3)

        queue.schedule_in(period, tick, priority=3)

    def _on_new_batch(self, marked: list[MemoryRequest], now: int = 0) -> None:
        # A batch boundary rewrites marks (and possibly ranks) across the
        # whole buffer: every cached index key is stale.
        self.bump_index_epoch(now)
        if self.ranking is not None:
            # Per the paper's hardware sketch (Section 6), the Max-Total
            # ranking registers count all buffered requests, so the ranking
            # is computed over every thread's full backlog; threads with
            # little or no backlog rank highest (shortest job first).
            backlog = list(self.controller.buffered_reads())
            self._ranks = self.ranking.rank(backlog, threads=range(self.num_threads))
            ranks = self._ranks
            rank_by_tid = self._rank_by_tid
            for tid in range(self.num_threads):
                rank_by_tid[tid] = ranks.get(tid, UNRANKED)
            guard = self._guard
            if guard is not None:
                guard.on_ranks(self._ranks, marked, now)
        probe = self.batcher._p_batch
        if probe is not None and marked:
            per_thread: dict[int, int] = {}
            for request in marked:
                tid = request.thread_id
                per_thread[tid] = per_thread.get(tid, 0) + 1
            controller = self.controller
            probe.emit(
                now,
                "batch.formed",
                index=self.batcher.batch_index,
                marked=len(marked),
                per_thread=dict(sorted(per_thread.items())),
                ranks=dict(sorted(self._ranks.items())),
                backlog={
                    tid: controller.pending_reads(tid)
                    for tid in sorted(per_thread)
                },
            )

    # -- lifecycle hooks ---------------------------------------------------------
    def on_enqueue(self, request: MemoryRequest, now: int) -> None:
        request.priority_level = self._prio_by_tid[request.thread_id]
        self.batcher.request_arrived(request, now)

    def on_complete(self, request: MemoryRequest, now: int) -> None:
        self.batcher.request_completed(request, now)

    # -- arbitration ----------------------------------------------------------------
    def rank_of(self, thread_id: int) -> int:
        return self._ranks.get(thread_id, UNRANKED)

    def _index_key_ranked(self, request: MemoryRequest) -> tuple:
        return (
            not request.marked,
            request.priority_level,
            self._rank_by_tid[request.thread_id],
            request.arrival_time,
            request.request_id,
        )

    def _index_key_plain(self, request: MemoryRequest) -> tuple:
        return (
            not request.marked,
            request.priority_level,
            request.arrival_time,
            request.request_id,
        )

    def _pack_key_ranked(self, request: MemoryRequest) -> int:
        return (
            (not request.marked) << 92
            | request.priority_level << 71
            | self._rank_by_tid[request.thread_id] << 40
            | request.request_id
        )

    def _pack_key_plain(self, request: MemoryRequest) -> int:
        return (
            (not request.marked) << 61
            | request.priority_level << 40
            | request.request_id
        )

    def _key(self, request: MemoryRequest) -> tuple:
        marked_first = not request.marked
        priority = request.priority_level
        row_hit_first = not self._row_hit(request)
        age = (request.arrival_time, request.request_id)
        if self.within_batch == "par":
            return (marked_first, priority, row_hit_first, self.rank_of(request.thread_id), *age)
        if self.within_batch == "frfcfs":
            return (marked_first, priority, row_hit_first, *age)
        return (marked_first, priority, *age)  # fcfs

    def select(
        self, candidates: Sequence[MemoryRequest], bank: BankKey, now: int
    ) -> MemoryRequest:
        # Arbitration runs on every bank wake: resolve the bank's open row
        # and the rank table once per call instead of re-deriving row-hit
        # status and chasing attributes for every candidate (see _key for
        # the rule order being encoded).
        open_row = self.controller.channels[bank[0]].banks[bank[1]].open_row
        if self.within_batch == "par":
            ranks = self._ranks
            unranked = UNRANKED
            return min(
                candidates,
                key=lambda r: (
                    not r.marked,
                    r.priority_level,
                    r.row != open_row,
                    ranks.get(r.thread_id, unranked),
                    r.arrival_time,
                    r.request_id,
                ),
            )
        if self.within_batch == "frfcfs":
            return min(
                candidates,
                key=lambda r: (
                    not r.marked,
                    r.priority_level,
                    r.row != open_row,
                    r.arrival_time,
                    r.request_id,
                ),
            )
        return min(
            candidates,
            key=lambda r: (not r.marked, r.priority_level, r.arrival_time, r.request_id),
        )
