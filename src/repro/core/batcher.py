"""Request batching policies (paper Sections 4.1, 4.4 and 5).

Batching groups outstanding read requests into units that are serviced to
completion before re-ordering can cross their boundary, which bounds every
request's delay and provides starvation freedom.

Three batching disciplines from the paper:

* **Full batching** (PAR-BS default, Rule 1): a new batch forms when no
  marked requests remain; up to ``Marking-Cap`` oldest requests per thread
  per bank are marked.
* **Time-based static batching**: batches form every ``batch_duration``
  cycles regardless of completion; previously marked requests stay marked.
* **Empty-slot (eslot) batching**: like full batching, but a late-arriving
  request may join the current batch if its thread has used fewer than
  ``Marking-Cap`` marks for that bank in this batch.

System-level thread priorities (Section 5) are implemented by
*priority-based marking*: a thread at priority level ``X`` is marked only
every ``X``-th batch; threads at the special :data:`OPPORTUNISTIC` level
are never marked and are serviced purely on spare bandwidth.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Iterable

from ..dram.request import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..dram.controller import MemoryController

__all__ = [
    "Batcher",
    "FullBatcher",
    "StaticBatcher",
    "EslotBatcher",
    "AdaptiveCapBatcher",
    "OPPORTUNISTIC",
]

# Sentinel priority level: never marked, lowest priority among unmarked.
OPPORTUNISTIC = 1 << 20

# Marking-Cap value meaning "mark everything outstanding".
NO_CAP = 1 << 30


class Batcher:
    """Base batching engine.

    Subclasses decide *when* a new batch forms; the marking rules are
    shared.  ``on_new_batch`` is invoked with the list of newly marked
    requests so the scheduler can recompute its thread ranking.
    """

    name = "base"

    def __init__(
        self,
        marking_cap: int | None = 5,
        priorities: dict[int, int] | None = None,
    ) -> None:
        if marking_cap is not None and marking_cap < 1:
            raise ValueError("marking_cap must be >= 1 (or None for no cap)")
        self.marking_cap = NO_CAP if marking_cap is None else marking_cap
        self.priorities = dict(priorities or {})
        self.controller: "MemoryController | None" = None
        self.on_new_batch: Callable[[list[MemoryRequest], int], None] = (
            lambda marked, now: None
        )

        self.total_marked = 0
        self.marked_cum = 0  # cumulative requests ever marked
        self.batch_index = 0
        self.batches_formed = 0
        self._batch_start_time = 0
        self.batch_duration_sum = 0
        # Marks used per (thread, channel, bank) in the current batch
        # (needed by eslot batching and useful for assertions).
        self._marks_used: dict[tuple[int, int, int], int] = defaultdict(int)
        # ``batch``-category trace probe; bound in :meth:`attach`.
        self._p_batch = None
        # Invariant checker (probe-or-None); bound in :meth:`attach`.
        self._guard = None

    # -- wiring ------------------------------------------------------------
    def attach(self, controller: "MemoryController") -> None:
        self.controller = controller
        tracer = getattr(controller, "tracer", None)
        self._p_batch = tracer.probe("batch") if tracer is not None else None
        guard = getattr(controller, "guard", None)
        self._guard = guard
        if guard is not None:
            guard.attach_batcher(self)

    def priority_of(self, thread_id: int) -> int:
        return self.priorities.get(thread_id, 1)

    # -- marking helpers ------------------------------------------------------
    def _pending_reads(self) -> Iterable[tuple[tuple[int, int], Iterable[MemoryRequest]]]:
        # Marking walks the controller's per-bank row buckets directly —
        # no flattened per-bank copies are materialized.
        assert self.controller is not None
        return (
            (key, index.requests())
            for key, index in self.controller.read_indexes()
        )

    def _thread_markable(self, thread_id: int) -> bool:
        """Priority-based marking: level X threads join every X-th batch."""
        level = self.priority_of(thread_id)
        if level >= OPPORTUNISTIC:
            return False
        return self.batch_index % level == 0

    def _form_batch(self, now: int) -> None:
        """Mark up to ``marking_cap`` oldest requests per thread per bank."""
        assert self.controller is not None
        self.batch_index += 1
        self._marks_used.clear()
        marked: list[MemoryRequest] = []
        for (channel, bank), requests in self._pending_reads():
            per_thread: dict[int, list[MemoryRequest]] = defaultdict(list)
            for request in requests:
                if not request.marked:
                    per_thread[request.thread_id].append(request)
            for thread_id, thread_requests in per_thread.items():
                if not self._thread_markable(thread_id):
                    continue
                thread_requests.sort(key=lambda r: (r.arrival_time, r.request_id))
                for request in thread_requests[: self.marking_cap]:
                    request.marked = True
                    marked.append(request)
                    self._marks_used[(thread_id, channel, bank)] += 1
        if marked:
            self.total_marked += len(marked)
            self.marked_cum += len(marked)
            self.batches_formed += 1
            self._batch_start_time = now
        self.on_new_batch(marked, now)
        guard = self._guard
        if guard is not None:
            guard.on_batch_formed(now, self, marked)

    # -- events from the scheduler ------------------------------------------------
    def request_arrived(self, request: MemoryRequest, now: int) -> None:
        if not request.is_read:
            return
        if self.total_marked == 0:
            self._form_batch(now)

    def request_completed(self, request: MemoryRequest, now: int) -> None:
        if not request.is_read or not request.marked:
            return
        request.marked = False
        self.total_marked -= 1
        if self.total_marked == 0:
            duration = now - self._batch_start_time
            self.batch_duration_sum += duration
            probe = self._p_batch
            if probe is not None:
                probe.emit(
                    now, "batch.completed",
                    index=self.batch_index, duration=duration,
                )
            self._batch_finished(now)

    def _batch_finished(self, now: int) -> None:
        """Hook: the current batch fully drained."""
        self._form_batch(now)

    def tick(self, now: int) -> None:
        """Periodic hook for time-driven batching (no-op by default)."""

    @property
    def avg_batch_duration(self) -> float:
        done = self.batches_formed if self.total_marked == 0 else self.batches_formed - 1
        return self.batch_duration_sum / done if done > 0 else 0.0


class FullBatcher(Batcher):
    """PAR-BS full batching: next batch forms only when the previous one is
    completely serviced."""

    name = "full"


class StaticBatcher(Batcher):
    """Time-based static batching (Section 4.4): batches form every
    ``batch_duration`` cycles; existing marks persist.  Provides no strict
    starvation-avoidance guarantee."""

    name = "static"

    def __init__(
        self,
        batch_duration: int,
        marking_cap: int | None = 5,
        priorities: dict[int, int] | None = None,
    ) -> None:
        super().__init__(marking_cap=marking_cap, priorities=priorities)
        if batch_duration < 1:
            raise ValueError("batch_duration must be positive")
        self.batch_duration = batch_duration
        self._next_batch_time = 0

    def request_arrived(self, request: MemoryRequest, now: int) -> None:
        if not request.is_read:
            return
        self.tick(now)

    def request_completed(self, request: MemoryRequest, now: int) -> None:
        if not request.is_read or not request.marked:
            return
        request.marked = False
        self.total_marked -= 1
        if self.total_marked == 0:
            duration = now - self._batch_start_time
            self.batch_duration_sum += duration
            probe = self._p_batch
            if probe is not None:
                probe.emit(
                    now, "batch.completed",
                    index=self.batch_index, duration=duration,
                )
        self.tick(now)

    def _batch_finished(self, now: int) -> None:  # pragma: no cover - unused
        pass

    def tick(self, now: int) -> None:
        if now >= self._next_batch_time:
            self._form_batch(now)
            self._next_batch_time = now + self.batch_duration


class AdaptiveCapBatcher(FullBatcher):
    """Full batching with a self-tuning ``Marking-Cap`` (an extension the
    paper suggests as future work in Section 8.3.1).

    The cap trades row-buffer locality and intensive-thread throughput
    (large cap) against the deferral of requests that miss a batch (small
    cap); its effect is summarized by the *batch duration*.  This batcher
    nudges the cap after each completed batch to keep the duration inside a
    target band:

    * batches draining faster than ``target_duration / 2`` mean marking is
      too stingy — raise the cap (recover locality);
    * batches lasting longer than ``2 * target_duration`` mean late
      arrivals wait too long — lower the cap.

    The default setpoint (2 560 cycles) is twice the paper's reported
    average batch length at cap 5, leaving headroom for locality.
    """

    name = "adaptive"

    def __init__(
        self,
        target_duration: int = 2560,
        min_cap: int = 1,
        max_cap: int = 20,
        initial_cap: int = 5,
        priorities: dict[int, int] | None = None,
    ) -> None:
        super().__init__(marking_cap=initial_cap, priorities=priorities)
        if not (1 <= min_cap <= initial_cap <= max_cap):
            raise ValueError("need 1 <= min_cap <= initial_cap <= max_cap")
        if target_duration < 1:
            raise ValueError("target_duration must be positive")
        self.target_duration = target_duration
        self.min_cap = min_cap
        self.max_cap = max_cap
        self.cap_history: list[int] = [initial_cap]

    def _batch_finished(self, now: int) -> None:
        duration = now - self._batch_start_time
        if duration < self.target_duration // 2 and self.marking_cap < self.max_cap:
            self.marking_cap += 1
        elif duration > 2 * self.target_duration and self.marking_cap > self.min_cap:
            self.marking_cap -= 1
        self.cap_history.append(self.marking_cap)
        super()._batch_finished(now)


class EslotBatcher(Batcher):
    """Empty-slot batching (Section 4.4): late-arriving requests join the
    current batch while their thread's per-bank mark allotment has room."""

    name = "eslot"

    def request_arrived(self, request: MemoryRequest, now: int) -> None:
        if not request.is_read:
            return
        if self.total_marked == 0:
            self._form_batch(now)
            return
        key = (request.thread_id, request.channel, request.bank)
        if (
            self._thread_markable_current(request.thread_id)
            and self._marks_used[key] < self.marking_cap
            and not request.marked
        ):
            request.marked = True
            self.total_marked += 1
            self.marked_cum += 1
            self._marks_used[key] += 1

    def _thread_markable_current(self, thread_id: int) -> bool:
        """Markability check against the *current* (already formed) batch."""
        if self.batch_index == 0:
            return False
        level = self.priority_of(thread_id)
        if level >= OPPORTUNISTIC:
            return False
        return self.batch_index % level == 0
