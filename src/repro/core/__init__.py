"""The paper's core contribution: Parallelism-Aware Batch Scheduling."""

from .abstract_model import AbstractBatch, AbstractRequest, ScheduleResult
from .batcher import (
    OPPORTUNISTIC,
    AdaptiveCapBatcher,
    Batcher,
    EslotBatcher,
    FullBatcher,
    StaticBatcher,
)
from .hardware import HardwareCost, hardware_cost
from .parbs import ParBsScheduler
from .ranking import (
    MaxTotalRanking,
    RandomRanking,
    RoundRobinRanking,
    ThreadRanking,
    TotalMaxRanking,
    batch_loads,
    make_ranking,
)

__all__ = [
    "AbstractBatch",
    "AbstractRequest",
    "ScheduleResult",
    "OPPORTUNISTIC",
    "AdaptiveCapBatcher",
    "Batcher",
    "EslotBatcher",
    "FullBatcher",
    "StaticBatcher",
    "ParBsScheduler",
    "HardwareCost",
    "hardware_cost",
    "MaxTotalRanking",
    "RandomRanking",
    "RoundRobinRanking",
    "ThreadRanking",
    "TotalMaxRanking",
    "batch_loads",
    "make_ranking",
]
