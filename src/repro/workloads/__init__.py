"""Benchmark profiles, synthetic trace generation, and workload mixes."""

from .generator import TraceGenerator, generate_trace
from .mixes import (
    CASE_STUDY_1,
    CASE_STUDY_2,
    CASE_STUDY_3,
    EIGHT_CORE_MIX,
    FIG8_SAMPLE_MIXES,
    SIXTEEN_CORE_MIXES,
    Workload,
    random_mixes,
)
from .profiles import PROFILES, BenchmarkProfile, by_category, profile

__all__ = [
    "TraceGenerator",
    "generate_trace",
    "CASE_STUDY_1",
    "CASE_STUDY_2",
    "CASE_STUDY_3",
    "EIGHT_CORE_MIX",
    "FIG8_SAMPLE_MIXES",
    "SIXTEEN_CORE_MIXES",
    "Workload",
    "random_mixes",
    "PROFILES",
    "BenchmarkProfile",
    "by_category",
    "profile",
]
