"""One-shot calibration of the trace generator's parallelism knobs.

The generator controls a thread's bank-level parallelism with three knobs:
the number of concurrent walkers, the probability that a jump access
depends on the walker's previous read, and the probability that a
run-continuation access does.  Their mapping to *measured* BLP depends on
timing details (response overheads, burst structure), so instead of an
analytical model we fit the knobs per benchmark against the Table 3 BLP
target with a short hill-climb of alone-run simulations on the baseline
system.

Run ``python -m repro.workloads.calibrate`` to print a fresh
``_CALIBRATED_KNOBS`` table for :mod:`repro.workloads.generator`.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import baseline_system
from .profiles import PROFILES, BenchmarkProfile

__all__ = ["measure", "measure_blp", "calibrate_profile", "refine_stall_time", "calibrate_all"]

_INSTRUCTIONS = 80_000


def measure(
    profile: BenchmarkProfile,
    walkers: int,
    dep_prob: float,
    cont_dep_prob: float,
    instructions: int = _INSTRUCTIONS,
) -> tuple[float, float]:
    """Alone-run ``(BLP, AST/req)`` under explicit generator knobs."""
    # Imported lazily: calibrate is a leaf tool, the generator is core.
    from ..sim.factory import make_scheduler
    from ..sim.system import System
    from .generator import TraceGenerator

    config = replace(baseline_system(4), num_cores=1)
    generator = TraceGenerator(mapping=config.dram.mapping())
    generator.parallelism_knobs = lambda _p: (walkers, dep_prob, cont_dep_prob)  # type: ignore[method-assign]
    trace = generator.generate(profile, instructions=instructions, seed=0)
    system = System(config, make_scheduler("FR-FCFS", 1), [trace], repeat=False)
    system.run()
    blp = system.controller.thread_stats[0].bank_level_parallelism
    snapshot = system.cores[0].snapshot
    assert snapshot is not None
    return blp, snapshot.avg_stall_per_request


def measure_blp(
    profile: BenchmarkProfile,
    walkers: int,
    dep_prob: float,
    cont_dep_prob: float,
    instructions: int = _INSTRUCTIONS,
) -> float:
    """Alone-run BLP of a profile under explicit generator knobs."""
    return measure(profile, walkers, dep_prob, cont_dep_prob, instructions)[0]


def calibrate_profile(
    profile: BenchmarkProfile,
    tolerance: float = 0.08,
    max_steps: int = 14,
) -> tuple[int, float, float]:
    """Fit ``(walkers, dep_prob, cont_dep_prob)`` for one profile.

    Hill-climb: too little parallelism → relax dependencies, then add
    walkers; too much → tighten dependencies (including continuations),
    then drop walkers.
    """
    target = profile.blp
    walkers = max(1, round(target))
    dep, cont = 0.9, 0.0
    best = (walkers, dep, cont)
    best_err = float("inf")
    for _ in range(max_steps):
        measured = measure_blp(profile, walkers, dep, cont)
        err = measured - target
        if abs(err) < abs(best_err):
            best, best_err = (walkers, dep, cont), err
        if abs(err) <= tolerance * max(1.0, target):
            break
        if err < 0:  # need more parallelism
            if cont > 0.0:
                cont = max(0.0, cont - 0.25)
            elif dep > 0.1:
                dep = max(0.0, dep - 0.2)
            else:
                walkers += 1
        else:  # need less parallelism
            if dep < 0.95:
                dep = min(1.0, dep + 0.2)
            elif walkers > 1:
                walkers -= 1
                dep = 0.7
            elif profile.row_hit_rate <= 0.85:
                cont = min(1.0, cont + 0.25)
            else:
                break  # streaming thread: keep its row-hit backlog
    return best


def refine_stall_time(
    profile: BenchmarkProfile,
    knobs: tuple[int, float, float],
    max_steps: int = 6,
) -> tuple[int, float, float]:
    """Second calibration phase: match the AST/req target.

    Raising the continuation-dependency probability serializes adjacent
    accesses, pushing the per-request stall time toward the published
    value; if that costs too much bank-level parallelism, an extra walker
    restores it.  Stops when AST/req is within 15% of target or the BLP
    error would exceed 25%.
    """
    walkers, dep, cont = knobs
    if profile.row_hit_rate > 0.85:
        # Streaming benchmarks are defined by a standing backlog of row-hit
        # requests (that is what FR-FCFS rewards); chaining their accesses
        # to match AST/req would remove the backlog and change their
        # qualitative behaviour, so keep them unchained.
        return (walkers, dep, 0.0)
    target_ast = float(profile.ast_per_req)
    target_blp = profile.blp
    best = knobs
    best_err = float("inf")
    for _ in range(max_steps):
        blp, ast = measure(profile, walkers, dep, cont)
        ast_err = abs(ast - target_ast) / target_ast
        blp_err = abs(blp - target_blp) / max(1.0, target_blp)
        score = ast_err + blp_err
        if score < best_err and blp_err <= 0.25:
            best, best_err = (walkers, dep, cont), score
        if ast >= 0.85 * target_ast or cont >= 1.0:
            if blp < 0.75 * target_blp:
                walkers += 1
                continue
            break
        cont = min(1.0, cont + 0.25)
        if blp < 0.75 * target_blp:
            walkers += 1
    return best


def calibrate_all(verbose: bool = True) -> dict[str, tuple[int, float, float]]:
    """Calibrate every Table 3 profile; returns the knob table."""
    table: dict[str, tuple[int, float, float]] = {}
    for name, prof in sorted(PROFILES.items(), key=lambda kv: kv[1].number):
        knobs = refine_stall_time(prof, calibrate_profile(prof))
        table[name] = knobs
        if verbose:
            blp, ast = measure(prof, *knobs)
            print(
                f'    "{name}": ({knobs[0]}, {knobs[1]:.2f}, {knobs[2]:.2f}),'
                f"  # BLP {prof.blp:.2f}->{blp:.2f}, AST {prof.ast_per_req}->{ast:.0f}"
            )
    return table


if __name__ == "__main__":
    print("_CALIBRATED_KNOBS = {")
    calibrate_all()
    print("}")
