"""Multiprogrammed workload mixes from the paper's evaluation (Section 7).

Provides the three 4-core case studies, the 10 sample mixes of Figure 8,
the 8-core mix of Figure 9, the 16-core mixes of Figure 10, and the
pseudo-random category-balanced samplers used for the aggregate results
(100 4-core, 16 8-core and 12 16-core combinations in the paper; the
counts are configurable here).

Mixes are addressable by name through :data:`MIX_REGISTRY` /
:func:`get_mix` (the CLI and campaign specs resolve strings through it),
and the registry includes the ``tmix1``–``tmix7`` suite over the
committed sample *trace* files: ``trace:<name>`` workload entries are
real memory-access streams ingested by :mod:`repro.traces` rather than
synthetic generators, laddered from all-intensive (``tmix1``) down to
all-light (``tmix5``), plus a clone mix and a traced+synthetic hybrid.
"""

from __future__ import annotations

import difflib
import random

from .profiles import PROFILES, BenchmarkProfile, by_category, profile

__all__ = [
    "CASE_STUDY_1",
    "CASE_STUDY_2",
    "CASE_STUDY_3",
    "EIGHT_CORE_MIX",
    "FIG8_SAMPLE_MIXES",
    "MIX_REGISTRY",
    "SIXTEEN_CORE_MIXES",
    "TRACE_MIXES",
    "UnknownMixError",
    "Workload",
    "get_mix",
    "random_mixes",
]

# A workload is an ordered list of benchmark names, one per core.
Workload = list[str]

# Case Study I (Fig. 5): four memory-intensive benchmarks, one with very
# high bank-level parallelism (mcf).
CASE_STUDY_1: Workload = ["libquantum", "mcf", "GemsFDTD", "xalancbmk"]

# Case Study II (Fig. 6): three non-intensive benchmarks plus matlab; only
# omnetpp has high bank-level parallelism.
CASE_STUDY_2: Workload = ["matlab", "h264ref", "omnetpp", "hmmer"]

# Case Study III (Fig. 7): four identical copies of lbm (high BLP).
CASE_STUDY_3: Workload = ["lbm"] * 4

# Figure 9: 8-core mix of 3 intensive + 5 non-intensive applications.
EIGHT_CORE_MIX: Workload = [
    "mcf",
    "xml-parser",
    "cactusADM",
    "astar",
    "hmmer",
    "h264ref",
    "gromacs",
    "bzip2",
]

# The ten sample 4-core mixes shown in Figure 8 (left), in order.
FIG8_SAMPLE_MIXES: list[Workload] = [
    ["libquantum", "h264ref", "omnetpp", "hmmer"],
    ["lbm", "matlab", "GemsFDTD", "omnetpp"],
    ["GemsFDTD", "omnetpp", "astar", "hmmer"],
    ["libquantum", "xml-parser", "astar", "hmmer"],
    ["matlab", "omnetpp", "astar", "bzip2"],
    ["leslie3d", "leslie3d", "leslie3d", "leslie3d"],
    ["sphinx3", "libquantum", "h264ref", "omnetpp"],
    ["libquantum", "mcf", "xalancbmk", "gromacs"],
    ["lbm", "matlab", "astar", "hmmer"],
    ["lbm", "astar", "h264ref", "gromacs"],
]


def _by_numbers(numbers: list[int]) -> Workload:
    return [profile(n).name for n in numbers]


def _intensity_sorted() -> list[BenchmarkProfile]:
    return sorted(PROFILES.values(), key=lambda p: (-p.mcpi, p.number))


def _sixteen_core_mixes() -> dict[str, Workload]:
    ranked = _intensity_sorted()
    return {
        # Benchmark-number mixes labeled on Figure 10's x-axis.
        "1,5,6,9,13-22,27,28": _by_numbers([1, 5, 6, 9] + list(range(13, 23)) + [27, 28]),
        "9,13-22,24-28": _by_numbers([9] + list(range(13, 23)) + list(range(24, 29))),
        "intensive16": [p.name for p in ranked[:16]],
        "middle16": [p.name for p in ranked[6:22]],
        "non-intensive16": [p.name for p in ranked[-16:]],
    }


SIXTEEN_CORE_MIXES: dict[str, Workload] = _sixteen_core_mixes()


def random_mixes(
    num_cores: int = 4,
    count: int = 100,
    seed: int = 42,
) -> list[Workload]:
    """Pseudo-random category-balanced workload mixes (paper Section 7).

    Each mix is formed by pseudo-randomly choosing ``num_cores`` of the
    eight benchmark categories (without replacement while possible, so
    different category combinations are evaluated) and then a random
    benchmark from each chosen category.
    """
    if num_cores < 1 or count < 1:
        raise ValueError("num_cores and count must be positive")
    rng = random.Random(seed)
    categories = list(range(8))
    mixes: list[Workload] = []
    seen: set[tuple[str, ...]] = set()
    attempts = 0
    while len(mixes) < count and attempts < count * 50:
        attempts += 1
        pool: list[int] = []
        while len(pool) < num_cores:
            remaining = [c for c in categories if c not in pool] or categories
            pool.append(rng.choice(remaining))
        workload = [rng.choice(by_category(c)).name for c in pool]
        key = tuple(sorted(workload))
        if key in seen:
            continue
        seen.add(key)
        mixes.append(workload)
    return mixes


# -- named-mix registry -------------------------------------------------------

# 4-core mixes over the committed sample trace files, laddered by memory
# intensity: tmix1 = four memory hogs, tmix5 = four light threads, with
# the rungs between mixing the two ends (the shape of the paper's Fig. 8
# sample mixes, but over *real* ingested access streams).  tmix6 is four
# clones of the nastiest trace (the Case-Study-III shape) and tmix7
# composes traced and synthetic threads in one workload — the property
# the trace front-end exists to provide.
TRACE_MIXES: dict[str, Workload] = {
    "tmix1": [
        "trace:stream-hi",
        "trace:chase-hi",
        "trace:rowlocal-hi",
        "trace:conflict-hi",
    ],
    "tmix2": [
        "trace:stream-hi",
        "trace:chase-hi",
        "trace:rowlocal-hi",
        "trace:conflict-lo",
    ],
    "tmix3": [
        "trace:stream-hi",
        "trace:chase-hi",
        "trace:rowlocal-lo",
        "trace:conflict-lo",
    ],
    "tmix4": [
        "trace:stream-hi",
        "trace:chase-lo",
        "trace:rowlocal-lo",
        "trace:conflict-lo",
    ],
    "tmix5": [
        "trace:stream-lo",
        "trace:chase-lo",
        "trace:rowlocal-lo",
        "trace:conflict-lo",
    ],
    "tmix6": ["trace:conflict-hi"] * 4,
    "tmix7": ["trace:stream-hi", "trace:chase-lo", "mcf", "libquantum"],
}


def _build_registry() -> dict[str, Workload]:
    registry: dict[str, Workload] = {
        "case1": CASE_STUDY_1,
        "case2": CASE_STUDY_2,
        "case3": CASE_STUDY_3,
        "eight-core": EIGHT_CORE_MIX,
    }
    for index, mix in enumerate(FIG8_SAMPLE_MIXES, start=1):
        registry[f"fig8-{index}"] = mix
    registry.update(SIXTEEN_CORE_MIXES)
    registry.update(TRACE_MIXES)
    return registry


MIX_REGISTRY: dict[str, Workload] = _build_registry()


class UnknownMixError(KeyError):
    """An unregistered mix name, with did-you-mean suggestions.

    ``KeyError.args[0]`` would quote-mangle a multi-line message, so the
    human-readable text lives on :attr:`message` and ``str()`` returns it
    verbatim.
    """

    def __init__(self, name: str) -> None:
        suggestions = difflib.get_close_matches(
            name, MIX_REGISTRY, n=3, cutoff=0.5
        )
        message = f"unknown mix {name!r}"
        if suggestions:
            message += f" — did you mean {', '.join(suggestions)}?"
        message += (
            f" (registered: {', '.join(sorted(MIX_REGISTRY))})"
        )
        super().__init__(name)
        self.message = message

    def __str__(self) -> str:
        return self.message


def get_mix(name: str) -> Workload:
    """Look up a registered mix by name.

    Raises :class:`UnknownMixError` — a :class:`KeyError` whose message
    carries close-match suggestions — instead of a bare ``KeyError``
    traceback, so CLI and spec errors read like diagnostics.
    """
    mix = MIX_REGISTRY.get(name)
    if mix is None:
        raise UnknownMixError(name)
    return list(mix)
