"""Multiprogrammed workload mixes from the paper's evaluation (Section 7).

Provides the three 4-core case studies, the 10 sample mixes of Figure 8,
the 8-core mix of Figure 9, the 16-core mixes of Figure 10, and the
pseudo-random category-balanced samplers used for the aggregate results
(100 4-core, 16 8-core and 12 16-core combinations in the paper; the
counts are configurable here).
"""

from __future__ import annotations

import random

from .profiles import PROFILES, BenchmarkProfile, by_category, profile

__all__ = [
    "CASE_STUDY_1",
    "CASE_STUDY_2",
    "CASE_STUDY_3",
    "EIGHT_CORE_MIX",
    "FIG8_SAMPLE_MIXES",
    "SIXTEEN_CORE_MIXES",
    "Workload",
    "random_mixes",
]

# A workload is an ordered list of benchmark names, one per core.
Workload = list[str]

# Case Study I (Fig. 5): four memory-intensive benchmarks, one with very
# high bank-level parallelism (mcf).
CASE_STUDY_1: Workload = ["libquantum", "mcf", "GemsFDTD", "xalancbmk"]

# Case Study II (Fig. 6): three non-intensive benchmarks plus matlab; only
# omnetpp has high bank-level parallelism.
CASE_STUDY_2: Workload = ["matlab", "h264ref", "omnetpp", "hmmer"]

# Case Study III (Fig. 7): four identical copies of lbm (high BLP).
CASE_STUDY_3: Workload = ["lbm"] * 4

# Figure 9: 8-core mix of 3 intensive + 5 non-intensive applications.
EIGHT_CORE_MIX: Workload = [
    "mcf",
    "xml-parser",
    "cactusADM",
    "astar",
    "hmmer",
    "h264ref",
    "gromacs",
    "bzip2",
]

# The ten sample 4-core mixes shown in Figure 8 (left), in order.
FIG8_SAMPLE_MIXES: list[Workload] = [
    ["libquantum", "h264ref", "omnetpp", "hmmer"],
    ["lbm", "matlab", "GemsFDTD", "omnetpp"],
    ["GemsFDTD", "omnetpp", "astar", "hmmer"],
    ["libquantum", "xml-parser", "astar", "hmmer"],
    ["matlab", "omnetpp", "astar", "bzip2"],
    ["leslie3d", "leslie3d", "leslie3d", "leslie3d"],
    ["sphinx3", "libquantum", "h264ref", "omnetpp"],
    ["libquantum", "mcf", "xalancbmk", "gromacs"],
    ["lbm", "matlab", "astar", "hmmer"],
    ["lbm", "astar", "h264ref", "gromacs"],
]


def _by_numbers(numbers: list[int]) -> Workload:
    return [profile(n).name for n in numbers]


def _intensity_sorted() -> list[BenchmarkProfile]:
    return sorted(PROFILES.values(), key=lambda p: (-p.mcpi, p.number))


def _sixteen_core_mixes() -> dict[str, Workload]:
    ranked = _intensity_sorted()
    return {
        # Benchmark-number mixes labeled on Figure 10's x-axis.
        "1,5,6,9,13-22,27,28": _by_numbers([1, 5, 6, 9] + list(range(13, 23)) + [27, 28]),
        "9,13-22,24-28": _by_numbers([9] + list(range(13, 23)) + list(range(24, 29))),
        "intensive16": [p.name for p in ranked[:16]],
        "middle16": [p.name for p in ranked[6:22]],
        "non-intensive16": [p.name for p in ranked[-16:]],
    }


SIXTEEN_CORE_MIXES: dict[str, Workload] = _sixteen_core_mixes()


def random_mixes(
    num_cores: int = 4,
    count: int = 100,
    seed: int = 42,
) -> list[Workload]:
    """Pseudo-random category-balanced workload mixes (paper Section 7).

    Each mix is formed by pseudo-randomly choosing ``num_cores`` of the
    eight benchmark categories (without replacement while possible, so
    different category combinations are evaluated) and then a random
    benchmark from each chosen category.
    """
    if num_cores < 1 or count < 1:
        raise ValueError("num_cores and count must be positive")
    rng = random.Random(seed)
    categories = list(range(8))
    mixes: list[Workload] = []
    seen: set[tuple[str, ...]] = set()
    attempts = 0
    while len(mixes) < count and attempts < count * 50:
        attempts += 1
        pool: list[int] = []
        while len(pool) < num_cores:
            remaining = [c for c in categories if c not in pool] or categories
            pool.append(rng.choice(remaining))
        workload = [rng.choice(by_category(c)).name for c in pool]
        key = tuple(sorted(workload))
        if key in seen:
            continue
        seen.add(key)
        mixes.append(workload)
    return mixes
