"""The 28 benchmark profiles of the paper's Table 3.

Each profile records the published alone-run characteristics of one SPEC
CPU2006 / Windows desktop benchmark on the baseline 4-core system: memory
cycles per instruction (MCPI), L2 misses per kilo-instruction (MPKI),
row-buffer hit rate, bank-level parallelism (BLP) and average stall time
per DRAM request (AST/req).  The synthetic trace generator
(:mod:`repro.workloads.generator`) uses MPKI, row-buffer hit rate and BLP
as calibration targets; the remaining columns are emergent and checked by
the Table 3 reproduction benchmark.

Categories follow the paper's 3-bit taxonomy: (MCPI high?, row-buffer hit
rate high?, BLP high?) → category 0-7.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BenchmarkProfile", "PROFILES", "profile", "by_category", "category_bits"]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Published alone-run characteristics of one benchmark (Table 3)."""

    number: int
    name: str
    kind: str  # "INT", "FP", or "DSK" (Windows desktop)
    mcpi: float
    mpki: float
    row_hit_rate: float  # 0..1
    blp: float
    ast_per_req: int
    category: int

    def __post_init__(self) -> None:
        if not 0 <= self.category <= 7:
            raise ValueError("category must be 0..7")
        if not 0.0 <= self.row_hit_rate <= 1.0:
            raise ValueError("row_hit_rate must be within [0, 1]")

    @property
    def memory_intensive(self) -> bool:
        return bool(self.category & 0b100)

    @property
    def high_row_locality(self) -> bool:
        return bool(self.category & 0b010)

    @property
    def high_bank_parallelism(self) -> bool:
        return bool(self.category & 0b001)


def category_bits(mcpi_high: bool, rb_high: bool, blp_high: bool) -> int:
    """Compose a category number from its three classification bits."""
    return (mcpi_high << 2) | (rb_high << 1) | blp_high


def _p(number, name, kind, mcpi, mpki, rb, blp, ast, cat) -> BenchmarkProfile:
    return BenchmarkProfile(
        number=number,
        name=name,
        kind=kind,
        mcpi=mcpi,
        mpki=mpki,
        row_hit_rate=rb / 100.0,
        blp=blp,
        ast_per_req=ast,
        category=cat,
    )


# Table 3, verbatim.
PROFILES: dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        _p(1, "leslie3d", "FP", 7.30, 51.52, 62.8, 1.90, 139, 7),
        _p(2, "soplex", "FP", 6.18, 47.58, 78.8, 1.81, 125, 7),
        _p(3, "lbm", "FP", 3.57, 43.59, 61.1, 3.37, 77, 7),
        _p(4, "sphinx3", "FP", 3.05, 24.89, 75.0, 1.89, 117, 7),
        _p(5, "matlab", "DSK", 15.4, 78.36, 93.7, 1.08, 192, 6),
        _p(6, "libquantum", "INT", 9.10, 50.00, 98.4, 1.10, 181, 6),
        _p(7, "milc", "FP", 4.65, 32.48, 86.4, 1.51, 139, 6),
        _p(8, "xml-parser", "DSK", 2.92, 18.23, 95.3, 1.32, 158, 6),
        _p(9, "mcf", "INT", 6.45, 98.68, 41.5, 4.75, 64, 5),
        _p(10, "GemsFDTD", "FP", 4.08, 29.95, 20.4, 2.40, 126, 5),
        _p(11, "xalancbmk", "INT", 2.80, 23.52, 59.8, 2.27, 113, 5),
        _p(12, "cactusADM", "FP", 2.78, 11.68, 6.75, 1.60, 219, 4),
        _p(13, "gcc", "INT", 0.05, 0.37, 63.9, 1.87, 127, 3),
        _p(14, "tonto", "FP", 0.02, 0.13, 70.7, 1.92, 108, 3),
        _p(15, "povray", "FP", 0.00, 0.03, 79.9, 1.75, 123, 3),
        _p(16, "h264ref", "INT", 0.48, 2.65, 76.5, 1.29, 161, 2),
        _p(17, "gobmk", "INT", 0.11, 0.60, 61.1, 1.46, 162, 2),
        _p(18, "dealII", "FP", 0.07, 0.41, 90.3, 1.21, 133, 2),
        _p(19, "namd", "FP", 0.06, 0.33, 86.6, 1.27, 160, 2),
        _p(20, "wrf", "FP", 0.05, 0.28, 83.6, 1.20, 164, 2),
        _p(21, "calculix", "FP", 0.04, 0.19, 75.9, 1.30, 157, 2),
        _p(22, "perlbench", "INT", 0.02, 0.13, 75.4, 1.69, 128, 2),
        _p(23, "omnetpp", "INT", 1.96, 22.15, 26.7, 3.78, 86, 1),
        _p(24, "bzip2", "INT", 0.49, 3.56, 52.0, 2.05, 127, 1),
        _p(25, "astar", "INT", 1.82, 9.25, 50.2, 1.45, 177, 0),
        _p(26, "hmmer", "INT", 1.50, 5.67, 33.8, 1.26, 231, 0),
        _p(27, "gromacs", "FP", 0.18, 0.68, 58.2, 1.04, 220, 0),
        _p(28, "sjeng", "INT", 0.10, 0.41, 16.8, 1.53, 192, 0),
    ]
}

_BY_NUMBER = {p.number: p for p in PROFILES.values()}


def profile(name_or_number: str | int) -> BenchmarkProfile:
    """Look up a profile by benchmark name or Table 3 row number."""
    if isinstance(name_or_number, int):
        try:
            return _BY_NUMBER[name_or_number]
        except KeyError:
            raise KeyError(f"no benchmark number {name_or_number}") from None
    try:
        return PROFILES[name_or_number]
    except KeyError:
        raise KeyError(f"no benchmark named {name_or_number!r}") from None


def by_category(category: int) -> list[BenchmarkProfile]:
    """All profiles in a category, in Table 3 order."""
    return [p for p in sorted(PROFILES.values(), key=lambda p: p.number) if p.category == category]
