"""Synthetic DRAM-trace generator calibrated to benchmark profiles.

The paper drives its simulator with SPEC CPU2006 / desktop traces; those
are proprietary, so we substitute synthetic traces whose *memory-system
characteristics* match the published Table 3 numbers (see DESIGN.md §2).
Three knobs of a :class:`~repro.workloads.profiles.BenchmarkProfile` are
calibration targets:

* **Memory intensity (MPKI):** the instruction gap between accesses is
  solved so the overall misses-per-kilo-instruction matches the target.
* **Row-buffer locality:** each access stream is a *sequential walker*: it
  touches consecutive cache lines for a geometric-length run, then jumps
  to a random location.  Sequential lines walk the columns of one DRAM
  row, so runs translate to row-buffer hits; the mean run length is solved
  from the target hit rate, accounting for hits lost at row crossings.
* **Bank-level parallelism (BLP):** a thread interleaves ``round(BLP)``
  independent walkers, so the requests outstanding together in the
  instruction window spread over that many banks.

Generation is fully deterministic given ``(profile, seed)``.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from ..cpu.trace import Trace, TraceEntry
from ..dram.address import CACHE_LINE_BYTES, AddressMapping
from .profiles import BenchmarkProfile

__all__ = ["TraceGenerator", "generate_trace"]

# Instructions between accesses inside a burst: small enough that a burst
# fits comfortably in a 128-entry instruction window.
_BURST_GAP = 2
_MIN_ACCESSES = 24

# Per-benchmark (walkers, jump_dep_prob, cont_dep_prob) fitted by
# repro.workloads.calibrate so that alone-run BLP on the baseline 4-core
# system matches Table 3.  Regenerate with
# ``python -m repro.workloads.calibrate`` after generator changes.
_CALIBRATED_KNOBS: dict[str, tuple[int, float, float]] = {
    "leslie3d": (2, 0.90, 1.00),  # BLP 1.90->1.51, AST 139->118
    "soplex": (2, 0.90, 1.00),  # BLP 1.81->1.43, AST 125->110
    "lbm": (8, 0.10, 0.00),  # BLP 3.37->3.31, AST 77->74
    "sphinx3": (3, 0.10, 0.50),  # BLP 1.89->1.89, AST 117->101
    "matlab": (1, 1.00, 0.00),  # BLP 1.08->1.39, AST 192->81 (streaming)
    "libquantum": (1, 0.90, 0.00),  # BLP 1.10->1.13, AST 181->89 (streaming)
    "milc": (1, 0.10, 0.00),  # BLP 1.51->1.39, AST 139->86 (streaming)
    "xml-parser": (2, 1.00, 0.00),  # BLP 1.32->1.57, AST 158->81 (streaming)
    "mcf": (14, 0.10, 0.00),  # BLP 4.75->4.32, AST 64->63
    "GemsFDTD": (3, 0.10, 0.50),  # BLP 2.40->2.40, AST 126->105
    "xalancbmk": (3, 0.10, 0.50),  # BLP 2.27->2.08, AST 113->98
    "cactusADM": (2, 0.90, 1.00),  # BLP 1.60->1.55, AST 219->156
    "gcc": (3, 1.00, 0.75),  # BLP 1.87->1.79, AST 127->101
    "tonto": (2, 0.70, 0.25),  # BLP 1.92->1.67, AST 108->93
    "povray": (3, 0.10, 0.75),  # BLP 1.75->1.74, AST 123->115
    "h264ref": (1, 0.90, 0.50),  # BLP 1.29->1.11, AST 161->147
    "gobmk": (1, 0.50, 0.25),  # BLP 1.46->1.26, AST 162->142
    "dealII": (1, 0.90, 0.00),  # BLP 1.21->1.00, AST 133->115 (streaming)
    "namd": (1, 0.10, 0.00),  # BLP 1.27->1.23, AST 160->100 (streaming)
    "wrf": (1, 1.00, 0.75),  # BLP 1.20->1.09, AST 164->147
    "calculix": (1, 0.50, 0.25),  # BLP 1.30->1.19, AST 157->134
    "perlbench": (2, 0.90, 0.75),  # BLP 1.69->1.63, AST 128->100
    "omnetpp": (7, 0.10, 0.00),  # BLP 3.78->3.53, AST 86->76
    "bzip2": (3, 0.50, 1.00),  # BLP 2.05->2.01, AST 127->109
    "astar": (1, 0.50, 0.75),  # BLP 1.45->1.28, AST 177->158
    "hmmer": (1, 0.90, 0.50),  # BLP 1.26->1.13, AST 231->202
    "gromacs": (1, 0.90, 1.00),  # BLP 1.04->1.01, AST 220->180
    "sjeng": (2, 0.90, 0.25),  # BLP 1.53->1.52, AST 192->149
}
# Footprint walked by each thread (lines); large enough that random jumps
# rarely revisit an open row.
_FOOTPRINT_LINES = 1 << 23  # 512 MB


@dataclass
class _Walker:
    """A sequential access stream: consecutive lines, then a random jump.

    A jump models a data-dependent access (e.g. following a pointer): the
    jump target depends on the walker's previous read, so the generated
    entry carries a ``depends_on`` edge.  Threads with short runs are
    therefore inherently serialized (low MLP), matching the low-BLP
    benchmark profiles; streaming threads have long runs and almost no
    dependencies.
    """

    line: int
    run_left: int
    last_read_index: int | None = None


class TraceGenerator:
    """Generates synthetic traces for benchmark profiles.

    Parameters
    ----------
    mapping:
        Address mapping of the target system (used to size rows so hit-rate
        calibration accounts for row crossings).
    write_fraction:
        Fraction of accesses that are writes (dirty writebacks).  The
        paper's evaluation is read-dominated; writes are drained in the
        background by every scheduler.
    """

    def __init__(
        self,
        mapping: AddressMapping | None = None,
        write_fraction: float = 0.10,
    ) -> None:
        self.mapping = mapping or AddressMapping()
        if not 0.0 <= write_fraction < 1.0:
            raise ValueError("write_fraction must be in [0, 1)")
        self.write_fraction = write_fraction

    def generate(
        self,
        profile: BenchmarkProfile,
        instructions: int = 300_000,
        seed: int = 0,
    ) -> Trace:
        """Generate a trace of roughly ``instructions`` instructions whose
        statistics track ``profile``."""
        if instructions < 1000:
            raise ValueError("instructions must be at least 1000")
        # zlib.crc32 is stable across processes (unlike hash()), keeping
        # generation reproducible run to run.
        rng = random.Random((zlib.crc32(profile.name.encode()) ^ seed) & 0xFFFFFFFF)

        accesses = max(_MIN_ACCESSES, round(profile.mpki * instructions / 1000.0))
        num_walkers, dep_prob, cont_dep_prob = self.parallelism_knobs(profile)
        mean_run = self._solve_run_length(profile.row_hit_rate)
        walkers = [
            _Walker(line=rng.randrange(_FOOTPRINT_LINES), run_left=self._draw_run(mean_run, rng))
            for _ in range(num_walkers)
        ]

        # Requests are emitted in bursts that interleave the walkers (so
        # they are outstanding together); bursts are separated by an idle
        # compute gap solved from the MPKI target.
        burst_len = max(2 * num_walkers, 4)
        instr_per_access = 1000.0 / max(
            profile.mpki, 1000.0 * _MIN_ACCESSES / instructions
        )
        idle_gap = max(
            0, round(burst_len * instr_per_access) - burst_len * (_BURST_GAP + 1)
        )

        entries: list[TraceEntry] = []
        emitted = 0
        while emitted < accesses:
            this_burst = min(burst_len, accesses - emitted)
            for i in range(this_burst):
                walker = walkers[i % num_walkers]
                address, jumped = self._next_address(walker, mean_run, rng)
                # Gaps are randomized around their means: real programs have
                # irregular compute phases, and regular gaps would phase-lock
                # request arrivals with scheduler epochs (batch boundaries).
                if i == 0 and emitted > 0:
                    # Exponential idle phase, tail-capped so one draw cannot
                    # dominate the trace's instruction count.
                    gap = (
                        min(int(rng.expovariate(1.0 / idle_gap)), 6 * idle_gap)
                        if idle_gap > 0
                        else 0
                    )
                else:
                    gap = rng.randint(1, 2 * _BURST_GAP - 1)
                is_write = rng.random() < self.write_fraction
                dep_p = dep_prob if jumped else cont_dep_prob
                depends_on = (
                    walker.last_read_index if rng.random() < dep_p else None
                )
                entries.append(
                    TraceEntry(
                        gap=gap,
                        address=address,
                        is_write=is_write,
                        depends_on=depends_on,
                    )
                )
                if not is_write:
                    walker.last_read_index = len(entries) - 1
                emitted += 1
        return Trace(entries, name=profile.name)

    # -- internals -----------------------------------------------------------
    def parallelism_knobs(self, profile: BenchmarkProfile) -> tuple[int, float, float]:
        """Resolve ``(walkers, jump dependency prob, continuation dependency
        prob)`` for a profile.

        Uses the pre-calibrated table (produced by
        :mod:`repro.workloads.calibrate` against the Table 3 BLP targets on
        the baseline system) when available; otherwise falls back to a
        heuristic derivation from the BLP target.
        """
        knobs = _CALIBRATED_KNOBS.get(profile.name)
        if knobs is not None:
            return knobs
        walkers = max(1, round(profile.blp))
        return walkers, 0.85, 0.0

    def _solve_run_length(self, hit_rate: float) -> float:
        """Mean sequential-run length hitting the target row-hit rate.

        In a run of length L, the first access misses (random jump) and on
        average ``(L-1)/C`` more accesses miss at row crossings, where C is
        the number of cache lines per row.  Solving
        ``1 - (1 + (L-1)/C) / L = hit_rate`` for L gives the mean run.
        """
        lines_per_row = self.mapping.columns_per_row
        ceiling = 1.0 - 1.0 / lines_per_row  # best achievable hit rate
        if hit_rate >= ceiling - 1e-9:
            return float(1 << 14)  # essentially a pure stream
        numerator = 1.0 - 1.0 / lines_per_row
        return max(1.0, numerator / (1.0 - hit_rate - 1.0 / lines_per_row))

    @staticmethod
    def _draw_run(mean_run: float, rng: random.Random) -> int:
        """Geometric run length with the given mean (≥ 1)."""
        if mean_run <= 1.0:
            return 1
        continue_p = 1.0 - 1.0 / mean_run
        length = 1
        while rng.random() < continue_p and length < (1 << 16):
            length += 1
        return length

    def _next_address(
        self, walker: _Walker, mean_run: float, rng: random.Random
    ) -> tuple[int, bool]:
        """Next address for ``walker``; second element flags a random jump
        (a data-dependent access)."""
        jumped = False
        if walker.run_left <= 0:
            walker.line = rng.randrange(_FOOTPRINT_LINES)
            walker.run_left = self._draw_run(mean_run, rng)
            jumped = True
        address = walker.line * CACHE_LINE_BYTES
        walker.line = (walker.line + 1) % _FOOTPRINT_LINES
        walker.run_left -= 1
        return address, jumped


def generate_trace(
    profile: BenchmarkProfile,
    instructions: int = 300_000,
    seed: int = 0,
    mapping: AddressMapping | None = None,
) -> Trace:
    """Convenience wrapper: build a generator and produce one trace."""
    generator = TraceGenerator(mapping=mapping)
    return generator.generate(profile, instructions=instructions, seed=seed)
