"""Event-driven DRAM memory controller.

The controller owns the request buffer, the write buffer, and the channel /
bank / bus models.  Arbitration is delegated to a pluggable
:class:`~repro.schedulers.base.Scheduler`.  Policy invariants implemented
here, common to every scheduler in the paper (Section 7.2):

* read requests are prioritized over write requests, except when the write
  buffer exceeds its drain watermark;
* at most one request is in service per bank; the bank executes its full
  command sequence with DDR2 timing (see :mod:`repro.dram.bank`);
* one command-bus slot (one DRAM clock) separates issue decisions on a
  channel.

Per-thread statistics gathered here feed the paper's metrics: bank-level
parallelism (BLP, the time-average number of banks concurrently servicing a
thread while at least one is), row-buffer hit rate, and request latencies
including the worst case.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from ..events import EventQueue
from .channel import Channel
from .request import MemoryRequest, RequestType

if TYPE_CHECKING:  # pragma: no cover
    from ..config import DramConfig
    from ..schedulers.base import Scheduler

__all__ = ["MemoryController", "ThreadMemStats"]


@dataclass
class ThreadMemStats:
    """Per-thread statistics collected by the controller."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    latency_sum: int = 0
    latency_max: int = 0
    # BLP accounting: integral of (#banks servicing this thread) over the
    # time at least one bank is servicing it.
    blp_integral: float = 0.0
    busy_time: int = 0
    in_service: int = 0
    _last_change: int = 0

    def _advance(self, now: int) -> None:
        if self.in_service > 0:
            span = now - self._last_change
            self.blp_integral += span * self.in_service
            self.busy_time += span
        self._last_change = now

    def service_started(self, now: int) -> None:
        self._advance(now)
        self.in_service += 1

    def service_finished(self, now: int) -> None:
        self._advance(now)
        self.in_service -= 1

    @property
    def bank_level_parallelism(self) -> float:
        """Average number of requests in service while any is (paper §7)."""
        return self.blp_integral / self.busy_time if self.busy_time else 0.0

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_conflicts
        return self.row_hits / total if total else 0.0

    @property
    def avg_latency(self) -> float:
        total = self.reads + self.writes
        return self.latency_sum / total if total else 0.0


class MemoryController:
    """Shared DRAM controller for a CMP."""

    def __init__(
        self,
        queue: EventQueue,
        config: "DramConfig",
        scheduler: "Scheduler",
        num_threads: int,
    ) -> None:
        self.queue = queue
        self.config = config
        self.scheduler = scheduler
        self.num_threads = num_threads
        self.timing = config.timing
        self.channels = [
            Channel(config.timing, config.num_banks, channel_id=c)
            for c in range(config.num_channels)
        ]
        # Pending (not yet issued) requests per (channel, bank), split by type.
        self._reads: dict[tuple[int, int], list[MemoryRequest]] = defaultdict(list)
        self._writes: dict[tuple[int, int], list[MemoryRequest]] = defaultdict(list)
        self._write_occupancy = 0
        self._draining_writes = False
        # Buffered (not yet issued) reads per thread: kept incrementally so
        # ``pending_reads(thread_id)`` — called by batchers on the enqueue
        # path — is O(1) instead of a scan over the whole request buffer.
        self._reads_per_thread: dict[int, int] = defaultdict(int)
        # A wake event is pending per bank at this time (dedup).
        self._bank_wake: dict[tuple[int, int], int] = {}

        # Stats appear here only for threads that actually issued requests;
        # use :meth:`stats_for` for lookups that must tolerate absent threads.
        self.thread_stats: dict[int, ThreadMemStats] = {}
        self.total_reads = 0
        self.total_writes = 0
        self.read_occupancy = 0
        self.peak_read_occupancy = 0

        scheduler.attach(self)

    # ------------------------------------------------------------------ API
    def pending_reads(self, thread_id: int | None = None) -> int:
        """Number of buffered (not yet issued) read requests."""
        if thread_id is None:
            return self.read_occupancy
        return self._reads_per_thread.get(thread_id, 0)

    def stats_for(self, thread_id: int) -> ThreadMemStats:
        """Statistics for ``thread_id``; an explicit zeroed record when the
        thread never issued a memory request (nothing is inserted)."""
        stats = self.thread_stats.get(thread_id)
        return stats if stats is not None else ThreadMemStats()

    def _stats(self, thread_id: int) -> ThreadMemStats:
        stats = self.thread_stats.get(thread_id)
        if stats is None:
            stats = self.thread_stats[thread_id] = ThreadMemStats()
        return stats

    def buffered_reads(self) -> Iterator[MemoryRequest]:
        """Iterate over every buffered (not yet issued) read request."""
        for requests in self._reads.values():
            yield from requests

    def buffered_reads_by_bank(
        self,
    ) -> Iterable[tuple[tuple[int, int], Sequence[MemoryRequest]]]:
        """Buffered reads grouped by (channel, bank); empty banks skipped."""
        return ((key, reqs) for key, reqs in self._reads.items() if reqs)

    def buffered_reads_for_bank(
        self, key: tuple[int, int]
    ) -> Sequence[MemoryRequest]:
        """Buffered reads waiting on one (channel, bank)."""
        return self._reads.get(key) or ()

    def enqueue(self, request: MemoryRequest) -> None:
        """Accept a new request from a core/cache."""
        request.arrival_time = self.queue.now
        key = (request.channel, request.bank)
        if request.is_read:
            bucket = self._reads[key]
            request.buf_pos = len(bucket)
            bucket.append(request)
            self._reads_per_thread[request.thread_id] += 1
            self.read_occupancy += 1
            self.peak_read_occupancy = max(self.peak_read_occupancy, self.read_occupancy)
            self.total_reads += 1
        else:
            bucket = self._writes[key]
            request.buf_pos = len(bucket)
            bucket.append(request)
            self._write_occupancy += 1
            self.total_writes += 1
            if self._write_occupancy > self.config.write_drain_high:
                self._draining_writes = True
        self.scheduler.on_enqueue(request, self.queue.now)
        self._schedule_wake(key, self.queue.now)

    # --------------------------------------------------------- event plumbing
    def _schedule_wake(self, key: tuple[int, int], when: int) -> None:
        """Schedule an arbitration attempt for bank ``key`` at ``when``,
        deduplicating redundant wakes."""
        pending = self._bank_wake.get(key)
        if pending is not None and pending <= when:
            return
        self._bank_wake[key] = when
        self.queue.schedule(when, lambda: self._wake(key), priority=1)

    def _wake(self, key: tuple[int, int]) -> None:
        if self._bank_wake.get(key) != self.queue.now:
            # Superseded by an earlier wake that already ran.
            if self._bank_wake.get(key, -1) < self.queue.now:
                self._bank_wake.pop(key, None)
            else:
                return
        else:
            self._bank_wake.pop(key, None)
        self._try_issue(key)

    def _try_issue(self, key: tuple[int, int]) -> None:
        channel_id, bank_id = key
        channel = self.channels[channel_id]
        bank = channel.banks[bank_id]
        now = self.queue.now
        if bank.earliest_start(now) > now:
            self._schedule_wake(key, bank.earliest_start(now))
            return
        request = self._pick(key, now)
        if request is None:
            return
        # Consume a command-bus slot; if the command bus pushes us into the
        # future, retry then rather than issuing early.
        slot = channel.next_command_time(now)
        if slot > now:
            self._schedule_wake(key, slot)
            return
        channel.command_slot(now)
        self._issue(request, key, now)

    def _pick(self, key: tuple[int, int], now: int) -> MemoryRequest | None:
        reads = self._reads.get(key) or []
        writes = self._writes.get(key) or []
        if self._draining_writes and writes:
            return self._pick_write(writes)
        if reads:
            return self.scheduler.select(reads, key, now)
        if writes:
            return self._pick_write(writes)
        return None

    @staticmethod
    def _pick_write(writes: list[MemoryRequest]) -> MemoryRequest:
        # Writes are drained oldest-first; they are latency-insensitive.
        return min(writes, key=lambda r: (r.arrival_time, r.request_id))

    @staticmethod
    def _remove_buffered(bucket: list[MemoryRequest], request: MemoryRequest) -> None:
        """Swap-pop ``request`` out of its buffer bucket in O(1).

        Bucket order is not meaningful — every consumer (scheduler selects,
        write drain, batch marking) orders requests by explicit sort keys.
        """
        pos = request.buf_pos
        last = bucket.pop()
        if last is not request:
            bucket[pos] = last
            last.buf_pos = pos
        request.buf_pos = -1

    def _issue(self, request: MemoryRequest, key: tuple[int, int], now: int) -> None:
        channel = self.channels[key[0]]
        bank = channel.banks[key[1]]
        if request.is_read:
            self._remove_buffered(self._reads[key], request)
            self._reads_per_thread[request.thread_id] -= 1
            self.read_occupancy -= 1
        else:
            self._remove_buffered(self._writes[key], request)
            self._write_occupancy -= 1
            if self._write_occupancy <= self.config.write_drain_low:
                self._draining_writes = False
        request.issue_time = now
        outcome = bank.service(request, now, channel.bus)
        request.service_outcome = outcome

        stats = self._stats(request.thread_id)
        if request.is_read:
            # BLP (paper §7) is defined over the thread's demand requests.
            stats.service_started(now)
        if outcome.row_result == "hit":
            stats.row_hits += 1
        else:
            stats.row_conflicts += 1

        self.scheduler.on_issue(request, now)
        self.queue.schedule(
            outcome.completion, lambda: self._complete(request), priority=0
        )
        # The bank can take its next request once this access releases it.
        self._schedule_wake(key, outcome.bank_free)

    def _complete(self, request: MemoryRequest) -> None:
        now = self.queue.now
        request.completion_time = now
        stats = self._stats(request.thread_id)
        if request.is_read:
            stats.service_finished(now)
        latency = request.latency + self.timing.overhead
        stats.latency_sum += latency
        stats.latency_max = max(stats.latency_max, latency)
        if request.is_read:
            stats.reads += 1
        else:
            stats.writes += 1
        self.scheduler.on_complete(request, now)
        if request.on_complete is not None:
            # The fixed controller/interconnect overhead is charged on the
            # response path.
            self.queue.schedule(
                now + self.timing.overhead,
                lambda: request.on_complete(request),
                priority=2,
            )

    # ------------------------------------------------------------- reporting
    def worst_case_latency(self) -> int:
        """Worst request latency observed across all threads."""
        return max((s.latency_max for s in self.thread_stats.values()), default=0)

    def outstanding(self) -> int:
        """Requests waiting in the buffers (not yet issued)."""
        return self.read_occupancy + self._write_occupancy
