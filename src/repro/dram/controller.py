"""Event-driven DRAM memory controller.

The controller owns the request buffer, the write buffer, and the channel /
bank / bus models.  Arbitration is delegated to a pluggable
:class:`~repro.schedulers.base.Scheduler`.  Policy invariants implemented
here, common to every scheduler in the paper (Section 7.2):

* read requests are prioritized over write requests, except when the write
  buffer exceeds its drain watermark;
* at most one request is in service per bank; the bank executes its full
  command sequence with DDR2 timing (see :mod:`repro.dram.bank`);
* one command-bus slot (one DRAM clock) separates issue decisions on a
  channel.

Request buffers are stored as :mod:`incremental arbitration indexes
<repro.dram.rqindex>` — row-bucketed with epoch-cached priority heaps — so
an issue decision is a heap peek instead of an O(occupancy) scan.  Three
arbitration modes exist (``arbitration=`` constructor argument):

* ``"index"`` (default) — decisions answered from the index;
* ``"scan"`` — the reference ``min()``-over-candidates path (also the
  automatic fallback for schedulers without index support);
* ``"verify"`` — both, asserting they agree at every decision (the golden
  equivalence harness used by the test suite).

Per-thread statistics gathered here feed the paper's metrics: bank-level
parallelism (BLP, the time-average number of banks concurrently servicing a
thread while at least one is), row-buffer hit rate, and request latencies
including the worst case.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from ..events import EventQueue, SimulationError
from .channel import Channel
from .request import MemoryRequest
from .rqindex import BankReadIndex, WriteFifo

if TYPE_CHECKING:  # pragma: no cover
    from ..config import DramConfig
    from ..obs.sampler import Telemetry
    from ..obs.trace import Tracer
    from ..schedulers.base import Scheduler
    from .bank import Bank

__all__ = ["MemoryController", "ThreadMemStats"]


@dataclass(slots=True)
class ThreadMemStats:
    """Per-thread statistics collected by the controller."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    latency_sum: int = 0
    latency_max: int = 0
    # BLP accounting: integral of (#banks servicing this thread) over the
    # time at least one bank is servicing it.
    blp_integral: float = 0.0
    busy_time: int = 0
    in_service: int = 0
    _last_change: int = 0

    def _advance(self, now: int) -> None:
        if self.in_service > 0:
            span = now - self._last_change
            self.blp_integral += span * self.in_service
            self.busy_time += span
        self._last_change = now

    # ``_advance`` is inlined in both transitions: they run twice per read
    # on the controller's issue/completion paths.
    def service_started(self, now: int) -> None:
        in_service = self.in_service
        if in_service > 0:
            span = now - self._last_change
            self.blp_integral += span * in_service
            self.busy_time += span
        self._last_change = now
        self.in_service = in_service + 1

    def service_finished(self, now: int) -> None:
        in_service = self.in_service
        if in_service > 0:
            span = now - self._last_change
            self.blp_integral += span * in_service
            self.busy_time += span
        self._last_change = now
        self.in_service = in_service - 1

    @property
    def bank_level_parallelism(self) -> float:
        """Average number of requests in service while any is (paper §7)."""
        return self.blp_integral / self.busy_time if self.busy_time else 0.0

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_conflicts
        return self.row_hits / total if total else 0.0

    @property
    def avg_latency(self) -> float:
        total = self.reads + self.writes
        return self.latency_sum / total if total else 0.0


class MemoryController:
    """Shared DRAM controller for a CMP."""

    def __init__(
        self,
        queue: EventQueue,
        config: "DramConfig",
        scheduler: "Scheduler",
        num_threads: int,
        arbitration: str = "index",
        tracer: "Tracer | None" = None,
        telemetry: "Telemetry | None" = None,
        guard=None,
    ) -> None:
        if arbitration not in ("index", "scan", "verify"):
            raise ValueError(f"unknown arbitration mode {arbitration!r}")
        self.queue = queue
        # Robustness: runtime invariant checker (probe-or-None, like the
        # trace probes — ``--guard off`` leaves every hook site None).
        self.guard = guard
        # Observability: per-category probes resolve to None when tracing
        # is off (or the category is filtered), so every instrumented hot
        # path below guards with a single local `is not None` check.
        self.tracer = tracer
        self.telemetry = telemetry
        if tracer is not None:
            self._p_req = tracer.probe("request")
            self._p_cmd = tracer.probe("dram")
        else:
            self._p_req = None
            self._p_cmd = None
        # Request ids are allocated from a process-global counter; trace
        # events carry ids relative to the run's first request so streams
        # are identical across worker processes (determinism contract).
        self._req_base: int | None = None
        self.config = config
        self.scheduler = scheduler
        self.num_threads = num_threads
        self.timing = config.timing
        self.channels = [
            Channel(config.timing, config.num_banks, channel_id=c)
            for c in range(config.num_channels)
        ]
        # Schedulers without index support (index_key is None) always use
        # the scan path, whatever mode was requested.
        if scheduler.index_key is None:
            arbitration = "scan"
        self.arbitration = arbitration
        self._use_index = arbitration != "scan"
        self._verify_index = arbitration == "verify"
        # Pending (not yet issued) requests per (channel, bank), split by
        # type: row-bucketed heap indexes for reads, FIFOs for writes.
        self._reads: dict[tuple[int, int], BankReadIndex] = {}
        self._writes: dict[tuple[int, int], WriteFifo] = {}
        self._write_occupancy = 0
        self._draining_writes = False
        # Buffered (not yet issued) reads per thread: kept incrementally so
        # ``pending_reads(thread_id)`` — called by batchers on the enqueue
        # path — is O(1) instead of a scan over the whole request buffer.
        self._reads_per_thread: dict[int, int] = defaultdict(int)
        # A wake event is pending per bank at this time (dedup), plus one
        # reusable wake callback per bank so scheduling a wake does not
        # allocate a fresh closure.
        self._bank_wake: dict[tuple[int, int], int] = {}
        self._wake_cbs = {
            (c, b): (lambda key=(c, b): self._wake(key))
            for c in range(config.num_channels)
            for b in range(config.num_banks)
        }

        # Verify-mode hook: when a list is assigned here, every issued
        # command appends one comparable tuple (run-relative id, placement,
        # full AccessOutcome timeline).  The fast-backend verify harness
        # enables it on both controllers and asserts the streams are
        # bit-identical.  ``None`` (the default) costs one load per issue.
        self.command_log: list | None = None

        # Stats appear here only for threads that actually issued requests;
        # use :meth:`stats_for` for lookups that must tolerate absent threads.
        self.thread_stats: dict[int, ThreadMemStats] = {}
        self.total_reads = 0
        self.total_writes = 0
        self.read_occupancy = 0
        self.peak_read_occupancy = 0

        if guard is not None:
            # Before scheduler.attach: the scheduler/batcher attach path
            # reads ``controller.guard`` to bind their own hooks.
            guard.attach_controller(self)
        scheduler.attach(self)

    # ------------------------------------------------------------------ API
    def pending_reads(self, thread_id: int | None = None) -> int:
        """Number of buffered (not yet issued) read requests."""
        if thread_id is None:
            return self.read_occupancy
        return self._reads_per_thread.get(thread_id, 0)

    @property
    def write_occupancy(self) -> int:
        """Number of buffered (not yet issued) write requests."""
        return self._write_occupancy

    @property
    def draining_writes(self) -> bool:
        """Whether the controller is currently in write-drain mode."""
        return self._draining_writes

    def _rid(self, request: MemoryRequest) -> int:
        """Run-relative request id used in trace events (deterministic
        across processes; the raw global id is not)."""
        base = self._req_base
        if base is None:
            base = self._req_base = request.request_id
        return request.request_id - base

    def stats_for(self, thread_id: int) -> ThreadMemStats:
        """Statistics for ``thread_id``; an explicit zeroed record when the
        thread never issued a memory request (nothing is inserted)."""
        stats = self.thread_stats.get(thread_id)
        return stats if stats is not None else ThreadMemStats()

    def _stats(self, thread_id: int) -> ThreadMemStats:
        stats = self.thread_stats.get(thread_id)
        if stats is None:
            stats = self.thread_stats[thread_id] = ThreadMemStats()
        return stats

    def buffered_reads(self) -> Iterator[MemoryRequest]:
        """Iterate over every buffered (not yet issued) read request."""
        for index in self._reads.values():
            for bucket in index.rows.values():
                yield from bucket

    def buffered_reads_by_bank(
        self,
    ) -> Iterable[tuple[tuple[int, int], Sequence[MemoryRequest]]]:
        """Buffered reads grouped by (channel, bank); empty banks skipped."""
        return (
            (key, tuple(index.requests()))
            for key, index in self._reads.items()
            if index.size
        )

    def buffered_reads_for_bank(
        self, key: tuple[int, int]
    ) -> Sequence[MemoryRequest]:
        """Buffered reads waiting on one (channel, bank)."""
        index = self._reads.get(key)
        return tuple(index.requests()) if index is not None else ()

    def buffered_read_threads(self, key: tuple[int, int]) -> Mapping[int, int]:
        """Threads with buffered reads on one (channel, bank), with counts
        (an incrementally maintained view; do not mutate)."""
        index = self._reads.get(key)
        return index.thread_counts if index is not None else {}

    def read_indexes(
        self,
    ) -> Iterable[tuple[tuple[int, int], BankReadIndex]]:
        """Per-bank read indexes with at least one buffered request."""
        return ((key, index) for key, index in self._reads.items() if index.size)

    def enqueue(self, request: MemoryRequest) -> None:
        """Accept a new request from a core/cache."""
        now = self.queue.now
        request.arrival_time = now
        key = (request.channel, request.bank)
        probe = self._p_req
        if probe is not None:
            probe.emit(
                now,
                "request.enqueue",
                req=self._rid(request),
                thread=request.thread_id,
                ch=request.channel,
                bank=request.bank,
                row=request.row,
                rw="R" if request.is_read else "W",
            )
        if request.is_read:
            index = self._reads.get(key)
            if index is None:
                index = self._reads[key] = BankReadIndex()
            index.add(request)
            self._reads_per_thread[request.thread_id] += 1
            self.read_occupancy += 1
            if self.read_occupancy > self.peak_read_occupancy:
                self.peak_read_occupancy = self.read_occupancy
            self.total_reads += 1
            self.scheduler.on_enqueue(request, now)
            # Index after the scheduler hooks ran: they stamp the priority
            # fields (virtual finish time, marks, priority level) the key
            # is built from.
            if self._use_index:
                index.push(request, self.scheduler)
        else:
            fifo = self._writes.get(key)
            if fifo is None:
                fifo = self._writes[key] = WriteFifo()
            fifo.push(request)
            self._write_occupancy += 1
            self.total_writes += 1
            if (
                self._write_occupancy > self.config.write_drain_high
                and not self._draining_writes
            ):
                self._draining_writes = True
                cmd_probe = self._p_cmd
                if cmd_probe is not None:
                    cmd_probe.emit(
                        now, "dram.drain", on=1, writes=self._write_occupancy
                    )
            self.scheduler.on_enqueue(request, now)
        guard = self.guard
        if guard is not None:
            # After the scheduler hooks: marking/batching state is settled,
            # and the per-bank thread counts include this request (the
            # batch-bound deadline is derived from them).
            guard.on_enqueue(request, now)
        self._schedule_wake(key, now)

    # --------------------------------------------------------- event plumbing
    def _schedule_wake(self, key: tuple[int, int], when: int) -> None:
        """Schedule an arbitration attempt for bank ``key`` at ``when``,
        deduplicating redundant wakes."""
        pending = self._bank_wake.get(key)
        if pending is not None and pending <= when:
            return
        self._bank_wake[key] = when
        self.queue.schedule(when, self._wake_cbs[key], priority=1)

    def _wake(self, key: tuple[int, int]) -> None:
        # ``_bank_wake[key]`` is the earliest pending wake time for the
        # bank; it can only move earlier while set, and the event at that
        # time clears it.  Any event that fires without matching it is a
        # superseded leftover: an earlier wake already arbitrated (and
        # rescheduled if anything was left to do), so just drop it.
        if self._bank_wake.get(key) != self.queue.now:
            return
        del self._bank_wake[key]
        self._try_issue(key)

    def _try_issue(self, key: tuple[int, int]) -> None:
        channel_id, bank_id = key
        channel = self.channels[channel_id]
        bank = channel.banks[bank_id]
        now = self.queue.now
        busy_until = bank.busy_until
        if busy_until > now:
            self._schedule_wake(key, busy_until)
            return
        request = self._pick(key, now, bank)
        if request is None:
            return
        # Consume a command-bus slot; if the command bus pushes us into the
        # future, retry then rather than issuing early.
        slot = channel.try_command_slot(now)
        if slot > now:
            self._schedule_wake(key, slot)
            return
        self._issue(request, key, now, channel, bank)

    def _pick(
        self, key: tuple[int, int], now: int, bank: "Bank"
    ) -> MemoryRequest | None:
        if self._write_occupancy:
            writes = self._writes.get(key)
            has_writes = writes is not None and writes.size > 0
            if has_writes and self._draining_writes:
                return writes.peek()
        else:
            writes = None
            has_writes = False
        index = self._reads.get(key)
        if index is not None and index.size > 0:
            if self._use_index:
                request = self.scheduler.select_indexed(
                    index, key, now, bank.open_row
                )
                if self._verify_index:
                    self._verify_pick(index, key, now, request)
                return request
            return self.scheduler.select(list(index.requests()), key, now)
        if has_writes:
            return writes.peek()
        return None

    def _verify_pick(
        self,
        index: BankReadIndex,
        key: tuple[int, int],
        now: int,
        request: MemoryRequest,
    ) -> None:
        """Golden equivalence check: the reference scan must agree with the
        indexed decision at every arbitration."""
        scan = self.scheduler.select(list(index.requests()), key, now)
        if scan is not request:
            raise SimulationError(
                f"arbitration divergence at t={now} bank={key}: "
                f"index picked {request!r}, scan picked {scan!r}"
            )

    def _issue(
        self,
        request: MemoryRequest,
        key: tuple[int, int],
        now: int,
        channel: Channel,
        bank: "Bank",
    ) -> None:
        guard = self.guard
        if guard is not None:
            # Before any buffer mutation: a scheduler that double-issues is
            # caught here as a structured violation, not as corruption of
            # the request buffers below.
            guard.on_pre_issue(request, key, now)
        if request.is_read:
            self._reads[key].remove(request)
            self._reads_per_thread[request.thread_id] -= 1
            self.read_occupancy -= 1
        else:
            self._writes[key].remove(request)
            self._write_occupancy -= 1
            if (
                self._write_occupancy <= self.config.write_drain_low
                and self._draining_writes
            ):
                self._draining_writes = False
                cmd_probe = self._p_cmd
                if cmd_probe is not None:
                    cmd_probe.emit(
                        now, "dram.drain", on=0, writes=self._write_occupancy
                    )
        request.issue_time = now
        outcome = bank.service(request, now, channel.bus)
        request.service_outcome = outcome
        if guard is not None:
            guard.on_post_issue(request, outcome, key, now)
        probe = self._p_req
        if probe is not None:
            probe.emit(
                now,
                "request.issue",
                req=self._rid(request),
                thread=request.thread_id,
                ch=request.channel,
                bank=request.bank,
                row=request.row,
                result=outcome.row_result,
                queued=now - request.arrival_time,
            )
        cmd_probe = self._p_cmd
        if cmd_probe is not None:
            self._emit_cmds(request, outcome)
        log = self.command_log
        if log is not None:
            log.append(
                (
                    now,
                    self._rid(request),
                    request.thread_id,
                    request.channel,
                    request.bank,
                    request.row,
                    request.is_read,
                )
                + outcome.as_tuple()
            )

        stats = self._stats(request.thread_id)
        if request.is_read:
            # BLP (paper §7) is defined over the thread's demand requests.
            stats.service_started(now)
        if outcome.row_result == "hit":
            stats.row_hits += 1
        else:
            stats.row_conflicts += 1

        self.scheduler.on_issue(request, now)
        self.queue.schedule(
            outcome.completion, lambda: self._complete(request), priority=0
        )
        # The bank can take its next request once this access releases it.
        self._schedule_wake(key, outcome.bank_free)

    def _emit_cmds(self, request: MemoryRequest, outcome) -> None:
        """Emit the DDR command sequence (PRE/ACT/RD|WR) the bank laid out.

        Timestamps come from the :class:`~repro.dram.bank.AccessOutcome`,
        so the events carry true command times even though they are emitted
        at issue time (viewers sort by ``ts``).
        """
        probe = self._p_cmd
        rid = self._rid(request)
        ch = request.channel
        bank = request.bank
        row = request.row
        if outcome.precharge_at is not None:
            probe.emit(
                outcome.precharge_at, "dram.cmd", cmd="PRE", ch=ch, bank=bank,
                req=rid,
            )
        if outcome.activate_at is not None:
            probe.emit(
                outcome.activate_at, "dram.cmd", cmd="ACT", ch=ch, bank=bank,
                row=row, req=rid,
            )
        probe.emit(
            outcome.cas_at,
            "dram.cmd",
            cmd="RD" if request.is_read else "WR",
            ch=ch,
            bank=bank,
            row=row,
            req=rid,
            row_hit=1 if outcome.row_result == "hit" else 0,
        )

    def _complete(self, request: MemoryRequest) -> None:
        now = self.queue.now
        request.completion_time = now
        stats = self._stats(request.thread_id)
        if request.is_read:
            stats.service_finished(now)
        latency = request.latency + self.timing.overhead
        stats.latency_sum += latency
        if latency > stats.latency_max:
            stats.latency_max = latency
        if request.is_read:
            stats.reads += 1
        else:
            stats.writes += 1
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.record_latency(request.thread_id, latency)
        probe = self._p_req
        if probe is not None:
            probe.emit(
                now,
                "request.complete",
                req=self._rid(request),
                thread=request.thread_id,
                ch=request.channel,
                bank=request.bank,
                latency=latency,
            )
        guard = self.guard
        if guard is not None:
            guard.on_complete(request, now)
        self.scheduler.on_complete(request, now)
        if request.on_complete is not None:
            # The fixed controller/interconnect overhead is charged on the
            # response path.
            self.queue.schedule(
                now + self.timing.overhead,
                lambda: request.on_complete(request),
                priority=2,
            )

    # ------------------------------------------------------------- reporting
    def worst_case_latency(self) -> int:
        """Worst request latency observed across all threads."""
        return max((s.latency_max for s in self.thread_stats.values()), default=0)

    def outstanding(self) -> int:
        """Requests waiting in the buffers (not yet issued)."""
        return self.read_occupancy + self._write_occupancy
