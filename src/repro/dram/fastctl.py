"""Fast-backend memory controller and DRAM port.

:class:`FastMemoryController` is the drop-in controller of the ``fast``
simulation backend (``--backend fast`` / ``REPRO_BACKEND``).  It produces a
**bit-identical event trajectory** to the reference
:class:`~repro.dram.controller.MemoryController`: every event is scheduled
at the same (time, priority) with a sequence number drawn from the same
``EventQueue._seq`` counter at the same points, so same-cycle arbitration
races — command-bus slot contention between banks, completion vs. wake
ordering — resolve exactly as on the python path.  What changes is the
cost of each event:

* heap entries are pre-bound ``(when, priority, seq, fn, arg)`` tuples
  pushed straight onto the queue's heap — no per-request closure
  allocations (the python path allocates four lambdas per read);
* the wake → try-issue → pick → issue chain is fused into one call with
  per-bank structures resolved by flat-array indexing (``kid = channel *
  num_banks + bank``) instead of repeated dict lookups;
* bank/bus/command-slot timing state lives in the flat arrays of
  :class:`~repro.dram.fastbank.FastDramState` instead of object attribute
  chains;
* arbitration runs on the packed-key kernel
  (:class:`~repro.dram.fastsched.FastBankSched`): per-bank row-bucketed
  candidate arrays with integer sort keys and cached minima instead of
  the heap-backed :class:`~repro.dram.rqindex.BankReadIndex` — same
  membership contract, same epoch protocol, no heap churn;
* wakes that the python path provably wastes are *elided*: an enqueue to
  a busy bank arms the wake directly at the bank-free time instead of
  pushing an immediate wake whose only effect is to reschedule itself
  (and, when that target wake is already armed, leave a superseded
  duplicate behind).  Each elision counts into ``events_elided`` so the
  two backends agree on *logical* events (``events_processed +
  events_elided``), and the surviving events draw their sequence numbers
  at the same relative points — command streams stay bit-identical.

The scheduler hooks, guard hooks and trace probes are the *same objects
and call sites* as the python path — the strict guard's shadow DDR
checker certifies the fast kernel exactly as it does the reference one.

:class:`FastDramPort` is the matching core-side adapter: it memoizes
address → (channel, bank, row) decodes and exposes a ``fast_access``
protocol that carries the core's data-return callback as a pre-bound
``(fn, arg)`` pair instead of a closure.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Callable

from .bank import AccessOutcome
from .controller import MemoryController
from .fastbank import FastDramState
from .fastsched import FastBankSched
from .request import MemoryRequest, RequestType, _request_ids
from .rqindex import WriteFifo

try:  # Setup-time vectorized decode only; the hot path never needs numpy.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

if TYPE_CHECKING:  # pragma: no cover
    from ..config import DramConfig
    from ..events import EventQueue
    from ..schedulers.base import Scheduler
    from .address import AddressMapping

__all__ = ["FastMemoryController", "FastDramPort"]

_READ = RequestType.READ
_WRITE = RequestType.WRITE


class FastMemoryController(MemoryController):
    """Reference controller semantics on the flat-array timing kernel."""

    def __init__(
        self,
        queue: "EventQueue",
        config: "DramConfig",
        scheduler: "Scheduler",
        num_threads: int,
        arbitration: str = "index",
        tracer=None,
        telemetry=None,
        guard=None,
    ) -> None:
        super().__init__(
            queue,
            config,
            scheduler,
            num_threads,
            arbitration=arbitration,
            tracer=tracer,
            telemetry=telemetry,
            guard=guard,
        )
        num_banks = config.num_banks
        self._num_banks = num_banks
        self.fast = FastDramState(
            config.timing, config.num_channels, num_banks
        )
        # Pre-create every per-bank structure so the hot path replaces
        # keyed dict lookups with one flat-list index.  Pre-created empty
        # indexes are invisible to the controller API: every reader
        # filters on ``size``.  Reads live in the packed-key kernel
        # (:class:`FastBankSched`) instead of the heap-backed
        # ``BankReadIndex`` — same membership API, so the batcher, guard
        # and scan/verify paths read it unchanged.
        self._kid_reads: list[FastBankSched] = []
        self._kid_writes: list[WriteFifo] = []
        self._kid_key: list[tuple[int, int]] = []
        self._kid_bank = []
        for c in range(config.num_channels):
            for b in range(num_banks):
                key = (c, b)
                index = self._reads[key] = FastBankSched()
                fifo = self._writes.get(key)
                if fifo is None:
                    fifo = self._writes[key] = WriteFifo()
                self._kid_reads.append(index)
                self._kid_writes.append(fifo)
                self._kid_key.append(key)
                self._kid_bank.append(self.channels[c].banks[b])
        # Earliest pending wake per bank (None = no wake armed): the same
        # dedup protocol as the python path's ``_bank_wake`` dict, as a
        # flat list.
        self._kid_wake: list[int | None] = [None] * (
            config.num_channels * num_banks
        )
        # With telemetry attached, the periodic sampler reads the
        # ``DataBus`` objects mid-run, so mirror bus counters per issue;
        # otherwise the arrays are the only state until :meth:`sync_state`.
        self._mirror_bus = telemetry is not None
        # Scheduler hooks resolved once: a policy that does not override a
        # base no-op hook never gets called for it (bit-identical — the
        # base method body is ``pass`` — and saves three dead calls per
        # request lifecycle for the stateless policies).
        from ..schedulers.base import Scheduler as _Base

        cls = type(scheduler)
        self._hook_enqueue = (
            scheduler.on_enqueue
            if cls.on_enqueue is not _Base.on_enqueue
            else None
        )
        self._hook_issue = (
            scheduler.on_issue if cls.on_issue is not _Base.on_issue else None
        )
        self._hook_complete = (
            scheduler.on_complete
            if cls.on_complete is not _Base.on_complete
            else None
        )
        # Scalar timing constants, pre-resolved off the attribute chain.
        self._tCK = config.timing.tCK
        self._overhead = config.timing.overhead
        # A policy that keeps the base ``select_indexed`` gets it inlined
        # in the wake path (same statements, minus two call frames per
        # arbitration); one that overrides it is called normally (the
        # packed kernel duck-types ``peek``/``peek_row``/``ensure``, so
        # overrides like NFQ's work against it unchanged).
        self._generic_select = cls.select_indexed is _Base.select_indexed
        self._refresh_index = (
            scheduler.refresh_index
            if cls.refresh_index is not _Base.refresh_index
            else None
        )
        # Packed-key protocol: the key function feeding FastBankSched
        # (integer pack_key when the policy provides one, its tuple
        # index_key otherwise) and whether prefix comparison is a shift
        # or a slice.  ``index_uses_row`` is fixed at construction for
        # every policy; STFM's runtime prefix flips are read live.
        keyfn = scheduler.pack_key
        self._packed_keys = keyfn is not None
        self._index_keyfn = keyfn if keyfn is not None else scheduler.index_key
        self._uses_row = scheduler.index_uses_row
        # Wake events elided by arming enqueue-time wakes directly at the
        # bank-free time (see module docstring); ``events_processed +
        # events_elided`` equals the python backend's event count, so each
        # elision is counted exactly when the python path would *process*
        # the corresponding event:
        #
        # * the immediate wake counts at arming — it fires within the
        #   same cycle, right after the arming event (priority 1 precedes
        #   every enqueuing event's priority 2/4) — except when the run's
        #   final event armed it (see :meth:`finalize_elision`);
        # * the superseded duplicate the python path leaves at the
        #   bank-free time (its immediate's rebound lands next to an
        #   already-armed wake) is *deferred* into ``_kid_dup`` and
        #   counted when that armed wake actually fires — if the run ends
        #   first, the python path never processed it either.
        #
        # ``_kid_elide_seq[kid]`` records *which event* (by its unique
        # queue sequence number) last elided a wake for the bank: within
        # that same event the python path's immediate is still armed, so
        # further enqueues are pure no-ops there (nothing to elide).
        self.events_elided = 0
        n_kids = config.num_channels * num_banks
        self._kid_elide_seq: list[int] = [-2] * n_kids
        self._kid_dup: list[int] = [0] * n_kids
        self._phantom_seq = -2
        self._phantom_count = 0
        # Pre-bound callbacks: referencing ``self._wake_kid`` inside a heap
        # tuple allocates a fresh bound-method object per push; binding
        # once turns that into a plain attribute load.
        self._wake_kid_cb = self._wake_kid
        self._complete_cb = self._complete
        # ``_complete`` instrumentation (telemetry, probe, guard, policy
        # hook) folded into two flags: the lean path (nothing attached)
        # pays a single test, and the hook-only path (a policy completion
        # hook but no observability — PAR-BS/STFM/NFQ in a plain run)
        # calls the hook without re-probing telemetry/tracer/guard.
        self._complete_lean = (
            telemetry is None
            and tracer is None
            and guard is None
            and self._hook_complete is None
        )
        self._complete_hook_only = (
            telemetry is None
            and tracer is None
            and guard is None
            and self._hook_complete is not None
        )
        # thread_id -> ThreadMemStats as a flat list (thread ids are dense);
        # ``thread_stats`` keeps its lazy-population contract — a slot is
        # filled (and the dict entry created) at the thread's first issue.
        self._stats_by_tid: list = [None] * num_threads
        # Hot-array aliases: these list objects are created once by
        # ``FastDramState`` and only ever mutated in place, so binding them
        # here drops two attribute hops per touch on the wake/issue path.
        fast = self.fast
        self._busy_arr = fast.busy_until
        self._openrow_arr = fast.open_row
        self._lastcmd_arr = fast.last_command
        # The rest of the kernel state, aliased for the inlined copy of
        # ``FastDramState.service_tuple`` in :meth:`_wake_kid` (the method
        # remains the kernel of record for tests and the verify harness).
        self._activate_arr = fast.activate_time
        self._wrec_arr = fast.write_recovery
        self._rowhits_arr = fast.row_hits
        self._rowconf_arr = fast.row_conflicts
        self._acc_arr = fast.accesses
        self._busfree_arr = fast.bus_free
        self._busbusy_arr = fast.bus_busy
        self._buswait_arr = fast.bus_wait
        self._bustrans_arr = fast.bus_transfers
        timing = config.timing
        self._tRCD = timing.tRCD
        self._tCL = timing.tCL
        self._tRP = timing.tRP
        self._tRAS = timing.tRAS
        self._tWR = timing.tWR
        self._tBUS = timing.tBUS
        self._drain_high = config.write_drain_high
        self._drain_low = config.write_drain_low
        # Materialize the per-issue ``AccessOutcome`` object only when
        # something will read it: the guard's shadow checker, the tracer's
        # probes, or an outcome-consuming scheduler hook.  The command log
        # is checked at issue time (it can be enabled after construction).
        self._want_outcome = (
            guard is not None
            or tracer is not None
            or cls.uses_service_outcome
        )
        # Issue-side twin of the completion-path elision above: with no
        # guard, tracer, telemetry mirror or outcome consumer attached,
        # the issue epilogue folds its six probe-or-None checks into this
        # one pre-bound flag (the command log stays a live check — verify
        # mode enables it after construction).
        self._issue_lean = (
            guard is None and tracer is None and not self._want_outcome
            and telemetry is None
        )
        # Address-decode state for :meth:`fast_access`, installed by the
        # port (which owns the mapping) via :meth:`install_mapping`.
        self._coords: dict[int, tuple[int, int, int]] = {}
        self._cpr = self._nch = self._nbk = 1
        self._xor = False

    def install_mapping(self, mapping: "AddressMapping") -> None:
        """Bind the address mapping's decode constants (port setup)."""
        self._coords = {}
        self._cpr = mapping.columns_per_row
        self._nch = mapping.num_channels
        self._nbk = mapping.num_banks
        self._xor = mapping.xor_bank_hash

    def predecode(self, addresses) -> None:
        """Vector-decode a batch of addresses into the memo (setup time).

        Traces are known before the run starts, so one numpy pass over the
        workload's address set replaces the tens of thousands of scalar
        decode misses the run would otherwise take on its hot path.  Falls
        back to the scalar arithmetic without numpy.
        """
        addrs = list(addresses)
        coords = self._coords
        nbk = self._nbk
        if _np is not None and addrs:
            a = _np.asarray(addrs, dtype=_np.int64)
            line = (a // 64) // self._cpr
            channel = line % self._nch
            line //= self._nch
            bank = line % nbk
            row = line // nbk
            if self._xor:
                bank ^= row % nbk
            for addr, coord in zip(
                addrs, zip(channel.tolist(), bank.tolist(), row.tolist())
            ):
                coords[addr] = coord
            return
        for addr in addrs:
            line = (addr // 64) // self._cpr
            channel = line % self._nch
            line //= self._nch
            bank = line % nbk
            row = line // nbk
            if self._xor:
                bank ^= row % nbk
            coords[addr] = (channel, bank, row)

    # ------------------------------------------------------------- hot path
    def enqueue(self, request: MemoryRequest) -> None:
        queue = self.queue
        now = queue.now
        request.arrival_time = now
        kid = request.channel * self._num_banks + request.bank
        probe = self._p_req
        if probe is not None:
            probe.emit(
                now,
                "request.enqueue",
                req=self._rid(request),
                thread=request.thread_id,
                ch=request.channel,
                bank=request.bank,
                row=request.row,
                rw="R" if request.is_read else "W",
            )
        if request.is_read:
            index = self._kid_reads[kid]
            # ``BankReadIndex.add`` inlined (runs once per read).
            rows = index.rows
            row = request.row
            bucket = rows.get(row)
            if bucket is None:
                bucket = rows[row] = []
            request.buf_pos = len(bucket)
            bucket.append(request)
            tid = request.thread_id
            counts = index.thread_counts
            counts[tid] = counts.get(tid, 0) + 1
            index.size += 1
            self._reads_per_thread[tid] += 1
            occupancy = self.read_occupancy + 1
            self.read_occupancy = occupancy
            if occupancy > self.peak_read_occupancy:
                self.peak_read_occupancy = occupancy
            self.total_reads += 1
            hook = self._hook_enqueue
            if hook is not None:
                hook(request, now)
            if (
                self._use_index
                and index.heap_epoch == self.scheduler.index_epoch
            ):
                # ``FastBankSched.push`` inlined: append the packed key
                # and bubble the cached minima (no heap churn).
                k = self._index_keyfn(request)
                keys = index.keys
                kbucket = keys.get(row)
                if kbucket is None:
                    kbucket = keys[row] = []
                kbucket.append(k)
                row_best = index.row_best
                rb = row_best.get(row)
                if rb is None or k < rb[0]:
                    entry = (k, request)
                    row_best[row] = entry
                    best = index.best
                    if best is None or k < best[0]:
                        index.best = entry
        else:
            self._kid_writes[kid].push(request)
            self._write_occupancy += 1
            self.total_writes += 1
            if (
                self._write_occupancy > self.config.write_drain_high
                and not self._draining_writes
            ):
                self._draining_writes = True
                cmd_probe = self._p_cmd
                if cmd_probe is not None:
                    cmd_probe.emit(
                        now, "dram.drain", on=1, writes=self._write_occupancy
                    )
            hook = self._hook_enqueue
            if hook is not None:
                hook(request, now)
        guard = self.guard
        if guard is not None:
            guard.on_enqueue(request, now)
        self._arm_enqueue_wake(kid, now, queue)

    def _arm_enqueue_wake(self, kid: int, now: int, queue) -> None:
        """Arm the post-enqueue bank wake, eliding wakes the python path
        provably wastes.

        The reference controller always schedules a wake at ``now``; when
        the bank is busy, that wake's only effect is to reschedule itself
        to the bank-free time (its pick/issue code never runs).  The bank
        cannot start another access between this enqueue and that wake —
        only this bank's own wake issues on it, and the wake-dedup slot
        holds at most one — so the rebound target is known *now*: arm the
        wake directly at ``busy_until``.  The elided wake would have fired
        immediately (before any later event allocates sequence numbers),
        so pushing its rebound here preserves the relative seq order of
        every surviving same-cycle wake — command streams stay
        bit-identical.  Each skipped push counts into ``events_elided``.
        """
        kid_wake = self._kid_wake
        pending = kid_wake[kid]
        if pending is None or pending > now:
            busy = self._busy_arr[kid]
            if busy <= now:
                kid_wake[kid] = now
                heappush(
                    queue._heap, (now, 1, queue._seq, self._wake_kid_cb, kid)
                )
                queue._seq += 1
            elif pending == busy:
                # A wake is already armed exactly at the bank-free time.
                # Unless this event already elided for the bank (in which
                # case the python path's immediate is still pending and it
                # enqueues as a pure no-op), the python path spends an
                # immediate wake plus the superseded duplicate its rebound
                # leaves behind — both dead.  The duplicate is deferred:
                # it only counts if the armed wake actually fires.
                cur = queue.now_seq
                if self._kid_elide_seq[kid] != cur:
                    self._kid_elide_seq[kid] = cur
                    self._kid_dup[kid] += 1
                    self.events_elided += 1
                    if self._phantom_seq == cur:
                        self._phantom_count += 1
                    else:
                        self._phantom_seq = cur
                        self._phantom_count = 1
            else:
                kid_wake[kid] = busy
                heappush(
                    queue._heap, (busy, 1, queue._seq, self._wake_kid_cb, kid)
                )
                queue._seq += 1
                cur = queue.now_seq
                self._kid_elide_seq[kid] = cur
                self.events_elided += 1
                if self._phantom_seq == cur:
                    self._phantom_count += 1
                else:
                    self._phantom_seq = cur
                    self._phantom_count = 1

    def fast_access(
        self,
        thread_id: int,
        address: int,
        is_write: bool,
        fn: Callable | None,
        arg: object,
    ) -> None:
        """Closure-free read entry point: decode, request construction and
        the read half of :meth:`enqueue` fused into one frame (cores call
        this once per read — see ``Core._send``).  On completion the
        controller calls ``fn(arg)`` directly.

        Requests are built by direct slot stores instead of the dataclass
        ``__init__`` — the generated initializer plus ``__post_init__``
        costs ~1µs per request, a measurable slice of the fast backend's
        per-read budget.  ``test_fastsim`` pins this field-for-field
        against the dataclass constructor.  Writes (only the cache
        hierarchy sends them here) fall back to the generic path.
        """
        coords = self._coords.get(address)
        if coords is None:
            # ``AddressMapping.map`` inlined, minus the DramCoordinates
            # object and the column (which the controller never uses).
            line = (address // 64) // self._cpr
            nbk = self._nbk
            channel = line % self._nch
            line //= self._nch
            bank = line % nbk
            row = line // nbk
            if self._xor:
                bank ^= row % nbk
            self._coords[address] = (channel, bank, row)
        else:
            channel, bank, row = coords
        if is_write:
            request = MemoryRequest(
                thread_id=thread_id,
                address=address,
                channel=channel,
                bank=bank,
                row=row,
                type=_WRITE,
            )
            request.on_complete = fn
            request.on_complete_arg = arg
            self.enqueue(request)
            return
        queue = self.queue
        now = queue.now
        request = MemoryRequest.__new__(MemoryRequest)
        request.thread_id = thread_id
        request.address = address
        request.channel = channel
        request.bank = bank
        request.row = row
        request.type = _READ
        request.arrival_time = now
        request.request_id = next(_request_ids)
        request.issue_time = None
        request.completion_time = None
        request.marked = False
        request.priority_level = 1
        request.virtual_finish = 0.0
        request.on_complete = fn
        request.on_complete_arg = arg
        request.service_outcome = None
        request.is_read = True
        # -- read half of ``enqueue``, inlined ----------------------------
        kid = channel * self._num_banks + bank
        probe = self._p_req
        if probe is not None:
            probe.emit(
                now,
                "request.enqueue",
                req=self._rid(request),
                thread=thread_id,
                ch=channel,
                bank=bank,
                row=row,
                rw="R",
            )
        index = self._kid_reads[kid]
        rows = index.rows
        bucket = rows.get(row)
        if bucket is None:
            bucket = rows[row] = []
        request.buf_pos = len(bucket)
        bucket.append(request)
        counts = index.thread_counts
        counts[thread_id] = counts.get(thread_id, 0) + 1
        index.size += 1
        self._reads_per_thread[thread_id] += 1
        occupancy = self.read_occupancy + 1
        self.read_occupancy = occupancy
        if occupancy > self.peak_read_occupancy:
            self.peak_read_occupancy = occupancy
        self.total_reads += 1
        hook = self._hook_enqueue
        if hook is not None:
            hook(request, now)
        if self._use_index and index.heap_epoch == self.scheduler.index_epoch:
            # ``FastBankSched.push`` inlined (see ``enqueue``).
            k = self._index_keyfn(request)
            keys = index.keys
            kbucket = keys.get(row)
            if kbucket is None:
                kbucket = keys[row] = []
            kbucket.append(k)
            row_best = index.row_best
            rb = row_best.get(row)
            if rb is None or k < rb[0]:
                entry = (k, request)
                row_best[row] = entry
                best = index.best
                if best is None or k < best[0]:
                    index.best = entry
        guard = self.guard
        if guard is not None:
            guard.on_enqueue(request, now)
        # ``_arm_enqueue_wake`` inlined (cores call this once per read).
        kid_wake = self._kid_wake
        pending = kid_wake[kid]
        if pending is None or pending > now:
            busy = self._busy_arr[kid]
            if busy <= now:
                kid_wake[kid] = now
                heappush(
                    queue._heap, (now, 1, queue._seq, self._wake_kid_cb, kid)
                )
                queue._seq += 1
            elif pending == busy:
                cur = queue.now_seq
                if self._kid_elide_seq[kid] != cur:
                    self._kid_elide_seq[kid] = cur
                    self._kid_dup[kid] += 1
                    self.events_elided += 1
                    if self._phantom_seq == cur:
                        self._phantom_count += 1
                    else:
                        self._phantom_seq = cur
                        self._phantom_count = 1
            else:
                kid_wake[kid] = busy
                heappush(
                    queue._heap, (busy, 1, queue._seq, self._wake_kid_cb, kid)
                )
                queue._seq += 1
                cur = queue.now_seq
                self._kid_elide_seq[kid] = cur
                self.events_elided += 1
                if self._phantom_seq == cur:
                    self._phantom_count += 1
                else:
                    self._phantom_seq = cur
                    self._phantom_count = 1

    def _wake_kid(self, kid: int) -> None:
        """Fused wake → try-issue → pick → issue for bank ``kid``."""
        queue = self.queue
        now = queue.now
        kid_wake = self._kid_wake
        if kid_wake[kid] != now:
            return  # superseded leftover; an earlier wake already ran
        kid_wake[kid] = None
        dups = self._kid_dup[kid]
        if dups:
            # The python path processes its superseded duplicates at this
            # same firing time; they are now provably spent.
            self.events_elided += dups
            self._kid_dup[kid] = 0
        busy_until = self._busy_arr[kid]
        if busy_until > now:
            kid_wake[kid] = busy_until
            heappush(
                queue._heap, (busy_until, 1, queue._seq, self._wake_kid_cb, kid)
            )
            queue._seq += 1
            return
        key = self._kid_key[kid]
        index = self._kid_reads[kid]
        if self._write_occupancy:
            writes = self._kid_writes[kid]
            has_writes = writes.size > 0
        else:
            writes = None
            has_writes = False
        if index.size == 0 and not has_writes:
            return
        # -- command-bus slot ---------------------------------------------
        # Hoisted above the pick: the slot condition is independent of the
        # arbitration outcome, and policy select paths are pure modulo
        # memoization (verify arbitration mode already calls them twice
        # per decision), so when the slot is booked the reference's
        # pick-then-discard is skipped wholesale and the bank re-arms at
        # the slot exactly as the reference does.  Guarded by the
        # emptiness check above: an empty bank returns without re-arming
        # on both backends.
        channel_id = key[0]
        lastcmd = self._lastcmd_arr
        slot = lastcmd[channel_id] + self._tCK
        if slot > now:
            # ``kid_wake[kid]`` was just cleared, so the pending-wake
            # test of the reference path is vacuously true here.
            kid_wake[kid] = slot
            heappush(
                queue._heap, (slot, 1, queue._seq, self._wake_kid_cb, kid)
            )
            queue._seq += 1
            return
        # -- pick (reference ``_pick`` inlined) ---------------------------
        if has_writes and self._draining_writes:
            request = writes.peek()
        else:
            request = None
        if request is None:
            size = index.size
            if size == 1 and not self._verify_index:
                # Forced decision: with exactly one buffered read, every
                # policy returns it — skip arbitration entirely (no
                # refresh_index, no epoch check, no key rebuild).  Policy
                # select paths must be pure modulo memoization (verify
                # arbitration mode already calls them twice per decision),
                # so the skipped consultation has no observable effect;
                # scheduler epoch state re-derives at the next contended
                # arbitration from the same counters the reference backend
                # sees there, and a stale key array is dropped exactly on
                # removal (see the inlined remove below).
                for bucket in index.rows.values():
                    request = bucket[0]
                    break
            elif size > 0:
                if self._use_index:
                    sched = self.scheduler
                    if self._generic_select:
                        # ``Scheduler.select_indexed`` on the packed
                        # kernel: two cached-minimum reads plus (at most)
                        # one shifted int compare.
                        refresh = self._refresh_index
                        if refresh is not None:
                            refresh(now)
                        if index.heap_epoch != sched.index_epoch:
                            index.ensure(sched)
                            probe = sched._p_sched
                            if probe is not None:
                                probe.emit(
                                    now,
                                    "sched.rqindex_rebuild",
                                    ch=key[0],
                                    bank=key[1],
                                    epoch=sched.index_epoch,
                                    size=index.size,
                                )
                        best = index.best
                        row = self._openrow_arr[kid]
                        if row is None or not self._uses_row:
                            request = best[1]
                        else:
                            hit = index.row_best.get(row)
                            if hit is None or hit is best:
                                request = best[1]
                            elif self._packed_keys:
                                # Read live, never cached: STFM flips its
                                # prefix when it toggles between fair mode
                                # (shift above the age bits) and FR-FCFS
                                # mode (None: a hit always wins).
                                shift = sched.pack_prefix_shift
                                if shift is None or (hit[0] >> shift) == (
                                    best[0] >> shift
                                ):
                                    request = hit[1]
                                else:
                                    request = best[1]
                            else:
                                # Tuple-key fallback (no pack_key): same
                                # prefix rule as the reference index.
                                prefix = sched.index_prefix_len
                                if (
                                    prefix == 0
                                    or hit[0][:prefix] == best[0][:prefix]
                                ):
                                    request = hit[1]
                                else:
                                    request = best[1]
                    else:
                        request = sched.select_indexed(
                            index, key, now, self._openrow_arr[kid]
                        )
                    if self._verify_index:
                        self._verify_pick(index, key, now, request)
                else:
                    request = self.scheduler.select(
                        list(index.requests()), key, now
                    )
            elif has_writes:
                request = writes.peek()
            else:
                return
        # Slot availability was checked before the pick; book it now.
        lastcmd[channel_id] = now
        # -- issue (reference ``_issue`` fused) ---------------------------
        guard = self.guard
        if guard is not None:
            guard.on_pre_issue(request, key, now)
        if request.is_read:
            # ``FastBankSched.remove`` inlined: exact swap-pop of the row
            # bucket and its parallel key array; a cached minimum is
            # rebuilt (one C-level ``min`` over ints) only when the issued
            # request held it.
            row = request.row
            rows = index.rows
            bucket = rows[row]
            pos = request.buf_pos
            last = bucket.pop()
            if last is not request:
                bucket[pos] = last
                last.buf_pos = pos
            request.buf_pos = -1
            counts = index.thread_counts
            tid = request.thread_id
            remaining = counts[tid] - 1
            if remaining:
                counts[tid] = remaining
            else:
                del counts[tid]
            index.size -= 1
            keys = index.keys
            kbucket = keys.get(row)
            if kbucket is not None:
                if len(kbucket) == len(bucket) + 1:
                    klast = kbucket.pop()
                    if last is not request:
                        kbucket[pos] = klast
                else:
                    # Desynced since an epoch bump (pushes were skipped);
                    # the pending ensure() rebuilds keys and minima.
                    del keys[row]
                    index.row_best.pop(row, None)
                    kbucket = None
            row_best = index.row_best
            if not bucket:
                del rows[row]
                keys.pop(row, None)
                row_best.pop(row, None)
            else:
                rb = row_best.get(row)
                if rb is not None and rb[1] is request:
                    if kbucket:
                        index.min_rebuilds += 1
                        m = min(kbucket)
                        row_best[row] = (m, bucket[kbucket.index(m)])
                    else:
                        row_best.pop(row, None)
            best = index.best
            if best is not None and best[1] is request:
                index.best = min(row_best.values()) if row_best else None
            self._reads_per_thread[tid] -= 1
            self.read_occupancy -= 1
        else:
            self._kid_writes[kid].remove(request)
            self._write_occupancy -= 1
            if (
                self._write_occupancy <= self._drain_low
                and self._draining_writes
            ):
                self._draining_writes = False
                cmd_probe = self._p_cmd
                if cmd_probe is not None:
                    cmd_probe.emit(
                        now, "dram.drain", on=0, writes=self._write_occupancy
                    )
        request.issue_time = now
        # -- timing kernel (``FastDramState.service_tuple`` inlined) ------
        # ``start == now``: the prologue already returned when the bank was
        # busy past ``now``, so the kernel's busy-until clamp is dead here.
        row = request.row
        openrow_arr = self._openrow_arr
        open_row = openrow_arr[kid]
        cursor = now
        precharge_at = None
        activate_at = None
        if open_row is None:
            row_result = "closed"
            bound = self._wrec_arr[kid]
            if bound > cursor:
                cursor = bound
            self._activate_arr[kid] = cursor
            activate_at = cursor
            cursor += self._tRCD
        elif open_row == row:
            row_result = "hit"
            self._rowhits_arr[kid] += 1
        else:
            row_result = "conflict"
            bound = self._activate_arr[kid] + self._tRAS
            if bound > cursor:
                cursor = bound
            bound = self._wrec_arr[kid]
            if bound > cursor:
                cursor = bound
            precharge_at = cursor
            cursor += self._tRP
            activate_at = cursor
            cursor += self._tRCD
            self._activate_arr[kid] = activate_at
            self._rowconf_arr[kid] += 1
        cas_at = cursor
        cas_done = cursor + self._tCL
        busfree_arr = self._busfree_arr
        free_at = busfree_arr[channel_id]
        data_start = cas_done if cas_done >= free_at else free_at
        tbus = self._tBUS
        completion = data_start + tbus
        busfree_arr[channel_id] = completion
        self._busbusy_arr[channel_id] += tbus
        self._buswait_arr[channel_id] += data_start - cas_done
        self._bustrans_arr[channel_id] += 1
        openrow_arr[kid] = row
        self._busy_arr[kid] = completion
        if not request.is_read:
            self._wrec_arr[kid] = completion + self._tWR
        self._acc_arr[kid] += 1
        # -- end of inlined kernel ----------------------------------------
        # Keep the object model's row buffer current: scan-mode selects,
        # ``Scheduler._row_hit`` and the stall report read it mid-run.
        self._kid_bank[kid].open_row = row
        log = self.command_log
        if self._issue_lean:
            # Nothing attached (no guard, tracer, telemetry or outcome
            # consumer): one pre-bound flag replaces the five
            # probe-or-None checks of the full epilogue below.  Only the
            # command log stays a live check — verify mode enables it
            # after construction.
            if log is not None:
                tup = (
                    now,
                    data_start,
                    completion,
                    completion,
                    row_result,
                    precharge_at,
                    activate_at,
                    cas_at,
                )
                request.service_outcome = AccessOutcome(*tup)
                # ``tup`` field order is ``AccessOutcome.as_tuple()``.
                log.append(
                    (
                        now,
                        self._rid(request),
                        request.thread_id,
                        request.channel,
                        request.bank,
                        request.row,
                        request.is_read,
                    )
                    + tup
                )
        else:
            if self._want_outcome or log is not None:
                tup = (
                    now,
                    data_start,
                    completion,
                    completion,
                    row_result,
                    precharge_at,
                    activate_at,
                    cas_at,
                )
                request.service_outcome = AccessOutcome(*tup)
            if self._mirror_bus:
                fast = self.fast
                bank = self._kid_bank[kid]
                bank.busy_until = completion
                bus = self.channels[channel_id].bus
                bus.free_at = fast.bus_free[channel_id]
                bus.busy_cycles = fast.bus_busy[channel_id]
                bus.transfers = fast.bus_transfers[channel_id]
                bus.wait_cycles = fast.bus_wait[channel_id]
            if guard is not None:
                guard.on_post_issue(
                    request, request.service_outcome, key, now
                )
            probe = self._p_req
            if probe is not None:
                probe.emit(
                    now,
                    "request.issue",
                    req=self._rid(request),
                    thread=request.thread_id,
                    ch=request.channel,
                    bank=request.bank,
                    row=request.row,
                    result=row_result,
                    queued=now - request.arrival_time,
                )
            cmd_probe = self._p_cmd
            if cmd_probe is not None:
                self._emit_cmds(request, request.service_outcome)
            if log is not None:
                # ``tup`` field order is ``AccessOutcome.as_tuple()``.
                log.append(
                    (
                        now,
                        self._rid(request),
                        request.thread_id,
                        request.channel,
                        request.bank,
                        request.row,
                        request.is_read,
                    )
                    + tup
                )

        tid = request.thread_id
        stats = self._stats_by_tid[tid]
        if stats is None:
            stats = self._stats_by_tid[tid] = self._stats(tid)
        if request.is_read:
            # ``ThreadMemStats.service_started`` inlined.
            in_service = stats.in_service
            if in_service > 0:
                span = now - stats._last_change
                stats.blp_integral += span * in_service
                stats.busy_time += span
            stats._last_change = now
            stats.in_service = in_service + 1
        if row_result == "hit":
            stats.row_hits += 1
        else:
            stats.row_conflicts += 1

        hook = self._hook_issue
        if hook is not None:
            hook(request, now)
        heap = queue._heap
        heappush(heap, (completion, 0, queue._seq, self._complete_cb, request))
        queue._seq += 1
        # The bank can take its next request once this access releases it
        # (``bank_free == completion`` in this timing model).
        pending = kid_wake[kid]
        if pending is None or pending > completion:
            kid_wake[kid] = completion
            heappush(heap, (completion, 1, queue._seq, self._wake_kid_cb, kid))
            queue._seq += 1

    def _complete(self, request: MemoryRequest) -> None:
        queue = self.queue
        now = queue.now
        request.completion_time = now
        tid = request.thread_id
        stats = self._stats_by_tid[tid]
        if stats is None:
            stats = self._stats_by_tid[tid] = self._stats(tid)
        if request.is_read:
            # ``ThreadMemStats.service_finished`` inlined.
            in_service = stats.in_service
            if in_service > 0:
                span = now - stats._last_change
                stats.blp_integral += span * in_service
                stats.busy_time += span
            stats._last_change = now
            stats.in_service = in_service - 1
            stats.reads += 1
        else:
            stats.writes += 1
        latency = now - request.arrival_time + self._overhead
        stats.latency_sum += latency
        if latency > stats.latency_max:
            stats.latency_max = latency
        if not self._complete_lean:
            if self._complete_hook_only:
                self._hook_complete(request, now)
            else:
                telemetry = self.telemetry
                if telemetry is not None:
                    telemetry.record_latency(request.thread_id, latency)
                probe = self._p_req
                if probe is not None:
                    probe.emit(
                        now,
                        "request.complete",
                        req=self._rid(request),
                        thread=request.thread_id,
                        ch=request.channel,
                        bank=request.bank,
                        latency=latency,
                    )
                guard = self.guard
                if guard is not None:
                    guard.on_complete(request, now)
                hook = self._hook_complete
                if hook is not None:
                    hook(request, now)
        callback = request.on_complete
        if callback is not None:
            arg = request.on_complete_arg
            heappush(
                queue._heap,
                (
                    now + self._overhead,
                    2,
                    queue._seq,
                    callback,
                    request if arg is None else arg,
                ),
            )
            queue._seq += 1

    # The wake machinery is fully replaced; route any stray caller of the
    # reference entry points (tests, subclasses) through the fast one.
    def _schedule_wake(self, key: tuple[int, int], when: int) -> None:
        kid = key[0] * self._num_banks + key[1]
        pending = self._kid_wake[kid]
        if pending is not None and pending <= when:
            return
        self._kid_wake[kid] = when
        queue = self.queue
        heappush(queue._heap, (when, 1, queue._seq, self._wake_kid_cb, kid))
        queue._seq += 1

    def _wake(self, key: tuple[int, int]) -> None:
        self._wake_kid(key[0] * self._num_banks + key[1])

    def _try_issue(self, key: tuple[int, int]) -> None:  # pragma: no cover
        raise NotImplementedError(
            "fast controller fuses _try_issue into _wake_kid"
        )

    def min_rebuilds(self) -> int:
        """Total cached-minimum rebuilds across every bank's arbitration
        kernel (see :class:`~repro.dram.fastsched.FastBankSched`)."""
        return sum(index.min_rebuilds for index in self._kid_reads)

    def finalize_elision(self) -> None:
        """End-of-run elision reconciliation (called by ``System.run``).

        The run loop exits as soon as the last core finishes, mid-cycle:
        immediate wakes the final event would have armed on the python
        path never get processed there, so the elisions recorded during
        that event must not count.  (Deferred duplicates need no fix-up —
        any still pending in ``_kid_dup`` were never counted.)
        """
        if self._phantom_seq == self.queue.now_seq:
            self.events_elided -= self._phantom_count
            self._phantom_seq = -2

    # ----------------------------------------------------------- interop
    def sync_state(self) -> None:
        """Flush array state back into the object model.

        Called at end of run (and before diagnostics) so reporting, the
        stall report and the verify harness read ``Bank`` / ``DataBus`` /
        ``Channel`` objects identical to a python-backend run.  Also
        rebuilds ``_bank_wake`` so queue diagnostics show pending wakes.
        """
        self.fast.sync_to(self.channels)
        self._bank_wake = {
            self._kid_key[kid]: when
            for kid, when in enumerate(self._kid_wake)
            if when is not None
        }


class FastDramPort:
    """Core-side adapter of the fast backend.

    ``fast_access`` — the closure-free per-read protocol carrying the
    completion callback as a pre-bound ``(fn, arg)`` pair — lives on the
    controller (decode, request construction and enqueue fused into one
    frame); the port binds it as an instance attribute so cores pick it up
    via ``getattr(memory, "fast_access")`` with zero extra indirection.
    """

    __slots__ = ("controller", "mapping", "fast_access")

    def __init__(
        self, controller: FastMemoryController, mapping: "AddressMapping"
    ) -> None:
        self.controller = controller
        self.mapping = mapping
        controller.install_mapping(mapping)
        self.fast_access = controller.fast_access

    def access(
        self,
        thread_id: int,
        address: int,
        is_write: bool,
        on_complete: Callable[[], None] | None,
    ) -> None:
        """Reference ``DramPort`` protocol (used by the cache hierarchy)."""
        controller = self.controller
        coords = controller._coords.get(address)
        if coords is None:
            mapped = self.mapping.map(address)
            coords = controller._coords[address] = (
                mapped.channel,
                mapped.bank,
                mapped.row,
            )
        request = MemoryRequest(
            thread_id=thread_id,
            address=address,
            channel=coords[0],
            bank=coords[1],
            row=coords[2],
            type=_WRITE if is_write else _READ,
        )
        if on_complete is not None:
            request.on_complete = lambda _req: on_complete()
        controller.enqueue(request)
