"""A DRAM channel: a set of banks sharing one data bus and command bus."""

from __future__ import annotations

from .bank import Bank
from .bus import DataBus
from .timing import DramTiming

__all__ = ["Channel"]


class Channel:
    """One independent DRAM channel.

    The command bus is modeled as a minimum inter-issue gap of one DRAM
    clock (``tCK``) between scheduling decisions on the same channel; the
    data bus is modeled explicitly by :class:`DataBus`.
    """

    def __init__(self, timing: DramTiming, num_banks: int, channel_id: int = 0) -> None:
        if num_banks < 1:
            raise ValueError("a channel needs at least one bank")
        self.timing = timing
        self.channel_id = channel_id
        self.banks = [Bank(timing, bank_id=i) for i in range(num_banks)]
        self.bus = DataBus(timing)
        self._last_command: int = -timing.tCK

    def command_slot(self, earliest: int) -> int:
        """Next command-bus slot at or after ``earliest``; consumes the slot."""
        slot = max(earliest, self._last_command + self.timing.tCK)
        self._last_command = slot
        return slot

    def next_command_time(self, earliest: int) -> int:
        """Next command-bus slot without consuming it."""
        return max(earliest, self._last_command + self.timing.tCK)

    def try_command_slot(self, now: int) -> int:
        """Consume the command-bus slot at ``now`` if one is free, returning
        ``now``; otherwise return the next free slot time, unconsumed.  One
        call where the issue path previously needed a peek plus a consume."""
        slot = self._last_command + self.timing.tCK
        if slot <= now:
            self._last_command = now
            return now
        return slot

    @property
    def num_banks(self) -> int:
        return len(self.banks)
