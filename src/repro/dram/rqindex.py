"""Incremental arbitration index over the controller's request buffers.

Every issue decision used to re-scan the whole per-bank read bucket with a
Python ``min()`` over freshly built key tuples, so arbitration cost grew
linearly with buffer occupancy even though a request's priority only
changes at discrete events — a batch forming, a rank table refresh, the
bank's open row changing.  (The Blacklisting Memory Scheduler paper makes
the same complexity argument against ranking-based schedulers in hardware;
this module answers it in software.)  The index replaces the scans with
incrementally maintained structures:

* **Row buckets** — each bank's buffered reads live in a ``row →
  requests`` dict, so the row-hit candidate set is an O(1) lookup of the
  bank's open row instead of a filter over the whole bucket.  The open row
  therefore never needs to appear inside a heap key, which is what keeps
  the heaps below valid across row-buffer changes.

* **Lazy-deletion heaps with an epoch protocol** — per bank, one heap over
  all buffered reads and one per row bucket, ordered by a
  scheduler-supplied priority key (:meth:`Scheduler.index_key
  <repro.schedulers.base.Scheduler.index_key>`).  Keys must be immutable
  while the scheduler's ``index_epoch`` stands still; when global priority
  state changes (PAR-BS batch formation or rank recompute, STFM
  fairness-mode flips) the scheduler bumps the epoch and a bank's heaps
  are rebuilt lazily, only when that bank next arbitrates.  Otherwise
  insert and extract are O(log n); issued requests are deleted lazily
  (skipped at ``peek`` time via ``buf_pos``), never searched for.

Write buffers need neither epochs nor row buckets: writes drain strictly
oldest-first under every policy, so :class:`WriteFifo` is a plain heap on
``(arrival_time, request_id)`` whose keys never go stale — the
controller's write-drain toggle only changes *which* structure is
consulted, not any key.

Selection semantics are defined by the schedulers' scan implementations;
see :meth:`Scheduler.select_indexed` for the prefix-comparison rule that
makes the two bit-identical, and ``tests/test_rqindex.py`` for the golden
equivalence harness that runs both side by side.

The fast backend swaps this heap-backed index for
:class:`~repro.dram.fastsched.FastBankSched` — same duck-typed API and
epoch protocol, but packed-integer sort keys and cached minima instead
of heaps; ``tests/test_fastsched.py`` fuzzes the two against each other
op for op.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Iterator

from .request import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..schedulers.base import Scheduler

__all__ = ["BankReadIndex", "WriteFifo"]


class BankReadIndex:
    """Buffered reads of one (channel, bank), row-bucketed and heap-indexed.

    Membership (``rows``/``size``/``thread_counts``) is always exact; the
    heaps are a cache over it, valid for the scheduler epoch recorded in
    ``heap_epoch`` and rebuilt on demand by :meth:`ensure`.
    """

    __slots__ = ("rows", "size", "thread_counts", "heap", "row_heaps", "heap_epoch")

    def __init__(self) -> None:
        # row -> requests holding that row (order inside a bucket carries no
        # meaning; removal is swap-pop via ``request.buf_pos``).
        self.rows: dict[int, list[MemoryRequest]] = {}
        self.size = 0
        # thread_id -> buffered request count (lets STFM find interference
        # victims without scanning the bucket).
        self.thread_counts: dict[int, int] = {}
        # Lazy-deletion heaps of (priority_key, request) entries.  Keys end
        # in the unique request_id, so entries never compare requests.
        self.heap: list[tuple[tuple, MemoryRequest]] = []
        self.row_heaps: dict[int, list[tuple[tuple, MemoryRequest]]] = {}
        self.heap_epoch = -1  # epoch the heaps were built for (-1: never)

    # -- membership --------------------------------------------------------
    def add(self, request: MemoryRequest) -> None:
        """Insert ``request`` into its row bucket (heaps unaffected; call
        :meth:`push` once the scheduler has stamped its priority fields)."""
        bucket = self.rows.get(request.row)
        if bucket is None:
            bucket = self.rows[request.row] = []
        request.buf_pos = len(bucket)
        bucket.append(request)
        counts = self.thread_counts
        counts[request.thread_id] = counts.get(request.thread_id, 0) + 1
        self.size += 1

    def remove(self, request: MemoryRequest) -> None:
        """Swap-pop ``request`` out of its row bucket in O(1).

        Heap entries are not touched: ``buf_pos`` drops to -1, which marks
        them dead for lazy deletion at the next :meth:`peek`.
        """
        row = request.row
        bucket = self.rows[row]
        last = bucket.pop()
        if last is not request:
            bucket[request.buf_pos] = last
            last.buf_pos = request.buf_pos
        request.buf_pos = -1
        if not bucket:
            # The emptied bucket's heap holds only dead entries; drop both
            # so a later request to the same row starts fresh.
            del self.rows[row]
            self.row_heaps.pop(row, None)
        counts = self.thread_counts
        remaining = counts[request.thread_id] - 1
        if remaining:
            counts[request.thread_id] = remaining
        else:
            del counts[request.thread_id]
        self.size -= 1

    def requests(self) -> Iterator[MemoryRequest]:
        """Iterate every buffered request (row buckets, arbitrary order)."""
        for bucket in self.rows.values():
            yield from bucket

    # -- heap maintenance --------------------------------------------------
    def push(self, request: MemoryRequest, scheduler: "Scheduler") -> None:
        """Index a newly buffered request under the scheduler's current
        epoch.  If the heaps are already stale, skip — the next
        :meth:`ensure` rebuilds them from membership anyway."""
        if self.heap_epoch != scheduler.index_epoch:
            return
        entry = (scheduler.index_key(request), request)
        heappush(self.heap, entry)
        row_heap = self.row_heaps.get(request.row)
        if row_heap is None:
            row_heap = self.row_heaps[request.row] = []
        heappush(row_heap, entry)

    def ensure(self, scheduler: "Scheduler") -> None:
        """Rebuild the heaps if the scheduler's epoch moved on."""
        if self.heap_epoch == scheduler.index_epoch:
            return
        key = scheduler.index_key
        row_heaps: dict[int, list[tuple[tuple, MemoryRequest]]] = {}
        all_entries: list[tuple[tuple, MemoryRequest]] = []
        for row, bucket in self.rows.items():
            entries = [(key(r), r) for r in bucket]
            all_entries.extend(entries)
            heapify(entries)
            row_heaps[row] = entries
        heapify(all_entries)
        self.heap = all_entries
        self.row_heaps = row_heaps
        self.heap_epoch = scheduler.index_epoch

    # -- queries -----------------------------------------------------------
    def peek(self) -> tuple[tuple, MemoryRequest] | None:
        """Minimum-key live entry over the whole bank, or None if empty."""
        heap = self.heap
        while heap:
            entry = heap[0]
            if entry[1].buf_pos >= 0:
                return entry
            heappop(heap)
        return None

    def peek_row(self, row: int) -> tuple[tuple, MemoryRequest] | None:
        """Minimum-key live entry among requests targeting ``row``."""
        heap = self.row_heaps.get(row)
        if heap is None:
            return None
        while heap:
            entry = heap[0]
            if entry[1].buf_pos >= 0:
                return entry
            heappop(heap)
        return None


class WriteFifo:
    """Buffered writes of one (channel, bank), drained oldest-first.

    A heap on ``(arrival_time, request_id)`` — the one total order every
    policy uses for writes — so the drain candidate is a peek instead of a
    ``min()`` scan.  ``buf_pos`` doubles as the liveness flag, mirroring
    :class:`BankReadIndex`.
    """

    __slots__ = ("heap", "size")

    def __init__(self) -> None:
        self.heap: list[tuple[int, int, MemoryRequest]] = []
        self.size = 0

    def push(self, request: MemoryRequest) -> None:
        request.buf_pos = 0
        heappush(self.heap, (request.arrival_time, request.request_id, request))
        self.size += 1

    def remove(self, request: MemoryRequest) -> None:
        request.buf_pos = -1
        self.size -= 1

    def peek(self) -> MemoryRequest:
        heap = self.heap
        while heap:
            request = heap[0][2]
            if request.buf_pos >= 0:
                return request
            heappop(heap)
        raise IndexError("peek on an empty write buffer")

    def requests(self) -> Iterator[MemoryRequest]:
        """Iterate live buffered writes (arbitrary order)."""
        return (entry[2] for entry in self.heap if entry[2].buf_pos >= 0)
