"""DRAM substrate: timing, banks, buses, channels and the memory controller."""

from .address import AddressMapping, DramCoordinates
from .bank import AccessOutcome, Bank
from .bus import DataBus
from .channel import Channel
from .controller import MemoryController, ThreadMemStats
from .request import MemoryRequest, RequestType
from .timing import DramTiming, ddr2_800

__all__ = [
    "AddressMapping",
    "DramCoordinates",
    "AccessOutcome",
    "Bank",
    "DataBus",
    "Channel",
    "MemoryController",
    "ThreadMemStats",
    "MemoryRequest",
    "RequestType",
    "DramTiming",
    "ddr2_800",
]
