"""Flat-array DRAM timing kernel for the fast simulation backend.

:class:`FastDramState` holds the timing state of *every* bank and channel
of the memory system in flat parallel arrays — open row, busy-until,
activate time, write recovery, per-channel bus occupancy and command-slot
state — indexed by the global bank id ``kid = channel * num_banks + bank``.
The per-access :meth:`service` method implements exactly the command-layout
math of :meth:`Bank.service <repro.dram.bank.Bank.service>` +
:meth:`DataBus.reserve <repro.dram.bus.DataBus.reserve>`, but against array
slots instead of object attribute chains, which is what the fast
controller's fused issue path runs on.

Vectorized queries (``next_bank_ready``, ``busy_until_array``,
``bank_state_matrix``) are answered with numpy min/mask operations when
numpy is available; the scalar per-access path deliberately stays on plain
Python lists — at the paper's 8 banks/channel, numpy's per-element indexing
overhead costs more than it saves, while ``lst[kid]`` is both flat and
cheap.  The arrays are the state of record while a fast run is in flight;
:meth:`sync_to` writes them back into the :class:`~repro.dram.bank.Bank` /
:class:`~repro.dram.bus.DataBus` objects so reporting, diagnostics and the
verify harness read the same end state either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .bank import AccessOutcome

if TYPE_CHECKING:  # pragma: no cover
    from .channel import Channel
    from .timing import DramTiming

try:  # Vectorized helpers only; the scalar hot path never needs numpy.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

__all__ = ["FastDramState", "HAVE_NUMPY"]

HAVE_NUMPY = _np is not None

# Mirrors Bank.__init__: "never activated" sentinel for the tRAS bound.
_NEVER_ACTIVATED = -(10**9)


class FastDramState:
    """All-bank/all-channel DRAM timing state in flat parallel arrays."""

    __slots__ = (
        "timing",
        "num_channels",
        "num_banks",
        # Timing scalars, lifted off the config object for the hot kernel.
        "_tRCD",
        "_tCL",
        "_tRP",
        "_tRAS",
        "_tWR",
        "_tBUS",
        # Per-bank arrays, indexed by kid = channel * num_banks + bank.
        "open_row",
        "busy_until",
        "activate_time",
        "write_recovery",
        "accesses",
        "row_hits",
        "row_conflicts",
        # Per-channel arrays.
        "bus_free",
        "bus_busy",
        "bus_transfers",
        "bus_wait",
        "last_command",
    )

    def __init__(
        self, timing: "DramTiming", num_channels: int, num_banks: int
    ) -> None:
        self.timing = timing
        self.num_channels = num_channels
        self.num_banks = num_banks
        self._tRCD = timing.tRCD
        self._tCL = timing.tCL
        self._tRP = timing.tRP
        self._tRAS = timing.tRAS
        self._tWR = timing.tWR
        self._tBUS = timing.tBUS
        n = num_channels * num_banks
        self.open_row: list[int | None] = [None] * n
        self.busy_until: list[int] = [0] * n
        self.activate_time: list[int] = [_NEVER_ACTIVATED] * n
        self.write_recovery: list[int] = [0] * n
        self.accesses: list[int] = [0] * n
        self.row_hits: list[int] = [0] * n
        self.row_conflicts: list[int] = [0] * n
        self.bus_free: list[int] = [0] * num_channels
        self.bus_busy: list[int] = [0] * num_channels
        self.bus_transfers: list[int] = [0] * num_channels
        self.bus_wait: list[int] = [0] * num_channels
        self.last_command: list[int] = [-timing.tCK] * num_channels

    # -- the per-access timing kernel --------------------------------------
    def service(
        self, kid: int, channel_id: int, row: int, is_write: bool, now: int
    ) -> AccessOutcome:
        """Service one request on bank ``kid``: bit-identical to
        ``Bank.service`` + ``DataBus.reserve`` against the arrays."""
        return AccessOutcome(*self.service_tuple(kid, channel_id, row, is_write, now))

    def service_tuple(
        self, kid: int, channel_id: int, row: int, is_write: bool, now: int
    ) -> tuple:
        """:meth:`service` returning the raw timeline tuple.

        The tuple field order is exactly ``AccessOutcome.as_tuple()`` —
        ``(start, data_start, completion, bank_free, row_result,
        precharge_at, activate_at, cas_at)`` — so the fast controller can
        consume timestamps as tuple indexes and construct the
        :class:`AccessOutcome` object only when something (guard, tracer,
        an outcome-reading scheduler, the command log) will read it.
        """
        busy_until = self.busy_until[kid]
        start = now if now >= busy_until else busy_until
        open_row = self.open_row[kid]

        cursor = start
        precharge_at: int | None = None
        activate_at: int | None = None
        if open_row is None:
            row_result = "closed"
            bound = self.write_recovery[kid]
            if bound > cursor:
                cursor = bound
            self.activate_time[kid] = cursor
            activate_at = cursor
            cursor += self._tRCD
        elif open_row == row:
            row_result = "hit"
            self.row_hits[kid] += 1
        else:
            row_result = "conflict"
            bound = self.activate_time[kid] + self._tRAS
            if bound > cursor:
                cursor = bound
            bound = self.write_recovery[kid]
            if bound > cursor:
                cursor = bound
            precharge_at = cursor
            cursor += self._tRP
            activate_at = cursor
            cursor += self._tRCD
            self.activate_time[kid] = activate_at
            self.row_conflicts[kid] += 1

        cas_at = cursor
        cas_done = cursor + self._tCL
        # Bus reservation (DataBus.reserve inlined).
        free_at = self.bus_free[channel_id]
        data_start = cas_done if cas_done >= free_at else free_at
        tbus = self._tBUS
        self.bus_free[channel_id] = data_start + tbus
        self.bus_busy[channel_id] += tbus
        self.bus_wait[channel_id] += data_start - cas_done
        self.bus_transfers[channel_id] += 1
        completion = data_start + tbus

        self.open_row[kid] = row
        self.busy_until[kid] = completion
        if is_write:
            self.write_recovery[kid] = completion + self._tWR
        self.accesses[kid] += 1

        return (
            start,
            data_start,
            completion,
            completion,
            row_result,
            precharge_at,
            activate_at,
            cas_at,
        )

    def try_command_slot(self, channel_id: int, now: int) -> int:
        """``Channel.try_command_slot`` against the flat command-slot array."""
        slot = self.last_command[channel_id] + self.timing.tCK
        if slot <= now:
            self.last_command[channel_id] = now
            return now
        return slot

    # -- vectorized queries ------------------------------------------------
    def busy_until_array(self):
        """Per-bank busy-until times as a numpy vector (or a list copy)."""
        if _np is not None:
            return _np.asarray(self.busy_until, dtype=_np.int64)
        return list(self.busy_until)

    def next_bank_ready(self, now: int) -> int | None:
        """Earliest future cycle any bank becomes ready (skip-ahead bound).

        A vectorized mask + min over the busy-until array; ``None`` when
        every bank is already idle at ``now``.
        """
        if _np is not None:
            arr = _np.asarray(self.busy_until, dtype=_np.int64)
            future = arr[arr > now]
            return int(future.min()) if future.size else None
        future = [b for b in self.busy_until if b > now]
        return min(future) if future else None

    def bank_state_matrix(self):
        """All per-bank state as one (num_banks_total, 6) integer matrix
        (open rows encoded as -1 when closed); rows align with
        ``Bank.state_tuple`` minus the row-result string."""
        rows = [-1 if r is None else r for r in self.open_row]
        columns = [
            rows,
            self.busy_until,
            self.activate_time,
            self.write_recovery,
            self.accesses,
            self.row_hits,
        ]
        if _np is not None:
            return _np.asarray(columns, dtype=_np.int64).T
        return [list(col) for col in zip(*columns)]

    # -- verify / reporting interop ---------------------------------------
    def state_tuple(self, kid: int) -> tuple:
        """Bank ``kid``'s state, aligned with ``Bank.state_tuple``."""
        return (
            self.open_row[kid],
            self.busy_until[kid],
            self.activate_time[kid],
            self.write_recovery[kid],
            self.accesses[kid],
            self.row_hits[kid],
            self.row_conflicts[kid],
        )

    def bus_state_tuple(self, channel_id: int) -> tuple:
        """Channel ``channel_id``'s bus state, aligned with
        ``DataBus.state_tuple``."""
        return (
            self.bus_free[channel_id],
            self.bus_busy[channel_id],
            self.bus_transfers[channel_id],
            self.bus_wait[channel_id],
        )

    def sync_to(self, channels: "list[Channel]") -> None:
        """Write the array state back into the object model.

        Run at finalize (and before diagnostics) so every consumer of
        ``Bank`` / ``DataBus`` / ``Channel`` state — reporting, the stall
        report, the verify harness — sees exactly what the fast kernel
        computed.
        """
        num_banks = self.num_banks
        for channel_id, channel in enumerate(channels):
            base = channel_id * num_banks
            for bank_id, bank in enumerate(channel.banks):
                kid = base + bank_id
                bank.open_row = self.open_row[kid]
                bank.busy_until = self.busy_until[kid]
                bank._activate_time = self.activate_time[kid]
                bank._write_recovery_until = self.write_recovery[kid]
                bank.accesses = self.accesses[kid]
                bank.row_hits = self.row_hits[kid]
                bank.row_conflicts = self.row_conflicts[kid]
            bus = channel.bus
            bus.free_at = self.bus_free[channel_id]
            bus.busy_cycles = self.bus_busy[channel_id]
            bus.transfers = self.bus_transfers[channel_id]
            bus.wait_cycles = self.bus_wait[channel_id]
            channel._last_command = self.last_command[channel_id]
