"""DRAM bank model with a row buffer and DDR timing bookkeeping.

The controller schedules at *request* granularity: when a request is issued
to a bank, the bank lays out the full precharge/activate/CAS/burst command
sequence with proper DDR2 timing and reports when the data transfer
completes and when the bank can accept the next request.  (See DESIGN.md §4
for why this abstraction level is sufficient for the paper's evaluation.)
"""

from __future__ import annotations

from .bus import DataBus
from .request import MemoryRequest, RequestType
from .timing import DramTiming

__all__ = ["Bank", "AccessOutcome"]


class AccessOutcome:
    """Timeline of one serviced request.

    The per-command timestamps (``precharge_at`` / ``activate_at`` /
    ``cas_at``) expose the exact DDR command sequence the bank laid out, so
    the observability layer can emit PRE/ACT/RD/WR trace events without
    re-deriving timing constraints; they are ``None`` when the command was
    not needed for this access (e.g. no precharge on a row hit).

    A plain slotted class rather than a (frozen) dataclass: one outcome is
    allocated per issued request on the simulator's hottest path, and
    frozen-dataclass construction pays an ``object.__setattr__`` per field.
    """

    __slots__ = (
        "start",
        "data_start",
        "completion",
        "bank_free",
        "row_result",
        "precharge_at",
        "activate_at",
        "cas_at",
    )

    def __init__(
        self,
        start: int,  # first command issue time
        data_start: int,  # first beat on the data bus
        completion: int,  # last beat on the data bus (request done)
        bank_free: int,  # bank may start its next access
        row_result: str,  # "hit" | "closed" | "conflict"
        precharge_at: int | None = None,  # PRE command time (conflicts only)
        activate_at: int | None = None,  # ACT command time (misses only)
        cas_at: int = 0,  # RD/WR (CAS) command time
    ) -> None:
        self.start = start
        self.data_start = data_start
        self.completion = completion
        self.bank_free = bank_free
        self.row_result = row_result
        self.precharge_at = precharge_at
        self.activate_at = activate_at
        self.cas_at = cas_at

    def as_tuple(self) -> tuple:
        """The full timeline as a comparable tuple (verify harness)."""
        return (
            self.start,
            self.data_start,
            self.completion,
            self.bank_free,
            self.row_result,
            self.precharge_at,
            self.activate_at,
            self.cas_at,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AccessOutcome(start={self.start}, data_start={self.data_start}, "
            f"completion={self.completion}, bank_free={self.bank_free}, "
            f"row_result={self.row_result!r}, precharge_at={self.precharge_at}, "
            f"activate_at={self.activate_at}, cas_at={self.cas_at})"
        )


class Bank:
    """One DRAM bank: a row buffer plus timing state.

    Attributes
    ----------
    open_row:
        The row currently latched in the row buffer (``None`` when
        precharged / closed).
    busy_until:
        The bank cannot begin a new access before this time.
    """

    def __init__(self, timing: DramTiming, bank_id: int = 0) -> None:
        self.timing = timing
        self.bank_id = bank_id
        self.open_row: int | None = None
        self.busy_until: int = 0
        self._activate_time: int = -(10**9)  # last ACT, for tRAS
        self._write_recovery_until: int = 0  # earliest precharge after a write

        # Statistics.
        self.accesses: int = 0
        self.row_hits: int = 0
        self.row_conflicts: int = 0

    def row_state(self, row: int) -> str:
        """Classify an access to ``row``: ``hit``, ``closed`` or ``conflict``."""
        if self.open_row is None:
            return "closed"
        return "hit" if self.open_row == row else "conflict"

    def earliest_start(self, now: int) -> int:
        """Earliest time a new access could begin its first command."""
        busy_until = self.busy_until
        return now if now >= busy_until else busy_until

    def service(self, request: MemoryRequest, now: int, bus: DataBus) -> AccessOutcome:
        """Service ``request`` starting no earlier than ``now``.

        Lays out the command sequence implied by the current row-buffer
        state, reserves the shared data bus for the burst, updates the bank
        state, and returns the access timeline.
        """
        t = self.timing
        busy_until = self.busy_until
        start = now if now >= busy_until else busy_until
        row = request.row
        open_row = self.open_row
        row_result = (
            "closed" if open_row is None else ("hit" if open_row == row else "conflict")
        )

        cursor = start
        precharge_at: int | None = None
        activate_at: int | None = None
        if row_result == "conflict":
            # Precharge may not violate tRAS (row open time) or tWR.
            bound = self._activate_time + t.tRAS
            if bound > cursor:
                cursor = bound
            bound = self._write_recovery_until
            if bound > cursor:
                cursor = bound
            precharge_at = cursor
            cursor += t.tRP  # precharge done
            activate_at = cursor
            cursor += t.tRCD  # activate done
            self._activate_time = cursor - t.tRCD
            self.row_conflicts += 1
        elif row_result == "closed":
            bound = self._write_recovery_until
            if bound > cursor:
                cursor = bound
            self._activate_time = cursor
            activate_at = cursor
            cursor += t.tRCD
        else:
            self.row_hits += 1
        # CAS command: read/write latency until data.
        cas_done = cursor + t.tCL
        data_start = bus.reserve(cas_done)
        completion = data_start + t.tBUS

        self.open_row = row
        self.busy_until = completion
        if request.type is RequestType.WRITE:
            self._write_recovery_until = completion + t.tWR

        self.accesses += 1

        # Positional construction: keyword binding on this allocation is
        # measurable at one outcome per issued request.
        return AccessOutcome(
            start,
            data_start,
            completion,
            completion,
            row_result,
            precharge_at,
            activate_at,
            cas_done - t.tCL,
        )

    def state_tuple(self) -> tuple:
        """Complete bank state as a comparable tuple.

        Used by the fast-backend verify harness to assert that two
        simulations left every bank in bit-identical condition, and by
        :mod:`repro.dram.fastbank` tests to check the mirrored arrays.
        """
        return (
            self.open_row,
            self.busy_until,
            self._activate_time,
            self._write_recovery_until,
            self.accesses,
            self.row_hits,
            self.row_conflicts,
        )

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit in the row buffer."""
        return self.row_hits / self.accesses if self.accesses else 0.0
