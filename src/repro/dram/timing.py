"""DRAM timing parameters.

All values are expressed in CPU cycles.  The baseline preset follows the
paper's Table 2: a 4 GHz processor with Micron DDR2-800 timing
(tCL = tRCD = tRP = 15 ns, burst transfer BL/2 = 10 ns per 64-byte line over
a 64-bit channel).  At 4 GHz one nanosecond is 4 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DramTiming", "ddr2_800", "CPU_FREQ_GHZ"]

CPU_FREQ_GHZ = 4.0


@dataclass(frozen=True)
class DramTiming:
    """Timing constraints of a DRAM device, in CPU cycles.

    Attributes
    ----------
    tCK:
        DRAM command clock period.  The controller issues at most one
        command per channel per tCK.
    tCL:
        Column (CAS) latency: read command to first data.
    tRCD:
        Activate to read/write delay.
    tRP:
        Precharge latency (closing a row).
    tRAS:
        Minimum time a row must stay open between activate and precharge.
    tWR:
        Write recovery time (last write data to precharge).
    tBUS:
        Data-bus occupancy of one 64-byte burst (BL/2 in DDR terms).
    overhead:
        Fixed controller/interconnect overhead added to every request's
        round-trip latency (request arrival to first command eligibility is
        folded into this constant).
    """

    tCK: int = 10
    tCL: int = 60
    tRCD: int = 60
    tRP: int = 60
    tRAS: int = 180
    tWR: int = 60
    tBUS: int = 40
    overhead: int = 60

    def __post_init__(self) -> None:
        for name in ("tCK", "tCL", "tRCD", "tRP", "tRAS", "tWR", "tBUS", "overhead"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.tCK == 0:
            raise ValueError("tCK must be positive")

    # -- derived uncontended access latencies -----------------------------
    @property
    def row_hit_latency(self) -> int:
        """Bank time for a row-buffer hit (CAS only)."""
        return self.tCL

    @property
    def row_closed_latency(self) -> int:
        """Bank time when no row is open (activate + CAS)."""
        return self.tRCD + self.tCL

    @property
    def row_conflict_latency(self) -> int:
        """Bank time when another row is open (precharge + activate + CAS)."""
        return self.tRP + self.tRCD + self.tCL

    def round_trip(self, kind: str) -> int:
        """Uncontended round-trip latency of a read, by row-buffer outcome.

        ``kind`` is one of ``"hit"``, ``"closed"``, ``"conflict"``.
        """
        bank = {
            "hit": self.row_hit_latency,
            "closed": self.row_closed_latency,
            "conflict": self.row_conflict_latency,
        }[kind]
        return self.overhead + bank + self.tBUS


def ddr2_800() -> DramTiming:
    """The paper's baseline DDR2-800 timing at 4 GHz CPU cycles."""
    return DramTiming()
