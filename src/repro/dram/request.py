"""Memory request objects flowing from cores to the DRAM controller."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

__all__ = ["RequestType", "MemoryRequest"]

_request_ids = itertools.count()


class RequestType(Enum):
    """Read requests block the issuing core's commit; writes drain lazily."""

    READ = "read"
    WRITE = "write"


@dataclass(slots=True)
class MemoryRequest:
    """A single DRAM request (one 64-byte cache line).

    Scheduler-owned fields (``marked``, ``rank``, ``priority_level``,
    ``virtual_finish``) live on the request so that every scheduling policy
    in the paper can be expressed as a sort key over the request buffer,
    mirroring the priority-register implementation of Section 6.  Slotted:
    requests are the most-allocated and most-accessed objects in the
    simulator, and every field is known up front.
    """

    thread_id: int
    address: int
    channel: int
    bank: int
    row: int
    type: RequestType = RequestType.READ
    arrival_time: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))

    # Lifecycle timestamps, filled in by the controller.
    issue_time: int | None = None
    completion_time: int | None = None

    # Scheduler state.
    marked: bool = False
    priority_level: int = 1  # system-software thread priority (1 = highest)
    virtual_finish: float = 0.0  # NFQ virtual finish time

    # Completion callback (set by the core/cache that generated the request).
    on_complete: Callable[["MemoryRequest"], None] | None = None
    # Fast-backend calling convention: when set, the response event calls
    # ``on_complete(on_complete_arg)`` instead of ``on_complete(request)``,
    # letting cores pass a pre-bound (method, payload) pair with no closure.
    on_complete_arg: object | None = field(default=None, compare=False)

    # Position inside the controller's per-bank buffer (maintained by the
    # controller so issued requests can be removed by swap-pop in O(1)).
    buf_pos: int = field(default=-1, compare=False)

    # Filled by the controller at issue time with the bank's AccessOutcome;
    # lets schedulers (e.g. STFM) observe service durations.
    service_outcome: object | None = None

    # Derived once at construction: ``is_read`` is checked on every
    # controller hot path and ``type`` never changes after creation.
    is_read: bool = field(init=False, compare=False)

    def __post_init__(self) -> None:
        self.is_read = self.type is RequestType.READ

    @property
    def latency(self) -> int:
        """Arrival-to-completion latency; valid only after completion."""
        if self.completion_time is None:
            raise ValueError("request has not completed")
        return self.completion_time - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryRequest(id={self.request_id}, t{self.thread_id}, "
            f"{self.type.value}, ch{self.channel} b{self.bank} r{self.row}, "
            f"arr={self.arrival_time}, marked={self.marked})"
        )
