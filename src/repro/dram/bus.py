"""Shared per-channel DRAM data bus.

All banks on a channel share one data bus; each 64-byte burst occupies the
bus for ``tBUS`` cycles.  Bursts are serialized in reservation order, which
models the data-bus conflicts the paper lists as a source of inter-thread
interference.
"""

from __future__ import annotations

from .timing import DramTiming

__all__ = ["DataBus"]


class DataBus:
    """Earliest-free-time model of a shared burst-transfer bus."""

    def __init__(self, timing: DramTiming) -> None:
        self.timing = timing
        self.free_at: int = 0
        self.busy_cycles: int = 0
        self.transfers: int = 0
        # Cycles bursts were delayed behind earlier transfers — the direct
        # measure of data-bus contention, surfaced by the telemetry layer.
        self.wait_cycles: int = 0

    def reserve(self, earliest: int) -> int:
        """Reserve a burst slot starting no earlier than ``earliest``.

        Returns the actual start time of the burst and advances the bus
        state.
        """
        free_at = self.free_at
        start = earliest if earliest >= free_at else free_at
        tbus = self.timing.tBUS
        self.free_at = start + tbus
        self.busy_cycles += tbus
        self.wait_cycles += start - earliest
        self.transfers += 1
        return start

    def state_tuple(self) -> tuple:
        """Complete bus state as a comparable tuple (verify harness)."""
        return (self.free_at, self.busy_cycles, self.transfers, self.wait_cycles)

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the bus spent transferring data."""
        return self.busy_cycles / elapsed if elapsed > 0 else 0.0
