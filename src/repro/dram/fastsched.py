"""Flat-array arbitration kernel for the fast backend.

:class:`FastBankSched` is the fast backend's replacement for
:class:`~repro.dram.rqindex.BankReadIndex`.  It keeps the same membership
state (row buckets, size, per-thread counts) and the same duck-typed API
(``add``/``remove``/``push``/``ensure``/``peek``/``peek_row``/
``requests``/``heap_epoch``), so every reader of the controller's request
buffers — the batcher's marking walk, the guard's conservation audit,
scan-mode and verify-mode arbitration, custom ``select_indexed``
overrides — works against either structure unchanged.  What changes is
how the priority order is maintained:

* **Packed integer sort keys** — instead of per-request key *tuples*
  compared element-wise inside heaps, each policy encodes its priority as
  one integer (:meth:`Scheduler.pack_key
  <repro.schedulers.base.Scheduler.pack_key>`).  Because request ids are
  allocated at construction and requests are enqueued immediately,
  ``request_id`` order is ``(arrival_time, request_id)`` order, so the
  age component packs as the raw id in the low :data:`AGE_BITS` bits;
  policy fields (PAR-BS marked/priority/rank bits, STFM's boosted-thread
  bit, NFQ's IEEE-754 virtual-finish-time pattern) stack above it.
  Comparing two packed keys is a single C-level int compare, and the
  prefix-comparison rule of ``select_indexed`` becomes a right-shift
  (:attr:`Scheduler.pack_prefix_shift`) instead of a tuple slice.

* **Candidate arrays with cached minima instead of heaps** — per row
  bucket the kernel keeps a parallel ``keys`` array plus the bucket's
  minimum entry; per bank it caches the global minimum.  ``select()`` is
  then an O(1) read of two cached entries (the open row's best and the
  bank best).  Inserts update the cached minima by comparison; removal is
  an exact swap-pop of both arrays (no lazy-deletion churn) with an
  O(bucket) ``min()`` rebuild only when the removed request *was* a
  cached minimum — C-speed ``min`` over a small int array.

* **Epoch-tagged lazy invalidation** — same protocol as the heaps: keys
  are valid for the scheduler epoch in ``heap_epoch``; a batch boundary
  or STFM fairness-mode flip bumps the scheduler's ``index_epoch`` and a
  bank's key arrays are rebuilt on its next arbitration
  (:meth:`ensure`), an O(bank-occupancy) repack with no heapify.

Schedulers that define ``index_key`` but not ``pack_key`` still work:
the kernel falls back to the tuple keys (minima and comparisons behave
identically; only the constant factor is worse).  Keys of either kind
end in the unique ``request_id``, so minima are strict and entries never
compare requests.

The age field reserves :data:`AGE_BITS` bits for the raw request id,
which overflows into the policy fields only after ``2**40`` requests in
one process — weeks of continuous simulation; far beyond any run this
repo performs.  ``tests/test_fastsched.py`` fuzzes this kernel against
``BankReadIndex`` op-for-op and pins the golden command streams.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .request import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..schedulers.base import Scheduler

__all__ = ["AGE_BITS", "FastBankSched"]

# Low bits of every packed key: the raw (process-global, monotone)
# request id, which orders identically to (arrival_time, request_id).
AGE_BITS = 40


class FastBankSched:
    """Buffered reads of one (channel, bank): row-bucketed candidate
    arrays with packed sort keys and cached minima.

    Membership (``rows``/``size``/``thread_counts``) is always exact; the
    ``keys`` arrays and cached minima are valid for the scheduler epoch in
    ``heap_epoch`` (name kept for :class:`BankReadIndex` compatibility)
    and rebuilt on demand by :meth:`ensure`.  ``row_best``/``best`` hold
    ``(key, request)`` entries mirroring what ``peek_row``/``peek``
    return on the heap-backed index.
    """

    __slots__ = (
        "rows",
        "size",
        "thread_counts",
        "keys",
        "row_best",
        "best",
        "heap_epoch",
        "min_rebuilds",
    )

    def __init__(self) -> None:
        # row -> requests holding that row; removal is swap-pop via
        # ``request.buf_pos`` (same contract as BankReadIndex).
        self.rows: dict[int, list[MemoryRequest]] = {}
        self.size = 0
        self.thread_counts: dict[int, int] = {}
        # row -> packed keys, parallel to ``rows`` while the epoch holds.
        self.keys: dict[int, list] = {}
        # row -> (key, request) bucket minimum; bank-wide minimum.
        self.row_best: dict[int, tuple] = {}
        self.best: tuple | None = None
        self.heap_epoch = -1  # epoch the key arrays were built for
        # How often a removal evicted a cached bucket minimum and forced
        # an O(bucket) rebuild — the kernel's only non-O(1) removal path,
        # surfaced on WorkloadResult for the observability plane.
        self.min_rebuilds = 0

    # -- membership --------------------------------------------------------
    def add(self, request: MemoryRequest) -> None:
        """Insert ``request`` into its row bucket (keys unaffected; call
        :meth:`push` once the scheduler has stamped its priority fields)."""
        bucket = self.rows.get(request.row)
        if bucket is None:
            bucket = self.rows[request.row] = []
        request.buf_pos = len(bucket)
        bucket.append(request)
        counts = self.thread_counts
        counts[request.thread_id] = counts.get(request.thread_id, 0) + 1
        self.size += 1

    def remove(self, request: MemoryRequest) -> None:
        """Swap-pop ``request`` out of its row bucket (and, when the keys
        are current, out of the parallel key array) in O(1), rebuilding a
        cached minimum only if the removed request held it."""
        row = request.row
        bucket = self.rows[row]
        pos = request.buf_pos
        last = bucket.pop()
        if last is not request:
            bucket[pos] = last
            last.buf_pos = pos
        request.buf_pos = -1
        counts = self.thread_counts
        remaining = counts[request.thread_id] - 1
        if remaining:
            counts[request.thread_id] = remaining
        else:
            del counts[request.thread_id]
        self.size -= 1
        kbucket = self.keys.get(row)
        if kbucket is not None:
            if len(kbucket) == len(bucket) + 1:
                klast = kbucket.pop()
                if last is not request:
                    kbucket[pos] = klast
            else:
                # Stale parallel array: pushes were skipped after an epoch
                # bump.  Drop it — the pending :meth:`ensure` rebuilds the
                # keys and minima from membership before the next decision.
                del self.keys[row]
                self.row_best.pop(row, None)
                kbucket = None
        if not bucket:
            del self.rows[row]
            self.keys.pop(row, None)
            self.row_best.pop(row, None)
        else:
            rb = self.row_best.get(row)
            if rb is not None and rb[1] is request:
                if kbucket:
                    self.min_rebuilds += 1
                    m = min(kbucket)
                    self.row_best[row] = (m, bucket[kbucket.index(m)])
                else:  # stale: minima rebuilt by the next ensure()
                    self.row_best.pop(row, None)
        best = self.best
        if best is not None and best[1] is request:
            row_best = self.row_best
            self.best = min(row_best.values()) if row_best else None

    def requests(self) -> Iterator[MemoryRequest]:
        """Iterate every buffered request (row buckets, arbitrary order)."""
        for bucket in self.rows.values():
            yield from bucket

    # -- key maintenance ---------------------------------------------------
    def push(self, request: MemoryRequest, scheduler: "Scheduler") -> None:
        """Index a newly buffered request under the scheduler's current
        epoch.  If the keys are already stale, skip — the next
        :meth:`ensure` rebuilds them from membership anyway."""
        if self.heap_epoch != scheduler.index_epoch:
            return
        keyfn = scheduler.pack_key
        if keyfn is None:
            keyfn = scheduler.index_key
        k = keyfn(request)
        row = request.row
        kbucket = self.keys.get(row)
        if kbucket is None:
            kbucket = self.keys[row] = []
        kbucket.append(k)
        entry = (k, request)
        rb = self.row_best.get(row)
        if rb is None or k < rb[0]:
            self.row_best[row] = entry
            best = self.best
            if best is None or k < best[0]:
                self.best = entry

    def ensure(self, scheduler: "Scheduler") -> None:
        """Repack the key arrays if the scheduler's epoch moved on —
        O(occupancy) key packing plus one C-level ``min`` per bucket, no
        heapify."""
        if self.heap_epoch == scheduler.index_epoch:
            return
        keyfn = scheduler.pack_key
        if keyfn is None:
            keyfn = scheduler.index_key
        keys: dict[int, list] = {}
        row_best: dict[int, tuple] = {}
        for row, bucket in self.rows.items():
            kbucket = [keyfn(r) for r in bucket]
            keys[row] = kbucket
            m = min(kbucket)
            row_best[row] = (m, bucket[kbucket.index(m)])
        self.keys = keys
        self.row_best = row_best
        self.best = min(row_best.values()) if row_best else None
        self.heap_epoch = scheduler.index_epoch

    # -- queries -----------------------------------------------------------
    def peek(self) -> tuple | None:
        """Minimum-key entry over the whole bank, or None if empty."""
        return self.best

    def peek_row(self, row: int) -> tuple | None:
        """Minimum-key entry among requests targeting ``row``."""
        return self.row_best.get(row)
