"""Physical-address to DRAM-coordinate mapping.

The baseline system maps a physical cache-line address to
``(channel, bank, row, column)``.  Following the paper (Table 2), banks are
selected with an XOR-based permutation of row bits into bank bits
[Frailong et al., Zhang et al.], which spreads row-conflict streams across
banks and is standard in modern controllers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AddressMapping", "DramCoordinates"]

CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class DramCoordinates:
    channel: int
    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class AddressMapping:
    """Maps byte addresses to DRAM coordinates.

    Layout (from least to most significant): line offset, column, channel,
    bank, row.  With ``xor_bank_hash`` enabled the bank index is XORed with
    the low bits of the row, the permutation-based interleaving of the
    baseline configuration.

    Parameters
    ----------
    num_channels: number of independent DRAM channels.
    num_banks: banks per channel.
    row_bytes: row-buffer size in bytes per bank (paper: 2 KB).
    xor_bank_hash: enable XOR-based bank permutation.
    """

    num_channels: int = 1
    num_banks: int = 8
    row_bytes: int = 2048
    xor_bank_hash: bool = True

    def __post_init__(self) -> None:
        if self.num_channels < 1 or self.num_banks < 1:
            raise ValueError("need at least one channel and one bank")
        if self.row_bytes % CACHE_LINE_BYTES != 0:
            raise ValueError("row size must be a multiple of the line size")
        if self.num_banks & (self.num_banks - 1):
            raise ValueError("num_banks must be a power of two")

    @property
    def columns_per_row(self) -> int:
        return self.row_bytes // CACHE_LINE_BYTES

    def map(self, address: int) -> DramCoordinates:
        """Map a byte ``address`` to DRAM coordinates."""
        if address < 0:
            raise ValueError("address must be non-negative")
        line = address // CACHE_LINE_BYTES
        column = line % self.columns_per_row
        line //= self.columns_per_row
        channel = line % self.num_channels
        line //= self.num_channels
        bank = line % self.num_banks
        row = line // self.num_banks
        if self.xor_bank_hash:
            bank ^= row % self.num_banks
        return DramCoordinates(channel=channel, bank=bank, row=row, column=column)

    def compose(self, channel: int, bank: int, row: int, column: int = 0) -> int:
        """Inverse of :meth:`map`: build a byte address hitting the given
        coordinates.  Useful for constructing synthetic traces that target a
        specific bank and row.
        """
        if not (0 <= channel < self.num_channels):
            raise ValueError("channel out of range")
        if not (0 <= bank < self.num_banks):
            raise ValueError("bank out of range")
        if row < 0 or not (0 <= column < self.columns_per_row):
            raise ValueError("row/column out of range")
        raw_bank = bank
        if self.xor_bank_hash:
            raw_bank = bank ^ (row % self.num_banks)
        line = (row * self.num_banks + raw_bank) * self.num_channels + channel
        line = line * self.columns_per_row + column
        return line * CACHE_LINE_BYTES
