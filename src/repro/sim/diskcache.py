"""Persistent on-disk cache for deterministic simulation artifacts.

Alone-run baselines and generated traces are pure functions of their
inputs (benchmark profile, system configuration, seed, instruction
count), so they can be cached across processes and across repeated suite
runs.  Entries are keyed by a SHA-256 content hash of a canonical JSON
encoding of those inputs; values are stored as JSON files, written
atomically (temp file + ``os.replace``) so concurrent workers can share
one cache directory without locking — the worst case under a write race
is one redundant recomputation, never a torn file.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default
  ``$XDG_CACHE_HOME/repro-parbs`` or ``~/.cache/repro-parbs``);
* ``REPRO_CACHE=0`` — disable the on-disk cache entirely;
* ``REPRO_CACHE_MAX_MB`` — bound the cache size: when set, entries are
  pruned oldest-``mtime`` first (LRU — hits touch the entry's mtime)
  until the total size fits.  Pruning runs opportunistically every few
  writes and on demand via ``repro cache prune``.

``clear_cache()`` (or simply deleting the directory) resets it; the
directory layout is ``<root>/<kind>/<hash>.json``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import asdict, is_dataclass
from pathlib import Path

from ..envknobs import read_optional_float

__all__ = [
    "DiskCache",
    "GLOBAL_STATS",
    "cache_enabled",
    "clear_cache",
    "content_key",
    "default_cache_dir",
    "max_cache_mb",
]

logger = logging.getLogger(__name__)

# Bump when simulator semantics change in a way that alters cached
# artifacts (trace generation, timing model, metric definitions).
SIM_FINGERPRINT = "parbs-sim-v1"

# Aggregate counters across every DiskCache instance in this process —
# the observable "did the suite hit the cache?" signal.  ``quarantined``
# counts corrupt/truncated entries renamed aside and recomputed.
GLOBAL_STATS = {"hits": 0, "misses": 0, "writes": 0, "quarantined": 0, "pruned": 0}


def default_cache_dir() -> Path:
    """Resolve the cache root from the environment."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-parbs"


def cache_enabled() -> bool:
    """Whether the on-disk cache is enabled (``REPRO_CACHE`` env switch)."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in ("0", "false", "no", "off")


def max_cache_mb() -> float | None:
    """Size bound in MB from ``REPRO_CACHE_MAX_MB`` (``None`` = unbounded)."""
    return read_optional_float("REPRO_CACHE_MAX_MB", floor=0.0)


def _jsonify(obj):
    if is_dataclass(obj) and not isinstance(obj, type):
        return asdict(obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for cache key")


def content_key(payload) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``.

    Dataclasses (e.g. :class:`~repro.config.SystemConfig`) are flattened
    via ``asdict`` so structurally equal configurations hash equally.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_jsonify
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


class DiskCache:
    """A content-addressed JSON store with hit/miss accounting.

    When a size bound is configured (``max_mb`` argument or the
    ``REPRO_CACHE_MAX_MB`` environment variable) the cache prunes itself
    back under the bound, oldest ``mtime`` first.  Hits touch the entry's
    mtime, so the eviction order is least-recently-*used*, not
    least-recently-written.
    """

    # Opportunistic prune cadence: checking the bound means statting the
    # whole tree, so do it every N writes instead of on each put.
    PRUNE_EVERY = 32

    def __init__(
        self, root: str | Path | None = None, max_mb: float | None = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_mb = max_mb if max_mb is not None else max_cache_mb()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.pruned = 0
        self.quarantined = 0

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.json"

    def get(self, kind: str, key: str):
        """Cached value for ``(kind, key)``, or ``None`` on a miss."""
        path = self._path(kind, key)
        try:
            with path.open() as fh:
                value = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            GLOBAL_STATS["misses"] += 1
            return None
        except (OSError, json.JSONDecodeError) as exc:
            # Corrupt or truncated entry (torn write, disk fault, chaos
            # injection): quarantine it aside for inspection — the
            # ``.corrupt`` suffix keeps it out of ``entries()``/pruning —
            # count it, and let the caller recompute.  Never crash the run.
            self._quarantine(path, exc)
            self.misses += 1
            GLOBAL_STATS["misses"] += 1
            return None
        self.hits += 1
        GLOBAL_STATS["hits"] += 1
        try:
            # LRU touch: keep hot entries at the back of the prune order.
            os.utime(path)
        except OSError:  # pragma: no cover - concurrent unlink
            pass
        logger.info("cache hit: %s/%s", kind, key[:12])
        return value

    def _quarantine(self, path: Path, exc: Exception) -> None:
        aside = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, aside)
        except OSError:
            # Rename failed (e.g. concurrent unlink): best-effort removal.
            path.unlink(missing_ok=True)
            aside = None
        self.quarantined += 1
        GLOBAL_STATS["quarantined"] += 1
        logger.warning(
            "cache entry %s is corrupt (%s); quarantined %s",
            path.name,
            exc,
            f"to {aside.name}" if aside is not None else "and removed",
        )

    def put(self, kind: str, key: str, value) -> None:
        """Store ``value`` atomically under ``(kind, key)``."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(value, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        GLOBAL_STATS["writes"] += 1
        if self.max_mb is not None and self.writes % self.PRUNE_EVERY == 0:
            self.prune()

    def stats(self) -> dict[str, int]:
        """Hit/miss/write counters for this cache instance."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
        }

    # -- size accounting and LRU pruning ------------------------------------
    def entries(self) -> list[tuple[Path, float, int]]:
        """Every cache file as ``(path, mtime, size_bytes)``."""
        out = []
        if not self.root.exists():
            return out
        for path in self.root.rglob("*.json"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent unlink
                continue
            out.append((path, stat.st_mtime, stat.st_size))
        return out

    def size_bytes(self) -> int:
        """Total on-disk size of all cache entries."""
        return sum(size for _path, _mtime, size in self.entries())

    def usage(self) -> dict[str, tuple[int, int]]:
        """Per-kind ``(entry count, bytes)`` breakdown."""
        out: dict[str, tuple[int, int]] = {}
        for path, _mtime, size in self.entries():
            kind = path.parent.name
            count, total = out.get(kind, (0, 0))
            out[kind] = (count + 1, total + size)
        return out

    def prune(self, max_mb: float | None = None) -> tuple[int, int]:
        """Delete oldest-mtime entries until the cache fits ``max_mb``.

        Returns ``(entries removed, bytes freed)``.  With no bound
        configured this is a no-op.
        """
        limit = max_mb if max_mb is not None else self.max_mb
        if limit is None:
            return (0, 0)
        budget = int(limit * 1024 * 1024)
        entries = sorted(self.entries(), key=lambda e: (e[1], e[0]))
        total = sum(size for _p, _m, size in entries)
        removed = 0
        freed = 0
        for path, _mtime, size in entries:
            if total - freed <= budget:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent unlink
                continue
            removed += 1
            freed += size
        if removed:
            self.pruned += removed
            GLOBAL_STATS["pruned"] += removed
            logger.info(
                "cache pruned: %d entries, %.1f MB freed", removed, freed / 1e6
            )
        return (removed, freed)

    def clear(self) -> int:
        """Delete every cache entry under this root; returns the count."""
        removed = 0
        if not self.root.exists():
            return 0
        # ``*.json*`` also sweeps quarantined ``.json.corrupt`` files.
        for path in self.root.rglob("*.json*"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


def clear_cache(root: str | Path | None = None) -> int:
    """Convenience wrapper: clear the (default) cache directory."""
    return DiskCache(root).clear()
