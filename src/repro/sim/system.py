"""Whole-system wiring: cores + (optional caches) + shared DRAM controller.

:class:`System` assembles one simulated CMP: per-core trace-driven
processors, an optional per-core two-level cache hierarchy, and the shared
memory controller running a pluggable scheduling policy.  ``run()``
executes until every core has completed its trace once (finished cores
keep re-running their traces so memory pressure stays realistic, matching
the paper's equal-instruction-slice methodology).
"""

from __future__ import annotations

import gc
import heapq
from typing import Callable

from ..cache.hierarchy import CacheHierarchy
from ..config import SystemConfig
from ..cpu.core import Core
from ..cpu.trace import Trace
from ..dram.address import AddressMapping
from ..dram.controller import MemoryController
from ..dram.request import MemoryRequest, RequestType
from ..events import EventQueue, SimulationError, SimulationStalled
from ..schedulers.base import Scheduler

__all__ = ["DramPort", "System"]

# No-progress watchdog: every this-many events, check that at least one
# instruction retired somewhere; a single int compare per event keeps the
# hot loop at bench-gate speed.
_WATCHDOG_CHECK_EVENTS = 1 << 18

# Optional long-run progress callback, invoked with the running event
# count at every watchdog checkpoint (so roughly every couple of seconds
# of simulation, never per event).  Installed/restored via
# :func:`repro.sim.pool.sim_progress`; campaign workers use it to renew
# work-queue lease heartbeats while a long simulation runs.  ``None``
# (the default) adds nothing to the hot loop beyond the existing
# checkpoint slow path.
PROGRESS_HOOK = None


class DramPort:
    """Adapter from the core/cache ``access`` protocol to the controller."""

    def __init__(self, controller: MemoryController, mapping: AddressMapping) -> None:
        self.controller = controller
        self.mapping = mapping

    def access(
        self,
        thread_id: int,
        address: int,
        is_write: bool,
        on_complete: Callable[[], None] | None,
    ) -> None:
        coords = self.mapping.map(address)
        request = MemoryRequest(
            thread_id=thread_id,
            address=address,
            channel=coords.channel,
            bank=coords.bank,
            row=coords.row,
            type=RequestType.WRITE if is_write else RequestType.READ,
        )
        if on_complete is not None:
            request.on_complete = lambda _req: on_complete()
        self.controller.enqueue(request)


class System:
    """A simulated CMP sharing one DRAM system.

    Parameters
    ----------
    config:
        System configuration; ``config.num_cores`` must match the number of
        traces supplied.
    scheduler:
        The DRAM arbitration policy under test.
    traces:
        One instruction trace per core.
    use_caches:
        Route core accesses through per-core L1/L2 hierarchies.  When
        False (default), traces are interpreted as L2-miss streams and go
        straight to DRAM, which is how the calibrated synthetic workloads
        are meant to be used.
    repeat:
        Restart finished traces to keep contention steady until every core
        has completed at least once.
    arbitration:
        Controller arbitration mode: ``"index"`` (incremental arbitration
        index, default), ``"scan"`` (reference ``min()``-over-candidates
        path), or ``"verify"`` (both, asserting agreement at every
        decision).  See :mod:`repro.dram.rqindex`.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when present, the
        controller, scheduler, batcher and cores emit structured events
        through it.  ``None`` (default) compiles all probes to no-ops.
    telemetry:
        Optional :class:`~repro.obs.sampler.Telemetry` recorder; attaches
        its periodic sampler to this system and receives per-request
        latencies from the controller.
    guard:
        Optional :class:`~repro.guard.Guard` runtime invariant checker;
        the controller, batcher and scheduler discover it at attach time
        (probe-or-None, like ``tracer``).  ``None`` (default) compiles
        every check to a no-op.
    backend:
        Simulation backend: ``"python"`` (default) uses the reference
        object-model controller; ``"fast"`` swaps in the flat-array timing
        kernel (:mod:`repro.dram.fastctl`), which produces a bit-identical
        event trajectory — same command streams, cycles and statistics —
        at a fraction of the per-event cost.  The ``verify`` mode that runs
        both and compares them lives one level up, in
        :mod:`repro.sim.verify` / the experiment runner.
    """

    def __init__(
        self,
        config: SystemConfig,
        scheduler: Scheduler,
        traces: list[Trace],
        use_caches: bool = False,
        repeat: bool = True,
        arbitration: str = "index",
        tracer=None,
        telemetry=None,
        guard=None,
        backend: str = "python",
    ) -> None:
        if len(traces) != config.num_cores:
            raise ValueError(
                f"expected {config.num_cores} traces, got {len(traces)}"
            )
        if backend not in ("python", "fast"):
            raise ValueError(f"unknown simulation backend {backend!r}")
        self.config = config
        self.backend = backend
        self.queue = EventQueue()
        self.tracer = tracer
        self.telemetry = telemetry
        self.guard = guard
        if backend == "fast":
            from ..dram.fastctl import FastDramPort, FastMemoryController

            controller_cls, port_cls = FastMemoryController, FastDramPort
        else:
            controller_cls, port_cls = MemoryController, DramPort
        self.controller = controller_cls(
            self.queue,
            config.dram,
            scheduler,
            num_threads=config.num_cores,
            arbitration=arbitration,
            tracer=tracer,
            telemetry=telemetry,
            guard=guard,
        )
        self.mapping = config.dram.mapping()
        self.port = port_cls(self.controller, self.mapping)
        # Fast backend: flush array state back into the object model before
        # anything outside the controller reads it (diagnostics, finalize).
        self._sync_state = getattr(self.controller, "sync_state", None)

        self._finished = 0
        # Events processed by the last ``run()``.  ``events_logical`` adds
        # the wakes the fast backend elided (see fastctl): it equals the
        # python backend's processed count for the same run and is the
        # numerator of the simulator-throughput metric (events/sec) in
        # bench_simrate.  On the python backend the two are identical.
        self.events_processed = 0
        self.events_elided = 0
        self.events_logical = 0
        # Cached-minimum rebuilds in the fast arbitration kernel (0 on
        # the python backend, which has no such cache).
        self.min_rebuilds = 0
        self.cores: list[Core] = []
        self.hierarchies: list[CacheHierarchy] = []
        core_probe = tracer.probe("core") if tracer is not None else None
        for thread_id, trace in enumerate(traces):
            memory = self.port
            if use_caches:
                hierarchy = CacheHierarchy(
                    thread_id,
                    self.queue,
                    self.port,
                    mshrs=config.core.mshrs,
                )
                self.hierarchies.append(hierarchy)
                memory = hierarchy
            core = Core(
                thread_id,
                trace,
                self.queue,
                memory,
                config=config.core,
                repeat=repeat,
                probe=core_probe,
            )
            core.on_finished = self._core_finished
            self.cores.append(core)
        if backend == "fast":
            # Traces are fixed before the run: decode every address once,
            # vectorized, so the run itself never misses the decode memo.
            self.controller.predecode(
                {entry.address for trace in traces for entry in trace.entries}
            )
        if telemetry is not None:
            telemetry.attach(self)

    def _core_finished(self, core: Core) -> None:
        self._finished += 1

    def run(
        self,
        max_events: int | None = 200_000_000,
        watchdog_cycles: int | None = 2_000_000,
    ) -> int:
        """Run until every core finishes its trace once.

        Returns the simulation time (cycles) at which the last core
        finished.  Raises if the event budget is exhausted first, or —
        when at least ``watchdog_cycles`` simulated cycles pass with zero
        instruction commits anywhere — a :class:`SimulationStalled`
        carrying a diagnostic dump of queue/core/bank/batch state
        (``watchdog_cycles=None`` disables the watchdog).

        This loop is the simulator's outermost hot path, so it dispatches
        events straight off the kernel's heap instead of going through
        :meth:`EventQueue.step` (which documents the reference semantics);
        ``schedule()`` already rejects past times, making step's
        monotonicity check redundant here.  The watchdog costs one int
        compare per event; the full progress check runs only every
        ``_WATCHDOG_CHECK_EVENTS`` events.

        The heap holds two entry shapes: the 4-tuple ``(when, prio, seq,
        fn)`` pushed by :meth:`EventQueue.schedule`, and the fast backend's
        pre-bound 5-tuple ``(when, prio, seq, fn, arg)`` dispatched as
        ``fn(arg)``.  Mixing them in one heap is safe because sequence
        numbers are unique — tuple comparison never reaches element 3.
        """
        for core in self.cores:
            core.start()
        queue = self.queue
        heap = queue._heap
        pop = heapq.heappop
        num_cores = len(self.cores)
        budget = max_events if max_events is not None else float("inf")
        events = 0
        next_check = _WATCHDOG_CHECK_EVENTS if watchdog_cycles is not None else budget + 1
        # One fused threshold covers both the event budget and the
        # watchdog checkpoint, so the per-event epilogue is a single
        # compare; the slow path below disentangles which one fired.
        limit = next_check if next_check <= budget else budget + 1
        last_retired = -1
        progress_time = 0
        # The simulation allocates short-lived objects (heap tuples,
        # requests, outcomes) at a rate that triggers hundreds of gen-0
        # collection passes per run, none of which free anything the
        # reference counter wouldn't — the hot-path object graph is
        # acyclic.  Pause the collector for the duration of the loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while self._finished < num_cores:
                if not heap:
                    raise SimulationError(
                        "event queue drained before all cores finished"
                    )
                entry = pop(heap)
                when = entry[0]
                queue.now = when
                queue.now_seq = entry[2]
                if len(entry) == 4:
                    entry[3]()
                else:
                    entry[3](entry[4])
                events += 1
                if events >= limit:
                    if events > budget:
                        raise SimulationError(
                            f"exceeded event budget ({max_events}); "
                            "simulation stuck?"
                        )
                    if events >= next_check:
                        next_check = events + _WATCHDOG_CHECK_EVENTS
                        if PROGRESS_HOOK is not None:
                            PROGRESS_HOOK(events)
                        retired = 0
                        for core in self.cores:
                            retired += core.instructions_retired
                        if retired != last_retired:
                            last_retired = retired
                            progress_time = when
                        elif when - progress_time >= watchdog_cycles:
                            from ..guard.diagnostics import stall_report

                            if self._sync_state is not None:
                                self._sync_state()
                            report = stall_report(self, events)
                            raise SimulationStalled(
                                f"no instruction committed in "
                                f"{when - progress_time} cycles ({events} "
                                f"events processed); simulation is "
                                f"livelocked\n{report}",
                                report=report,
                            )
                    limit = next_check if next_check <= budget else budget + 1
        finally:
            if gc_was_enabled:
                gc.enable()
        self.events_processed = events
        finalize_elision = getattr(self.controller, "finalize_elision", None)
        if finalize_elision is not None:
            finalize_elision()
        self.events_elided = getattr(self.controller, "events_elided", 0)
        self.events_logical = events + self.events_elided
        min_rebuilds = getattr(self.controller, "min_rebuilds", None)
        self.min_rebuilds = min_rebuilds() if min_rebuilds is not None else 0
        if self._sync_state is not None:
            self._sync_state()
        if self.telemetry is not None:
            self.telemetry.finalize(queue.now)
        if self.guard is not None:
            self.guard.finalize(queue.now)
        return queue.now
