"""Scheduler factory: build any policy evaluated in the paper by name.

Names accepted (case-insensitive):

* ``"FR-FCFS"``, ``"FCFS"``, ``"NFQ"``, ``"STFM"`` — the four baselines;
* ``"PAR-BS"`` — the paper's scheduler (full batching, Marking-Cap 5,
  Max-Total ranking);
* variants via keyword arguments, e.g.
  ``make_scheduler("PAR-BS", 4, marking_cap=None)`` or
  ``make_scheduler("PAR-BS", 4, batching="static", batch_duration=3200)``.
"""

from __future__ import annotations

from typing import Callable

from ..core.parbs import ParBsScheduler
from ..schedulers import FcfsScheduler, FrFcfsScheduler, NfqScheduler, Scheduler, StfmScheduler

__all__ = ["make_scheduler", "SCHEDULER_NAMES", "SchedulerFactory"]

# The five schedulers compared throughout the evaluation, in figure order.
SCHEDULER_NAMES = ["FR-FCFS", "FCFS", "NFQ", "STFM", "PAR-BS"]

SchedulerFactory = Callable[[int], Scheduler]


def make_scheduler(name: str, num_threads: int, **kwargs) -> Scheduler:
    """Instantiate a scheduler by paper name for ``num_threads`` threads."""
    key = name.strip().lower().replace("_", "-")
    if key == "fcfs":
        return FcfsScheduler()
    if key == "fr-fcfs" or key == "frfcfs":
        return FrFcfsScheduler()
    if key == "nfq":
        return NfqScheduler(num_threads, **kwargs)
    if key == "stfm":
        return StfmScheduler(num_threads, **kwargs)
    if key == "par-bs" or key == "parbs":
        return ParBsScheduler(num_threads, **kwargs)
    raise ValueError(f"unknown scheduler {name!r}; known: {SCHEDULER_NAMES}")
