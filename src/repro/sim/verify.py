"""Bit-identical verification of the fast simulation backend.

The fast backend (:mod:`repro.dram.fastctl`) promises the *same
simulation* as the reference object model — identical command streams,
cycles, per-thread statistics and metrics — at a fraction of the
per-event cost.  ``verify`` mode makes that promise checkable end to
end: the experiment runner executes every shared run twice, once per
backend, over the same :class:`~repro.cpu.trace.Trace` objects with
fresh scheduler state, and any divergence raises
:class:`BackendMismatch` naming the first differing command.

Backend selection goes through :func:`backend_from_env`
(``REPRO_BACKEND`` / the ``--backend`` CLI flag):

==========  ==============================================================
``python``  reference object-model controller (default)
``fast``    flat-array timing kernel (:mod:`repro.dram.fastctl`)
``verify``  both, asserting bit-for-bit agreement on every run
==========  ==============================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..envknobs import read_choice

if TYPE_CHECKING:  # pragma: no cover
    from ..metrics.summary import WorkloadResult
    from .system import System

__all__ = [
    "BACKENDS",
    "BackendMismatch",
    "backend_from_env",
    "compare_results",
    "compare_systems",
]

BACKENDS = ("python", "fast", "verify")


def backend_from_env() -> str:
    """Simulation backend from ``REPRO_BACKEND`` (default ``python``)."""
    return read_choice("REPRO_BACKEND", "python", choices=BACKENDS)


class BackendMismatch(AssertionError):
    """The fast backend diverged from the reference simulation.

    Raised only in ``verify`` mode.  Any occurrence is a simulator bug:
    the fast backend's contract is bit-identity, not approximation.
    """


def _diff_logs(reference: list, candidate: list) -> str | None:
    """First divergence between two command streams, human-readable."""
    for index, (ref, cand) in enumerate(zip(reference, candidate)):
        if ref != cand:
            return (
                f"command streams diverge at command {index}:\n"
                f"  python: {ref}\n"
                f"  fast:   {cand}"
            )
    if len(reference) != len(candidate):
        return (
            f"command streams agree for {min(len(reference), len(candidate))} "
            f"commands, then lengths diverge: python issued "
            f"{len(reference)}, fast issued {len(candidate)}"
        )
    return None


def compare_systems(reference: "System", candidate: "System") -> None:
    """Assert two finished systems observed the same simulation.

    ``reference`` is the python-backend run, ``candidate`` the fast run.
    Both must have executed with ``controller.command_log`` enabled.
    Checks, in order of diagnostic value: the command streams (timestamp,
    run-relative request id, placement and full timing of every issued
    command), total cycles and events, final bank state, per-thread DRAM
    statistics, and the per-core retirement snapshots.
    """
    ref_log = reference.controller.command_log
    cand_log = candidate.controller.command_log
    if ref_log is None or cand_log is None:
        raise ValueError("compare_systems requires command_log on both runs")
    diff = _diff_logs(ref_log, cand_log)
    if diff is not None:
        raise BackendMismatch(diff)
    if reference.queue.now != candidate.queue.now:
        raise BackendMismatch(
            f"simulated cycles diverge: python {reference.queue.now}, "
            f"fast {candidate.queue.now}"
        )
    # The fast backend elides wakes whose firing is provably a no-op
    # (see fastctl), so raw processed counts legitimately differ; the
    # *logical* count (processed + elided) must match the reference's
    # exactly — every elision is accounted, none invented.
    if reference.events_logical != candidate.events_logical:
        raise BackendMismatch(
            f"logical event counts diverge: python "
            f"{reference.events_logical} "
            f"(processed {reference.events_processed}), fast "
            f"{candidate.events_logical} "
            f"(processed {candidate.events_processed} "
            f"+ elided {candidate.events_elided})"
        )
    # Final DRAM state: the fast controller's ``sync_state`` (called at end
    # of run) flushes the flat arrays back into Bank/DataBus objects, so
    # the object model is directly comparable.
    for (c, ref_ch) in enumerate(reference.controller.channels):
        cand_ch = candidate.controller.channels[c]
        for b, ref_bank in enumerate(ref_ch.banks):
            cand_bank = cand_ch.banks[b]
            state = (
                ref_bank.open_row,
                ref_bank.busy_until,
                ref_bank.accesses,
                ref_bank.row_hits,
                ref_bank.row_conflicts,
            )
            cand_state = (
                cand_bank.open_row,
                cand_bank.busy_until,
                cand_bank.accesses,
                cand_bank.row_hits,
                cand_bank.row_conflicts,
            )
            if state != cand_state:
                raise BackendMismatch(
                    f"bank ({c},{b}) final state diverges: "
                    f"python {state}, fast {cand_state}"
                )
        bus_state = (
            ref_ch.bus.free_at,
            ref_ch.bus.busy_cycles,
            ref_ch.bus.transfers,
            ref_ch.bus.wait_cycles,
        )
        cand_bus = (
            cand_ch.bus.free_at,
            cand_ch.bus.busy_cycles,
            cand_ch.bus.transfers,
            cand_ch.bus.wait_cycles,
        )
        if bus_state != cand_bus:
            raise BackendMismatch(
                f"channel {c} bus counters diverge: "
                f"python {bus_state}, fast {cand_bus}"
            )
    if reference.controller.thread_stats != candidate.controller.thread_stats:
        raise BackendMismatch(
            "per-thread DRAM statistics diverge:\n"
            f"  python: {reference.controller.thread_stats}\n"
            f"  fast:   {candidate.controller.thread_stats}"
        )
    for ref_core, cand_core in zip(reference.cores, candidate.cores):
        if ref_core.snapshot != cand_core.snapshot:
            raise BackendMismatch(
                f"core {ref_core.thread_id} snapshot diverges:\n"
                f"  python: {ref_core.snapshot}\n"
                f"  fast:   {cand_core.snapshot}"
            )


def compare_results(reference: "WorkloadResult", candidate: "WorkloadResult") -> None:
    """Assert two :class:`~repro.metrics.summary.WorkloadResult` packages
    are identical (telemetry excluded — the shadow run never records any).

    The raw event split legitimately differs between backends (the fast
    path elides wakes and counts kernel min-rebuilds the python path has
    no notion of), so both results are canonicalized to their *logical*
    event count before comparison — which still asserts the
    backend-independent invariant ``python.processed == fast.processed +
    fast.elided``, the same identity :func:`compare_systems` checks at
    the system level.
    """
    from dataclasses import replace

    ref = replace(
        reference,
        telemetry=None,
        events_processed=reference.events_logical,
        events_elided=0,
        min_rebuilds=0,
    )
    cand = replace(
        candidate,
        telemetry=None,
        events_processed=candidate.events_logical,
        events_elided=0,
        min_rebuilds=0,
    )
    if ref != cand:
        raise BackendMismatch(
            f"workload results diverge:\n  python: {ref}\n  fast:   {cand}"
        )
