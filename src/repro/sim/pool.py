"""Process-parallel experiment engine.

Every paper figure is an aggregate over *independent* (workload ×
scheduler) simulations, so experiment throughput scales with cores: this
module fans :class:`SimJob` descriptions out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and merges results
deterministically.

Determinism contract: a job description pins everything a simulation
depends on (system configuration, workload, scheduler name + kwargs,
seed, instruction count), every simulation is a pure function of its job
(seeded RNGs, no wall-clock or ``hash()`` dependence), and results are
returned in submission order — so parallel output is bit-identical to
serial output regardless of worker count or completion order.

Worker processes keep one :class:`~repro.sim.runner.ExperimentRunner`
per distinct (config, instructions, seed, cache_dir) so trace and
alone-run caches are reused across the jobs a worker services; the
persistent on-disk cache (:mod:`repro.sim.diskcache`) shares alone-run
baselines and generated traces across workers and across repeated runs.

The worker count comes from ``--jobs N`` on the CLI, the ``REPRO_JOBS``
environment variable, or the ``jobs=`` argument; the default of 1 keeps
the serial path byte-for-byte unchanged.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from ..config import SystemConfig
from ..envknobs import read_int
from ..obs.config import TraceConfig
from .diskcache import GLOBAL_STATS, content_key

if TYPE_CHECKING:  # pragma: no cover
    from ..metrics.summary import WorkloadResult
    from .runner import ExperimentRunner

__all__ = ["JOB_STATS", "SimJob", "default_jobs", "run_job", "run_jobs"]

logger = logging.getLogger(__name__)

# Count of simulations actually executed by this process (serial path and
# pool workers each count their own).  The campaign resume tests read this
# to prove that a resumed run re-simulates only the missing jobs.
JOB_STATS = {"executed": 0}


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    return read_int("REPRO_JOBS", 1, floor=1)


@dataclass(frozen=True)
class SimJob:
    """A picklable description of one independent simulation.

    ``scheduler`` is a factory name (see :mod:`repro.sim.factory`), not a
    scheduler instance, so the job can cross a process boundary and the
    worker builds fresh, unshared scheduler state.
    """

    config: SystemConfig
    workload: tuple[str, ...]
    scheduler: str
    scheduler_kwargs: dict[str, Any] = field(default_factory=dict)
    instructions: int = 0
    seed: int = 0
    cache_dir: str | None = None  # None disables the on-disk cache
    # Observability settings travel with the job so pool workers write the
    # same per-job trace files a serial run would (None = tracing off).
    trace: TraceConfig | None = None

    def runner_key(self) -> str:
        """Content hash of everything that parameterizes the runner."""
        return content_key(
            [self.config, self.instructions, self.seed, self.cache_dir, self.trace]
        )


# One runner per distinct job parameterization, per worker process:
# reusing a runner lets a worker share generated traces and alone-run
# baselines across all the jobs it services.
_WORKER_RUNNERS: dict[str, "ExperimentRunner"] = {}


def _runner_for(job: SimJob) -> "ExperimentRunner":
    from .runner import ExperimentRunner

    key = job.runner_key()
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = ExperimentRunner(
            job.config,
            instructions=job.instructions or None,
            seed=job.seed,
            jobs=1,  # workers never fan out further
            cache_dir=job.cache_dir,
            # An unset trace field means "off", not "resolve from env":
            # the submitting runner already resolved the environment.
            trace=job.trace if job.trace is not None else TraceConfig(),
        )
        _WORKER_RUNNERS[key] = runner
    return runner


def run_job(job: SimJob) -> "WorkloadResult":
    """Execute one job (also the in-process serial fallback path)."""
    runner = _runner_for(job)
    JOB_STATS["executed"] += 1
    return runner.run_workload(
        list(job.workload), job.scheduler, **job.scheduler_kwargs
    )


def run_jobs(jobs: Sequence[SimJob], workers: int | None = None) -> list["WorkloadResult"]:
    """Run ``jobs``, fanning out over ``workers`` processes.

    Results are returned in submission order.  With ``workers <= 1`` (or
    a single job) everything runs in-process, bypassing the pool.
    """
    jobs = list(jobs)
    if workers is None:
        workers = default_jobs()
    if workers <= 1 or len(jobs) <= 1:
        results = [run_job(job) for job in jobs]
        _log_cache_report()
        return results
    workers = min(workers, len(jobs))
    logger.info("running %d simulations over %d worker processes", len(jobs), workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(run_job, jobs, chunksize=1))
    _log_cache_report()
    return results


def _log_cache_report() -> None:
    """One-line disk-cache digest after a batch of jobs (submitting process
    only; worker-side hits stay in the workers)."""
    logger.info(
        "disk cache: %d hits, %d misses, %d writes",
        GLOBAL_STATS["hits"],
        GLOBAL_STATS["misses"],
        GLOBAL_STATS["writes"],
    )
