"""Process-parallel experiment engine.

Every paper figure is an aggregate over *independent* (workload ×
scheduler) simulations, so experiment throughput scales with cores: this
module fans :class:`SimJob` descriptions out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and merges results
deterministically.

Determinism contract: a job description pins everything a simulation
depends on (system configuration, workload, scheduler name + kwargs,
seed, instruction count), every simulation is a pure function of its job
(seeded RNGs, no wall-clock or ``hash()`` dependence), and results are
returned in submission order — so parallel output is bit-identical to
serial output regardless of worker count or completion order.

Worker processes keep one :class:`~repro.sim.runner.ExperimentRunner`
per distinct (config, instructions, seed, cache_dir) so trace and
alone-run caches are reused across the jobs a worker services; the
persistent on-disk cache (:mod:`repro.sim.diskcache`) shares alone-run
baselines and generated traces across workers and across repeated runs.

The worker count comes from ``--jobs N`` on the CLI, the ``REPRO_JOBS``
environment variable, or the ``jobs=`` argument; the default of 1 keeps
the serial path byte-for-byte unchanged.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from ..config import SystemConfig
from ..envknobs import read_int, read_optional_float
from ..guard.chaos import ChaosInjectedError, chaos_from_env
from ..obs.config import TraceConfig
from .diskcache import GLOBAL_STATS, content_key

if TYPE_CHECKING:  # pragma: no cover
    from ..metrics.summary import WorkloadResult
    from .runner import ExperimentRunner

__all__ = [
    "JOB_STATS",
    "POOL_INCIDENT_LIMIT",
    "POOL_STATS",
    "SimJob",
    "default_job_timeout",
    "default_jobs",
    "run_job",
    "run_job_timed",
    "run_jobs",
    "sim_progress",
    "terminate_pool",
]

logger = logging.getLogger(__name__)

# Count of simulations actually executed by this process (serial path and
# pool workers each count their own).  The campaign resume tests read this
# to prove that a resumed run re-simulates only the missing jobs.
JOB_STATS = {"executed": 0}

# Operational counters of this process's pool management (submitting side:
# respawns after incidents, no-progress timeouts, falls back to serial).
# Folded into the metrics plane by
# :func:`repro.obs.metrics.collect_process_metrics`.
POOL_STATS = {"respawns": 0, "serial_fallbacks": 0, "timeouts": 0}

# After this many pool incidents (worker deaths, no-progress timeouts) the
# engine stops respawning pools and runs the survivors serially.
POOL_INCIDENT_LIMIT = 2


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    return read_int("REPRO_JOBS", 1, floor=1)


def default_job_timeout() -> float | None:
    """Per-job no-progress timeout in seconds from ``REPRO_JOB_TIMEOUT_S``
    (``None`` = no timeout).  Applied to pool and campaign workers: if no
    job completes within the window the pool is presumed hung, its workers
    are terminated, and the unfinished jobs are retried."""
    return read_optional_float("REPRO_JOB_TIMEOUT_S", floor=0.1)


@dataclass(frozen=True)
class SimJob:
    """A picklable description of one independent simulation.

    ``scheduler`` is a factory name (see :mod:`repro.sim.factory`), not a
    scheduler instance, so the job can cross a process boundary and the
    worker builds fresh, unshared scheduler state.
    """

    config: SystemConfig
    workload: tuple[str, ...]
    scheduler: str
    scheduler_kwargs: dict[str, Any] = field(default_factory=dict)
    instructions: int = 0
    seed: int = 0
    cache_dir: str | None = None  # None disables the on-disk cache
    # Observability settings travel with the job so pool workers write the
    # same per-job trace files a serial run would (None = tracing off).
    trace: TraceConfig | None = None
    # Simulation backend ("python", "fast" or "verify"): pinned by the
    # submitting runner so serial and pooled execution agree even when a
    # worker's environment differs; None resolves REPRO_BACKEND.
    backend: str | None = None
    # External trace wiring: sorted (alias, path) pairs for ``trace:``
    # workload entries, plus the address-decoder spec applied to them.
    # Tuples (not dicts) keep the job hashable and deterministic.
    trace_files: tuple[tuple[str, str], ...] = ()
    decoder: str = "dramsim2"

    def runner_key(self) -> str:
        """Content hash of everything that parameterizes the runner."""
        return content_key(
            [
                self.config,
                self.instructions,
                self.seed,
                self.cache_dir,
                self.trace,
                self.backend,
                self.trace_files,
                self.decoder,
            ]
        )


# One runner per distinct job parameterization, per worker process:
# reusing a runner lets a worker share generated traces and alone-run
# baselines across all the jobs it services.
_WORKER_RUNNERS: dict[str, "ExperimentRunner"] = {}


def _runner_for(job: SimJob) -> "ExperimentRunner":
    from .runner import ExperimentRunner

    key = job.runner_key()
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = ExperimentRunner(
            job.config,
            instructions=job.instructions or None,
            seed=job.seed,
            jobs=1,  # workers never fan out further
            cache_dir=job.cache_dir,
            # An unset trace field means "off", not "resolve from env":
            # the submitting runner already resolved the environment.
            trace=job.trace if job.trace is not None else TraceConfig(),
            backend=job.backend,
            trace_files=dict(job.trace_files),
            decoder=job.decoder,
        )
        _WORKER_RUNNERS[key] = runner
    return runner


def job_chaos_key(job: SimJob) -> str:
    """Stable fault-injection key for one job (what the job *simulates*,
    not how it is cached/traced, so serial and pooled runs agree)."""
    return content_key(
        [
            job.config,
            list(job.workload),
            job.scheduler,
            sorted(job.scheduler_kwargs.items()),
            job.instructions,
            job.seed,
        ]
    )


@contextmanager
def sim_progress(callback):
    """Install ``callback(events)`` as the simulator's long-run progress
    hook for the duration of the block, restoring the previous hook on
    exit.

    The hook fires at the simulator watchdog checkpoint (every
    ``_WATCHDOG_CHECK_EVENTS`` events, i.e. a few times per second of
    wall time), which is what campaign workers use to renew work-queue
    lease heartbeats *while* a long simulation runs — not just between
    jobs.  Exceptions raised by the callback propagate out of the
    simulation like any simulation error (the lease-lost abort path).
    """
    from . import system as _system

    previous = _system.PROGRESS_HOOK
    _system.PROGRESS_HOOK = callback
    try:
        yield
    finally:
        _system.PROGRESS_HOOK = previous


def run_job(job: SimJob) -> "WorkloadResult":
    """Execute one job (also the in-process serial fallback path)."""
    chaos = chaos_from_env()
    if chaos is not None:
        # Fault injection: a selected job kills/hangs its worker process
        # (or raises ChaosInjectedError when running in-process) — once.
        chaos.maybe_kill_worker(job_chaos_key(job))
    runner = _runner_for(job)
    JOB_STATS["executed"] += 1
    return runner.run_workload(
        list(job.workload), job.scheduler, **job.scheduler_kwargs
    )


def run_job_timed(job: SimJob) -> tuple["WorkloadResult", float, int]:
    """:func:`run_job` plus worker-measured wall time and worker pid.

    The picklable triple the campaign orchestrator submits so progress
    rows carry timings measured where the simulation actually ran (the
    parent's submit-to-result window includes queueing and pickling).
    """
    start = time.perf_counter()
    result = run_job(job)
    return result, time.perf_counter() - start, os.getpid()


def run_jobs(
    jobs: Sequence[SimJob],
    workers: int | None = None,
    job_timeout_s: float | None = None,
) -> list["WorkloadResult"]:
    """Run ``jobs``, fanning out over ``workers`` processes.

    Results are returned in submission order.  With ``workers <= 1`` (or
    a single job) everything runs in-process, bypassing the pool.

    The parallel path degrades gracefully: a broken pool (worker killed
    by the OS, the OOM killer, or chaos injection) or a no-progress
    timeout (``job_timeout_s`` / ``REPRO_JOB_TIMEOUT_S``) terminates the
    surviving workers, respawns a fresh pool, and retries only the
    unfinished jobs; after :data:`POOL_INCIDENT_LIMIT` incidents the
    survivors run serially.  Completed results are never lost, and
    determinism is preserved — retried jobs are pure functions of their
    description.
    """
    jobs = list(jobs)
    if workers is None:
        workers = default_jobs()
    if job_timeout_s is None:
        job_timeout_s = default_job_timeout()
    if workers <= 1 or len(jobs) <= 1:
        results = [run_job(job) for job in jobs]
        _log_cache_report()
        return results
    workers = min(workers, len(jobs))
    logger.info("running %d simulations over %d worker processes", len(jobs), workers)
    results = _run_pool(jobs, workers, job_timeout_s)
    _log_cache_report()
    return results


class _PoolIncident(Exception):
    """Internal: the worker pool broke or stopped making progress."""


def terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without leaving orphaned workers: cancel queued
    work, terminate live processes, then release executor resources."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already dead
            pass
    for process in list(processes.values()):
        try:
            process.join(timeout=5.0)
        except Exception:  # pragma: no cover - defensive
            pass


def _run_pool(
    jobs: list[SimJob], workers: int, timeout_s: float | None
) -> list["WorkloadResult"]:
    results: dict[int, "WorkloadResult"] = {}
    remaining = list(range(len(jobs)))
    incidents = 0
    while remaining:
        try:
            _pool_pass(jobs, remaining, workers, timeout_s, results)
        except _PoolIncident as incident:
            incidents += 1
            if "presumed hung" in str(incident):
                POOL_STATS["timeouts"] += 1
            remaining = [i for i in remaining if i not in results]
            if incidents >= POOL_INCIDENT_LIMIT:
                POOL_STATS["serial_fallbacks"] += 1
                logger.warning(
                    "worker pool failed %d times (%s); running %d unfinished "
                    "jobs serially",
                    incidents,
                    incident,
                    len(remaining),
                )
                for index in remaining:
                    try:
                        results[index] = run_job(jobs[index])
                    except ChaosInjectedError:
                        # The injection marker fired before the raise, so
                        # one retry runs clean.
                        results[index] = run_job(jobs[index])
                remaining = []
            else:
                POOL_STATS["respawns"] += 1
                logger.warning(
                    "worker pool incident (%s); respawning pool for %d "
                    "unfinished jobs",
                    incident,
                    len(remaining),
                )
        else:
            remaining = [i for i in remaining if i not in results]
    return [results[i] for i in range(len(jobs))]


def _pool_pass(
    jobs: list[SimJob],
    indexes: list[int],
    workers: int,
    timeout_s: float | None,
    results: dict[int, "WorkloadResult"],
) -> None:
    """One pool lifetime: run ``indexes`` until done or the pool breaks.

    Completed results accumulate into ``results`` (so nothing finished is
    lost when the pool dies); a broken pool or a no-progress window
    raises :class:`_PoolIncident` after terminating every worker.
    """
    pool = ProcessPoolExecutor(max_workers=min(workers, len(indexes)))
    try:
        futures = {pool.submit(run_job, jobs[i]): i for i in indexes}
        pending = set(futures)
        while pending:
            done, pending = wait(
                pending, timeout=timeout_s, return_when=FIRST_COMPLETED
            )
            if not done:
                raise _PoolIncident(
                    f"no simulation finished within {timeout_s:g}s; "
                    f"pool presumed hung"
                )
            for future in done:
                try:
                    results[futures[future]] = future.result()
                except BrokenProcessPool as exc:
                    raise _PoolIncident(f"worker died: {exc}") from None
        pool.shutdown()
    except _PoolIncident:
        terminate_pool(pool)
        raise
    except BrokenProcessPool as exc:
        # submit() on an already-broken pool raises directly.
        terminate_pool(pool)
        raise _PoolIncident(f"pool broken: {exc}") from None
    except KeyboardInterrupt:
        terminate_pool(pool)
        logger.error(
            "interrupted: %d/%d simulations completed (their artifacts "
            "are preserved in the disk cache)",
            len(results),
            len(jobs),
        )
        raise
    except BaseException:
        # A job's own exception (or anything unexpected): clean up the
        # workers, then let it propagate unchanged.
        terminate_pool(pool)
        raise


def _log_cache_report() -> None:
    """One-line disk-cache digest after a batch of jobs (submitting process
    only; worker-side hits stay in the workers)."""
    logger.info(
        "disk cache: %d hits, %d misses, %d writes, %d quarantined",
        GLOBAL_STATS["hits"],
        GLOBAL_STATS["misses"],
        GLOBAL_STATS["writes"],
        GLOBAL_STATS["quarantined"],
    )
