"""Experiment runner: alone-run baselines and shared workload runs.

Reproducing the paper's metrics requires, for every benchmark, an
*alone-run* baseline (the thread running by itself on the same memory
system) and a *shared run* of the full workload.  The runner generates
calibrated traces, caches alone-run baselines per (benchmark, system
configuration), and packages results as
:class:`~repro.metrics.summary.WorkloadResult`.

Scaling: trace sizes honour the ``REPRO_SCALE`` environment variable
(a float multiplier over the default instruction count) so the full
benchmark suite can be sized to the machine at hand.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..config import SystemConfig, baseline_system
from ..cpu.trace import Trace
from ..metrics.summary import ThreadResult, WorkloadResult
from ..schedulers.base import Scheduler
from ..workloads.generator import TraceGenerator
from ..workloads.profiles import profile
from .factory import make_scheduler
from .system import System

__all__ = ["AloneStats", "ExperimentRunner", "default_instructions"]

_DEFAULT_INSTRUCTIONS = 300_000


def default_instructions() -> int:
    """Per-thread instruction-slice length, honouring ``REPRO_SCALE``."""
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    return max(10_000, int(_DEFAULT_INSTRUCTIONS * scale))


@dataclass(frozen=True)
class AloneStats:
    """Alone-run baseline of one benchmark on one system configuration."""

    benchmark: str
    ipc: float
    mcpi: float
    ast_per_req: float
    blp: float
    row_hit_rate: float
    loads: int
    cycles: int


class ExperimentRunner:
    """Runs workloads and computes paper metrics, caching alone baselines."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        instructions: int | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or baseline_system(4)
        self.instructions = instructions or default_instructions()
        self.seed = seed
        self.generator = TraceGenerator(mapping=self.config.dram.mapping())
        self._trace_cache: dict[tuple[str, int], Trace] = {}
        self._alone_cache: dict[str, AloneStats] = {}

    # -- trace construction ------------------------------------------------------
    def trace_for(self, benchmark: str, copy_index: int = 0) -> Trace:
        """Deterministic trace for ``benchmark``; distinct ``copy_index``
        values give statistically identical but decorrelated traces (for
        workloads with repeated benchmarks)."""
        key = (benchmark, copy_index)
        if key not in self._trace_cache:
            self._trace_cache[key] = self.generator.generate(
                profile(benchmark),
                instructions=self.instructions,
                seed=self.seed + 1000 * copy_index,
            )
        return self._trace_cache[key]

    def _workload_traces(self, workload: list[str]) -> list[Trace]:
        counts: dict[str, int] = {}
        traces = []
        for benchmark in workload:
            index = counts.get(benchmark, 0)
            counts[benchmark] = index + 1
            traces.append(self.trace_for(benchmark, index))
        return traces

    # -- alone baseline -----------------------------------------------------------
    def alone(self, benchmark: str) -> AloneStats:
        """Alone-run statistics (cached)."""
        if benchmark in self._alone_cache:
            return self._alone_cache[benchmark]
        trace = self.trace_for(benchmark, 0)
        # One core, but the *same* memory system as the shared runs
        # ("running alone on the same system", Section 7.1).
        from dataclasses import replace

        config = replace(self.config, num_cores=1)
        system = System(
            config,
            make_scheduler("FR-FCFS", 1),
            [trace],
            repeat=False,
        )
        system.run()
        core = system.cores[0]
        snap = core.snapshot
        assert snap is not None
        mem = system.controller.thread_stats[0]
        stats = AloneStats(
            benchmark=benchmark,
            ipc=snap.ipc,
            mcpi=snap.mcpi,
            ast_per_req=snap.avg_stall_per_request,
            blp=mem.bank_level_parallelism,
            row_hit_rate=mem.row_hit_rate,
            loads=snap.loads,
            cycles=snap.cycles,
        )
        self._alone_cache[benchmark] = stats
        return stats

    # -- shared runs ------------------------------------------------------------
    def run_workload(
        self,
        workload: list[str],
        scheduler: Scheduler | str,
        **scheduler_kwargs,
    ) -> WorkloadResult:
        """Run ``workload`` (one benchmark name per core) under a scheduler
        and return all paper metrics."""
        if len(workload) != self.config.num_cores:
            raise ValueError(
                f"workload has {len(workload)} threads but the system has "
                f"{self.config.num_cores} cores"
            )
        if isinstance(scheduler, str):
            scheduler_name = scheduler
            scheduler = make_scheduler(
                scheduler, self.config.num_cores, **scheduler_kwargs
            )
        else:
            scheduler_name = scheduler.name

        traces = self._workload_traces(workload)
        system = System(self.config, scheduler, traces, repeat=True)
        sim_cycles = system.run()

        threads = []
        for thread_id, benchmark in enumerate(workload):
            core = system.cores[thread_id]
            snap = core.snapshot
            assert snap is not None
            mem = system.controller.thread_stats[thread_id]
            base = self.alone(benchmark)
            threads.append(
                ThreadResult(
                    thread_id=thread_id,
                    benchmark=benchmark,
                    ipc_shared=snap.ipc,
                    ipc_alone=base.ipc,
                    mcpi_shared=snap.mcpi,
                    mcpi_alone=base.mcpi,
                    ast_per_req=snap.avg_stall_per_request,
                    blp_shared=mem.bank_level_parallelism,
                    blp_alone=base.blp,
                    row_hit_rate=mem.row_hit_rate,
                    worst_latency=mem.latency_max,
                )
            )
        return WorkloadResult(
            scheduler=scheduler_name,
            workload=tuple(workload),
            threads=tuple(threads),
            sim_cycles=sim_cycles,
        )

    def compare_schedulers(
        self,
        workload: list[str],
        schedulers: list[str] | None = None,
        scheduler_kwargs: dict[str, dict] | None = None,
    ) -> dict[str, WorkloadResult]:
        """Run ``workload`` under several schedulers (paper's five by
        default) and return results keyed by scheduler name."""
        from .factory import SCHEDULER_NAMES

        names = schedulers or SCHEDULER_NAMES
        kwargs = scheduler_kwargs or {}
        return {
            name: self.run_workload(workload, name, **kwargs.get(name, {}))
            for name in names
        }
