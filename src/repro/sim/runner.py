"""Experiment runner: alone-run baselines and shared workload runs.

Reproducing the paper's metrics requires, for every benchmark, an
*alone-run* baseline (the thread running by itself on the same memory
system) and a *shared run* of the full workload.  The runner generates
calibrated traces, caches alone-run baselines per (benchmark, system
configuration), and packages results as
:class:`~repro.metrics.summary.WorkloadResult`.

Caching operates at two levels: an in-process memoization of traces and
alone baselines (as before), backed by a persistent on-disk cache
(:mod:`repro.sim.diskcache`) keyed by content hashes of (benchmark,
configuration, seed, instruction count) so repeated suite runs — and
concurrent worker processes — skip recomputation.

Scaling: trace sizes honour the ``REPRO_SCALE`` environment variable
(a float multiplier over the default instruction count) so the full
benchmark suite can be sized to the machine at hand.  ``run_many`` (and
everything built on it — ``compare_schedulers``, the aggregate
experiments, the CLI) fans independent simulations out over worker
processes when ``jobs > 1`` (``--jobs`` / ``REPRO_JOBS``).
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Any, Sequence

from ..config import SystemConfig, baseline_system
from ..cpu.trace import Trace, TraceEntry, TraceIngestStats
from ..envknobs import read_float
from ..guard import guard_from_env
from ..metrics.summary import ThreadResult, WorkloadResult
from ..obs import JsonlSink, Telemetry, TraceConfig, Tracer
from ..schedulers.base import Scheduler
from ..traces.source import TraceFileRef, TraceRequestSource
from ..workloads.generator import TraceGenerator
from ..workloads.profiles import profile
from .diskcache import SIM_FINGERPRINT, DiskCache, cache_enabled, content_key
from .factory import make_scheduler
from .system import System
from .verify import BACKENDS, backend_from_env, compare_results, compare_systems

__all__ = [
    "AloneStats",
    "ExperimentRunner",
    "TRACE_PREFIX",
    "default_instructions",
]

# Workload entries with this prefix name an external trace file (by
# alias, sample-library name, or path) instead of a synthetic benchmark.
TRACE_PREFIX = "trace:"

# Sentinel distinguishing "not passed" (resolve from the environment)
# from an explicit ``cache_dir=None`` (disable the on-disk cache).
_DEFAULT_CACHE = object()

_DEFAULT_INSTRUCTIONS = 300_000


def default_instructions() -> int:
    """Per-thread instruction-slice length, honouring ``REPRO_SCALE``."""
    scale = read_float("REPRO_SCALE", 1.0)
    return max(10_000, int(_DEFAULT_INSTRUCTIONS * scale))


@dataclass(frozen=True)
class AloneStats:
    """Alone-run baseline of one benchmark on one system configuration."""

    benchmark: str
    ipc: float
    mcpi: float
    ast_per_req: float
    blp: float
    row_hit_rate: float
    loads: int
    cycles: int


class ExperimentRunner:
    """Runs workloads and computes paper metrics, caching alone baselines."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        instructions: int | None = None,
        seed: int = 0,
        jobs: int | None = None,
        cache_dir: Any = _DEFAULT_CACHE,
        trace: TraceConfig | None = None,
        backend: str | None = None,
        trace_files: dict[str, str] | None = None,
        decoder: str = "dramsim2",
    ) -> None:
        self.config = config or baseline_system(4)
        self.instructions = instructions or default_instructions()
        self.seed = seed
        # Simulation backend: "python" (reference), "fast" (flat-array
        # kernel) or "verify" (both, asserting bit-identity on every
        # shared run).  None resolves REPRO_BACKEND / --backend.
        if backend is None:
            backend = backend_from_env()
        elif backend not in BACKENDS:
            raise ValueError(
                f"unknown simulation backend {backend!r} "
                f"(choose from {', '.join(BACKENDS)})"
            )
        self.backend = backend
        # None → resolve from REPRO_JOBS at run time (default 1 = serial).
        self.jobs = jobs
        # Observability: None → resolve from REPRO_TRACE* env vars; pass an
        # explicitly inactive TraceConfig() to force tracing off.
        resolved = trace if trace is not None else TraceConfig.from_env()
        self.trace = resolved if resolved is not None else TraceConfig()
        self.generator = TraceGenerator(mapping=self.config.dram.mapping())
        # External trace wiring: ``trace_files`` maps workload aliases
        # (``trace:<alias>`` entries) onto files; ``decoder`` names the
        # address bit-field layout (preset or ``field=bits,...`` spec)
        # applied to every trace in this runner.
        self.trace_files = dict(trace_files or {})
        self.decoder = decoder
        self._trace_refs: dict[str, TraceFileRef] = {}
        self._trace_cache: dict[tuple[str, int], Trace] = {}
        self._alone_cache: dict[str, AloneStats] = {}
        if cache_dir is _DEFAULT_CACHE:
            self._disk: DiskCache | None = DiskCache() if cache_enabled() else None
        elif cache_dir is None:
            self._disk = None
        else:
            self._disk = DiskCache(cache_dir)

    @property
    def disk_cache(self) -> DiskCache | None:
        """The persistent cache backing this runner (``None`` if disabled)."""
        return self._disk

    @property
    def cache_dir(self) -> str | None:
        return str(self._disk.root) if self._disk is not None else None

    # -- external trace files ----------------------------------------------------
    def resolve_trace(self, entry: str) -> TraceFileRef:
        """Resolve a ``trace:NAME`` workload entry to a content-pinned ref.

        ``NAME`` is tried as a ``trace_files`` alias, then a sample-library
        name (generated on demand), then a file path.  The ref pins the
        file by SHA-256 of its decompressed content, so everything keyed
        on it (job keys, cache entries, manifests) is path-independent.
        """
        name = entry[len(TRACE_PREFIX):] if entry.startswith(TRACE_PREFIX) else entry
        ref = self._trace_refs.get(name)
        if ref is not None:
            return ref
        if name in self.trace_files:
            path: str | Path = self.trace_files[name]
            if not Path(path).exists():
                raise FileNotFoundError(
                    f"trace alias {name!r} points at missing file {path}"
                )
        else:
            from ..traces.library import SAMPLE_TRACES, ensure_sample_trace

            if name in SAMPLE_TRACES:
                path = ensure_sample_trace(name)
            elif Path(name).exists():
                path = name
            else:
                known = sorted(set(self.trace_files) | set(SAMPLE_TRACES))
                raise ValueError(
                    f"unknown trace {name!r}: not a --trace-file alias, "
                    f"sample trace, or existing path (known: "
                    f"{', '.join(known)})"
                )
        ref = TraceFileRef.from_path(path, decoder=self.decoder)
        self._trace_refs[name] = ref
        return ref

    def canonical_workload(self, workload: Sequence[str]) -> list[str]:
        """Workload names for hashing: ``trace:`` entries become their
        content-addressed ``trace:<sha256>:<decoder>`` form (identity
        independent of aliases and file locations); synthetic benchmark
        names pass through unchanged, so pre-existing job keys are
        untouched."""
        return [
            self.resolve_trace(b).key() if b.startswith(TRACE_PREFIX) else b
            for b in workload
        ]

    def _trace_file_for(self, entry: str) -> Trace:
        """Materialize (and cache) the paced, decoded trace for one
        ``trace:`` workload entry, truncated to the instruction budget."""
        key = (entry, 0)
        trace = self._trace_cache.get(key)
        if trace is not None:
            return trace
        ref = self.resolve_trace(entry)
        disk_key = (
            content_key(
                [
                    SIM_FINGERPRINT,
                    "tracefile",
                    ref.sha256,
                    ref.decoder,
                    self.config.dram,
                    self.instructions,
                ]
            )
            if self._disk
            else ""
        )
        if self._disk is not None:
            cached = self._disk.get("trace", disk_key)
            if cached is not None:
                stats = cached.get("ingest") or [0, 0, False]
                trace = Trace(
                    (TraceEntry(e[0], e[1], bool(e[2]), e[3]) for e in cached["entries"]),
                    name=cached["name"],
                    ingest=TraceIngestStats(
                        requests_read=int(stats[0]),
                        lines_skipped=int(stats[1]),
                        truncated=bool(stats[2]),
                    ),
                )
                self._trace_cache[key] = trace
                return trace
        name = entry[len(TRACE_PREFIX):] if entry.startswith(TRACE_PREFIX) else entry
        source = TraceRequestSource(
            ref.path,
            decoder=ref.decoder,
            mapping=self.config.dram.mapping(),
            name=name,
        )
        trace = source.materialize(max_instructions=self.instructions)
        if not trace.entries:
            raise ValueError(f"trace {name!r} ({ref.path}) has no records")
        if self._disk is not None:
            ingest = trace.ingest
            assert ingest is not None
            self._disk.put(
                "trace",
                disk_key,
                {
                    "name": trace.name,
                    "entries": [
                        [e.gap, e.address, int(e.is_write), e.depends_on]
                        for e in trace.entries
                    ],
                    "ingest": [
                        ingest.requests_read,
                        ingest.lines_skipped,
                        ingest.truncated,
                    ],
                },
            )
        self._trace_cache[key] = trace
        return trace

    # -- trace construction ------------------------------------------------------
    def _trace_key(self, benchmark: str, copy_index: int) -> str:
        # Traces depend on the profile and generator code (pinned by the
        # simulator fingerprint), the address mapping (from the DRAM
        # config), the instruction budget and the effective seed.
        return content_key(
            [
                SIM_FINGERPRINT,
                benchmark,
                self.config.dram,
                self.instructions,
                self.seed + 1000 * copy_index,
                self.generator.write_fraction,
            ]
        )

    def trace_for(self, benchmark: str, copy_index: int = 0) -> Trace:
        """Deterministic trace for ``benchmark``; distinct ``copy_index``
        values give statistically identical but decorrelated traces (for
        workloads with repeated benchmarks).

        ``trace:`` entries come from their file instead: copies of the
        same file are identical (a recorded stream has exactly one
        realization — decorrelation only applies to synthetic threads).
        """
        if benchmark.startswith(TRACE_PREFIX):
            return self._trace_file_for(benchmark)
        key = (benchmark, copy_index)
        trace = self._trace_cache.get(key)
        if trace is not None:
            return trace
        disk_key = self._trace_key(benchmark, copy_index) if self._disk else ""
        if self._disk is not None:
            cached = self._disk.get("trace", disk_key)
            if cached is not None:
                trace = Trace(
                    (TraceEntry(e[0], e[1], bool(e[2]), e[3]) for e in cached["entries"]),
                    name=cached["name"],
                )
                self._trace_cache[key] = trace
                return trace
        trace = self.generator.generate(
            profile(benchmark),
            instructions=self.instructions,
            seed=self.seed + 1000 * copy_index,
        )
        if self._disk is not None:
            self._disk.put(
                "trace",
                disk_key,
                {
                    "name": trace.name,
                    "entries": [
                        [e.gap, e.address, int(e.is_write), e.depends_on]
                        for e in trace.entries
                    ],
                },
            )
        self._trace_cache[key] = trace
        return trace

    def _workload_traces(self, workload: list[str]) -> list[Trace]:
        counts: dict[str, int] = {}
        traces = []
        for benchmark in workload:
            index = counts.get(benchmark, 0)
            counts[benchmark] = index + 1
            traces.append(self.trace_for(benchmark, index))
        return traces

    # -- alone baseline -----------------------------------------------------------
    def _alone_key(self, benchmark: str) -> str:
        # The alone run uses a single core on the same memory system, so
        # the key deliberately ignores ``num_cores``: 4- and 16-core
        # suites share alone baselines, exactly as the paper's metric
        # definition implies.
        name = (
            self.resolve_trace(benchmark).key()
            if benchmark.startswith(TRACE_PREFIX)
            else benchmark
        )
        return content_key(
            [
                SIM_FINGERPRINT,
                "alone",
                name,
                replace(self.config, num_cores=1),
                self.instructions,
                self.seed,
                self.generator.write_fraction,
            ]
        )

    def alone(self, benchmark: str) -> AloneStats:
        """Alone-run statistics (cached in memory and on disk).

        JSON stores floats exactly (round-trip-safe), so a cached baseline
        is bit-identical to a freshly computed one — the parallel engine
        relies on this for serial/parallel equivalence.
        """
        if benchmark in self._alone_cache:
            return self._alone_cache[benchmark]
        disk_key = self._alone_key(benchmark) if self._disk else ""
        if self._disk is not None:
            cached = self._disk.get("alone", disk_key)
            if cached is not None:
                stats = AloneStats(**cached)
                self._alone_cache[benchmark] = stats
                return stats
        trace = self.trace_for(benchmark, 0)
        # One core, but the *same* memory system as the shared runs
        # ("running alone on the same system", Section 7.1).  The alone
        # run uses the execution backend directly (bit-identity makes the
        # disk-cached baselines backend-agnostic); verify mode checks the
        # contract on shared runs, where contention exercises arbitration.
        config = replace(self.config, num_cores=1)
        system = System(
            config,
            make_scheduler("FR-FCFS", 1),
            [trace],
            repeat=False,
            guard=guard_from_env(),
            backend="fast" if self.backend == "fast" else "python",
        )
        system.run()
        core = system.cores[0]
        snap = core.snapshot
        assert snap is not None
        # Explicit lookup: a compute-only thread never touches DRAM, so it
        # has no stats record; stats_for returns a zeroed default instead
        # of silently fabricating one inside the stats dict.
        mem = system.controller.stats_for(0)
        stats = AloneStats(
            benchmark=benchmark,
            ipc=snap.ipc,
            mcpi=snap.mcpi,
            ast_per_req=snap.avg_stall_per_request,
            blp=mem.bank_level_parallelism,
            row_hit_rate=mem.row_hit_rate,
            loads=snap.loads,
            cycles=snap.cycles,
        )
        if self._disk is not None:
            self._disk.put("alone", disk_key, asdict(stats))
        self._alone_cache[benchmark] = stats
        return stats

    # -- shared runs ------------------------------------------------------------
    def _job_key(
        self, workload: Sequence[str], scheduler_name: str, kwargs: dict
    ) -> str:
        """Stable content hash naming one simulation's trace files.

        The same simulation produces the same key whether it runs serially
        or inside a pool worker, so trace files land in the same place.
        """
        try:
            described = sorted(kwargs.items())
        except TypeError:  # pragma: no cover - exotic kwargs
            described = sorted((k, repr(v)) for k, v in kwargs.items())
        return content_key(
            [
                SIM_FINGERPRINT,
                self.config,
                self.canonical_workload(workload),
                scheduler_name,
                described,
                self.instructions,
                self.seed,
            ]
        )[:20]

    def run_workload(
        self,
        workload: list[str],
        scheduler: Scheduler | str,
        **scheduler_kwargs,
    ) -> WorkloadResult:
        """Run ``workload`` (one benchmark name per core) under a scheduler
        and return all paper metrics.

        When the runner's :class:`~repro.obs.config.TraceConfig` is active,
        the shared run is traced: structured events stream to a per-job
        JSONL file under ``trace.dir`` (plus a Perfetto-loadable Chrome
        trace when ``trace.perfetto``), and the periodic sampler's digest
        lands on ``WorkloadResult.telemetry``.  Alone-run baselines are
        never traced — they are cache-shared across workloads and must stay
        byte-identical regardless of observability settings.
        """
        if len(workload) != self.config.num_cores:
            raise ValueError(
                f"workload has {len(workload)} threads but the system has "
                f"{self.config.num_cores} cores"
            )
        if isinstance(scheduler, str):
            factory_name: str | None = scheduler
            scheduler_name = scheduler
            scheduler = make_scheduler(
                scheduler, self.config.num_cores, **scheduler_kwargs
            )
        else:
            factory_name = None
            scheduler_name = scheduler.name
        verify = self.backend == "verify"
        if verify and factory_name is None:
            raise ValueError(
                "verify backend needs a scheduler factory name (the shadow "
                "run must build fresh, unshared scheduler state); pass the "
                "scheduler as a string"
            )

        cfg = self.trace
        tracer: Tracer | None = None
        telemetry: Telemetry | None = None
        trace_path: Path | None = None
        if cfg.wants_events:
            safe_name = re.sub(r"[^A-Za-z0-9._-]+", "_", scheduler_name)
            job_key = self._job_key(workload, scheduler_name, scheduler_kwargs)
            trace_path = Path(cfg.dir) / f"{safe_name}-{job_key}.jsonl"
            tracer = Tracer([JsonlSink(trace_path)], events=cfg.events)
        if cfg.active:
            telemetry = Telemetry(
                cfg.sample_interval,
                probe=tracer.probe("sample") if tracer is not None else None,
            )

        traces = self._workload_traces(workload)
        system = System(
            self.config,
            scheduler,
            traces,
            repeat=True,
            tracer=tracer,
            telemetry=telemetry,
            # ``--guard`` / REPRO_GUARD: a fresh invariant checker per run
            # (the guard is stateful); None keeps every hook site free.
            guard=guard_from_env(),
            backend="python" if verify else self.backend,
        )
        if verify:
            # Verify mode compares the full command stream, so the
            # reference run records it (the shadow run records its own).
            system.controller.command_log = []
        try:
            sim_cycles = system.run()
        finally:
            if tracer is not None:
                tracer.close()
        # The JSONL sink opens lazily, so a run that emitted nothing (e.g.
        # a category filter selecting events this scheduler never produces)
        # leaves no file — and nothing to export.
        if (
            tracer is not None
            and cfg.perfetto
            and trace_path is not None
            and trace_path.exists()
        ):
            from ..obs import read_jsonl, write_chrome_trace

            write_chrome_trace(
                trace_path.with_suffix(".perfetto.json"),
                read_jsonl(trace_path),
            )

        result = self._collect_result(
            system, workload, scheduler_name, sim_cycles, telemetry
        )
        if verify:
            self._verify_shadow_run(
                system, result, workload, factory_name, scheduler_kwargs, traces
            )
        return result

    def _collect_result(
        self,
        system: System,
        workload: list[str],
        scheduler_name: str,
        sim_cycles: int,
        telemetry: Telemetry | None,
    ) -> WorkloadResult:
        """Package one finished system into a :class:`WorkloadResult`."""
        threads = []
        for thread_id, benchmark in enumerate(workload):
            core = system.cores[thread_id]
            snap = core.snapshot
            assert snap is not None
            mem = system.controller.stats_for(thread_id)
            base = self.alone(benchmark)
            ingest = getattr(core.trace, "ingest", None) or TraceIngestStats()
            threads.append(
                ThreadResult(
                    thread_id=thread_id,
                    benchmark=benchmark,
                    requests_read=ingest.requests_read,
                    lines_skipped=ingest.lines_skipped,
                    truncated=ingest.truncated,
                    ipc_shared=snap.ipc,
                    ipc_alone=base.ipc,
                    mcpi_shared=snap.mcpi,
                    mcpi_alone=base.mcpi,
                    ast_per_req=snap.avg_stall_per_request,
                    blp_shared=mem.bank_level_parallelism,
                    blp_alone=base.blp,
                    row_hit_rate=mem.row_hit_rate,
                    worst_latency=mem.latency_max,
                    row_hits=mem.row_hits,
                    row_conflicts=mem.row_conflicts,
                    latency_avg=mem.avg_latency,
                )
            )
        return WorkloadResult(
            scheduler=scheduler_name,
            workload=tuple(workload),
            threads=tuple(threads),
            sim_cycles=sim_cycles,
            telemetry=telemetry.summary() if telemetry is not None else None,
            events_processed=system.events_processed,
            events_elided=system.events_elided,
            min_rebuilds=system.min_rebuilds,
        )

    def _verify_shadow_run(
        self,
        reference: System,
        reference_result: WorkloadResult,
        workload: list[str],
        factory_name: str,
        scheduler_kwargs: dict,
        traces: list[Trace],
    ) -> None:
        """Verify mode: re-run on the fast backend and assert bit-identity.

        The shadow run shares the reference run's :class:`Trace` objects
        (traces are immutable) but builds fresh scheduler and guard state.
        It never records telemetry or event traces — observability output
        belongs to the reference run — and raises
        :class:`~repro.sim.verify.BackendMismatch` on any divergence in
        command stream, timing, statistics or final metrics.
        """
        shadow = System(
            self.config,
            make_scheduler(factory_name, self.config.num_cores, **scheduler_kwargs),
            traces,
            repeat=True,
            guard=guard_from_env(),
            backend="fast",
        )
        shadow.controller.command_log = []
        sim_cycles = shadow.run()
        compare_systems(reference, shadow)
        shadow_result = self._collect_result(
            shadow, workload, reference_result.scheduler, sim_cycles, None
        )
        compare_results(reference_result, shadow_result)

    # -- parallel fan-out ---------------------------------------------------------
    def effective_jobs(self, jobs: int | None = None) -> int:
        """Worker count: explicit argument, the runner's setting, then
        ``REPRO_JOBS`` (default 1 = serial)."""
        from .pool import default_jobs

        if jobs is not None:
            return max(1, jobs)
        if self.jobs is not None:
            return max(1, self.jobs)
        return default_jobs()

    def run_many(
        self,
        specs: Sequence[tuple[list[str], str, dict[str, Any]]],
        jobs: int | None = None,
    ) -> list[WorkloadResult]:
        """Run many ``(workload, scheduler name, scheduler kwargs)`` specs,
        fanning out over worker processes when ``jobs > 1``.

        Results come back in spec order and are bit-identical to running
        the same specs serially: every simulation is a pure function of
        its description, and alone-run baselines are pre-warmed into the
        shared on-disk cache so every worker reads the same values.
        """
        specs = list(specs)
        workers = self.effective_jobs(jobs)
        if workers <= 1 or len(specs) <= 1:
            return [
                self.run_workload(list(workload), name, **kwargs)
                for workload, name, kwargs in specs
            ]

        from .pool import SimJob, run_jobs

        if self._disk is not None:
            # Pre-warm alone baselines (one serial pass over the unique
            # benchmarks) so workers hit the disk cache instead of each
            # recomputing the same single-core runs.
            seen: set[str] = set()
            for workload, _name, _kwargs in specs:
                for benchmark in workload:
                    if benchmark not in seen:
                        seen.add(benchmark)
                        self.alone(benchmark)
        sim_jobs = [
            SimJob(
                config=self.config,
                workload=tuple(workload),
                scheduler=name,
                scheduler_kwargs=dict(kwargs),
                instructions=self.instructions,
                seed=self.seed,
                cache_dir=self.cache_dir,
                trace=self.trace,
                backend=self.backend,
                trace_files=tuple(sorted(self.trace_files.items())),
                decoder=self.decoder,
            )
            for workload, name, kwargs in specs
        ]
        return run_jobs(sim_jobs, workers)

    def cache_report(self) -> str:
        """One-line digest of this process's disk-cache traffic."""
        from .diskcache import GLOBAL_STATS

        return (
            f"disk cache: {GLOBAL_STATS['hits']} hits, "
            f"{GLOBAL_STATS['misses']} misses, "
            f"{GLOBAL_STATS['writes']} writes"
        )

    def compare_schedulers(
        self,
        workload: list[str],
        schedulers: list[str] | None = None,
        scheduler_kwargs: dict[str, dict] | None = None,
        jobs: int | None = None,
    ) -> dict[str, WorkloadResult]:
        """Run ``workload`` under several schedulers (paper's five by
        default) and return results keyed by scheduler name.  Scheduler
        runs are independent, so they parallelize when ``jobs > 1``."""
        from .factory import SCHEDULER_NAMES

        names = schedulers or SCHEDULER_NAMES
        kwargs = scheduler_kwargs or {}
        results = self.run_many(
            [(list(workload), name, kwargs.get(name, {})) for name in names],
            jobs=jobs,
        )
        return dict(zip(names, results))
