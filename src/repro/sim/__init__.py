"""System assembly and experiment running."""

from .factory import SCHEDULER_NAMES, make_scheduler
from .runner import AloneStats, ExperimentRunner, default_instructions
from .system import DramPort, System
from .verify import BACKENDS, BackendMismatch, backend_from_env

__all__ = [
    "SCHEDULER_NAMES",
    "make_scheduler",
    "AloneStats",
    "ExperimentRunner",
    "default_instructions",
    "DramPort",
    "System",
    "BACKENDS",
    "BackendMismatch",
    "backend_from_env",
]
