"""System assembly and experiment running."""

from .factory import SCHEDULER_NAMES, make_scheduler
from .runner import AloneStats, ExperimentRunner, default_instructions
from .system import DramPort, System

__all__ = [
    "SCHEDULER_NAMES",
    "make_scheduler",
    "AloneStats",
    "ExperimentRunner",
    "default_instructions",
    "DramPort",
    "System",
]
