"""System configuration dataclasses and the paper's baseline presets.

The baseline follows Table 2 of the paper: 4 GHz cores with a 128-entry
instruction window, 3-wide fetch/commit, 32 MSHRs, an FR-FCFS DDR2-800
memory controller with a 128-entry request buffer and 64-entry write
buffer, 8 banks per channel with 2 KB row buffers, and DRAM channels scaled
with the core count (1/2/4 channels for 4/8/16 cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .dram.address import AddressMapping
from .dram.timing import DramTiming, ddr2_800

__all__ = ["CoreConfig", "DramConfig", "SystemConfig", "baseline_system"]


@dataclass(frozen=True)
class CoreConfig:
    """Processor core parameters (paper Table 2)."""

    window_size: int = 128
    width: int = 3  # fetch/exec/commit width, instructions per cycle
    mshrs: int = 32  # maximum outstanding L2 misses (reads) per core

    def __post_init__(self) -> None:
        if self.window_size < 1 or self.width < 1 or self.mshrs < 1:
            raise ValueError("core parameters must be positive")


@dataclass(frozen=True)
class DramConfig:
    """Memory controller and DRAM device parameters."""

    timing: DramTiming = field(default_factory=ddr2_800)
    num_channels: int = 1
    num_banks: int = 8
    row_bytes: int = 2048
    request_buffer_size: int = 128
    write_buffer_size: int = 64
    # Write drain watermarks: when buffered writes exceed ``high`` the
    # controller prioritizes writes until occupancy drops below ``low``.
    write_drain_high: int = 48
    write_drain_low: int = 16

    def __post_init__(self) -> None:
        if self.num_channels < 1 or self.num_banks < 1:
            raise ValueError("need at least one channel and one bank")
        if not (0 <= self.write_drain_low <= self.write_drain_high):
            raise ValueError("invalid write drain watermarks")

    def mapping(self) -> AddressMapping:
        return AddressMapping(
            num_channels=self.num_channels,
            num_banks=self.num_banks,
            row_bytes=self.row_bytes,
        )


@dataclass(frozen=True)
class SystemConfig:
    """A full CMP memory-system configuration."""

    num_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    dram: DramConfig = field(default_factory=DramConfig)

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")

    def scaled_channels(self) -> "SystemConfig":
        """Scale DRAM channels with the core count as in the paper
        (1 channel per 4 cores, minimum 1)."""
        channels = max(1, self.num_cores // 4)
        return replace(self, dram=replace(self.dram, num_channels=channels))


def baseline_system(num_cores: int = 4) -> SystemConfig:
    """The paper's baseline CMP for a given core count.

    DRAM bandwidth (channel count) scales with cores: 1, 2, 4 channels for
    4, 8, 16 cores.
    """
    return SystemConfig(num_cores=num_cores).scaled_channels()
