#!/usr/bin/env python3
"""System-level thread priorities and purely opportunistic service.

PAR-BS exposes a QoS interface to system software (paper Section 5):

* a thread at priority level X is *marked* only every X-th batch, and
  higher-priority threads win ties inside batches — so priority 1 threads
  are served fastest, priority 2 half as often, and so on;
* threads at the special OPPORTUNISTIC level are never marked and are
  serviced only when a bank has no other work — ideal for background jobs
  that must not disturb a latency-critical application.

Usage:
    python examples/priority_qos.py [instructions-per-thread]
"""

import sys

from repro import OPPORTUNISTIC, ExperimentRunner


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    runner = ExperimentRunner(instructions=instructions)

    print("scenario 1: four lbm copies at priority levels 1, 1, 2, 8")
    result = runner.run_workload(
        ["lbm", "lbm", "lbm", "lbm"],
        "PAR-BS",
        priorities={0: 1, 1: 1, 2: 2, 3: 8},
    )
    for thread, level in zip(result.threads, (1, 1, 2, 8)):
        print(f"  lbm @ priority {level}: slowdown {thread.memory_slowdown:.2f}")

    print("\nscenario 2: omnetpp is critical; everything else is opportunistic")
    result = runner.run_workload(
        ["libquantum", "milc", "omnetpp", "astar"],
        "PAR-BS",
        priorities={0: OPPORTUNISTIC, 1: OPPORTUNISTIC, 2: 1, 3: OPPORTUNISTIC},
    )
    for thread in result.threads:
        tag = "critical" if thread.thread_id == 2 else "opportunistic"
        print(
            f"  {thread.benchmark:<11} ({tag:>13}): "
            f"slowdown {thread.memory_slowdown:.2f}"
        )
    print(
        "\nThe critical thread runs almost as if it owned the DRAM system,"
        "\nwhile opportunistic threads soak up only the leftover bandwidth."
    )


if __name__ == "__main__":
    main()
