#!/usr/bin/env python3
"""Trace one PAR-BS run and walk through a single batch's lifecycle.

Runs the paper's Case Study I workload under PAR-BS with the full trace
bus enabled (in-memory ring buffer plus a JSONL file), then:

* prints a human-readable walkthrough of one batch — its ``batch.formed``
  event with per-thread marked counts and the Max-Total ranking, the DRAM
  commands issued while it was the active batch, and the matching
  ``batch.completed`` event;
* writes the raw event stream as JSONL and as a Chrome-trace-event JSON
  that loads directly in https://ui.perfetto.dev (or chrome://tracing).

Usage:
    PYTHONPATH=src python examples/trace_batch_lifecycle.py \
        [--out traces/] [--instructions 20000] [--batch 3]
"""

import argparse
from pathlib import Path

from repro.config import baseline_system
from repro.obs import JsonlSink, RingBufferSink, Telemetry, Tracer, write_chrome_trace
from repro.sim.factory import make_scheduler
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System

WORKLOAD = ["libquantum", "mcf", "GemsFDTD", "xalancbmk"]


def run_traced(instructions: int, out_dir: Path):
    """Run PAR-BS on the Case Study I mix with every probe enabled."""
    out_dir.mkdir(parents=True, exist_ok=True)
    config = baseline_system(len(WORKLOAD))
    runner = ExperimentRunner(
        config, instructions=instructions, seed=0, cache_dir=None
    )
    traces = [runner.trace_for(b) for b in WORKLOAD]

    ring = RingBufferSink()
    jsonl_path = out_dir / "parbs-batch-lifecycle.jsonl"
    tracer = Tracer([ring, JsonlSink(jsonl_path)])
    telemetry = Telemetry(1000, probe=tracer.probe("sample"))
    scheduler = make_scheduler("PAR-BS", len(WORKLOAD))
    system = System(
        config, scheduler, traces, tracer=tracer, telemetry=telemetry
    )
    try:
        cycles = system.run()
    finally:
        tracer.close()
    return ring.events, cycles, jsonl_path, telemetry


def walkthrough(events: list[dict], batch_index: int) -> None:
    """Print the lifecycle of one batch from the recorded event stream."""
    formed = next(
        (
            e
            for e in events
            if e["ev"] == "batch.formed" and e["index"] == batch_index
        ),
        None,
    )
    if formed is None:
        indices = [e["index"] for e in events if e["ev"] == "batch.formed"]
        raise SystemExit(
            f"no batch #{batch_index}; run formed batches {indices[:1]}.."
            f"{indices[-1:]}"
        )
    completed = next(
        e
        for e in events
        if e["ev"] == "batch.completed" and e["index"] == batch_index
    )

    print(f"--- batch #{batch_index} ---")
    print(f"formed at cycle {formed['t']} with {formed['marked']} marked requests")
    print(f"  per-thread marked counts : {formed['per_thread']}")
    print(f"  Max-Total thread ranking : {formed['ranks']}")
    print(f"  per-thread read backlog  : {formed['backlog']}")

    # Everything the memory system did while this batch was active.
    window = [e for e in events if formed["t"] < e["t"] <= completed["t"]]
    issues = [e for e in window if e["ev"] == "request.issue"]
    cmds = [e for e in window if e["ev"] == "dram.cmd"]
    hits = sum(1 for e in cmds if e.get("row_hit"))
    cas = sum(1 for e in cmds if e["cmd"] in ("RD", "WR"))
    print(f"\nwhile active ({completed['t'] - formed['t']} cycles):")
    print(f"  {len(issues)} requests issued, {len(cmds)} DRAM commands")
    print(f"  row-hit rate over CAS commands: {hits}/{cas}")
    print("\nfirst requests serviced after formation:")
    for event in issues[:8]:
        print(
            f"  t={event['t']:>8}  req={event['req']:<5} thread={event['thread']} "
            f"ch={event['ch']} bank={event['bank']} row={event['row']} "
            f"({event['result']}, queued {event['queued']} cycles)"
        )

    print(
        f"\ncompleted at cycle {completed['t']} "
        f"after {completed['duration']} cycles"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=Path("traces"),
        help="directory for the JSONL and Perfetto output (default: traces/)",
    )
    parser.add_argument("--instructions", type=int, default=20_000)
    parser.add_argument(
        "--batch", type=int, default=3, help="batch index to walk through"
    )
    args = parser.parse_args()

    print(f"workload: {WORKLOAD} ({args.instructions} instructions/thread)\n")
    events, cycles, jsonl_path, telemetry = run_traced(
        args.instructions, args.out
    )
    walkthrough(events, args.batch)

    perfetto_path = write_chrome_trace(
        args.out / "parbs-batch-lifecycle.perfetto.json", events
    )
    batches = sum(1 for e in events if e["ev"] == "batch.formed")
    print(f"\n{len(events)} events over {cycles} simulated cycles, {batches} batches")
    for thread_id, hist in sorted(telemetry.histograms.items()):
        digest = hist.summary()
        print(
            f"  thread {thread_id} ({WORKLOAD[thread_id]:<12}) latency "
            f"p50={digest['p50']:<6g} p95={digest['p95']:<6g} "
            f"p99={digest['p99']:<6g} max={digest['max']:g}"
        )
    print(f"\nwrote {jsonl_path}")
    print(f"wrote {perfetto_path}  (open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
