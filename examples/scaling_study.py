#!/usr/bin/env python3
"""Scheduler behaviour as the core count scales (4 -> 8 -> 16).

The paper argues the DRAM system becomes a bigger fairness and performance
bottleneck as more cores share it (Section 8.2): interference grows, so
the gap between thread-unaware scheduling (FR-FCFS) and PAR-BS widens.
This example runs one category-balanced random mix per system size —
channels scale with cores as in the paper (1/2/4) — and prints unfairness
and throughput for FR-FCFS, STFM and PAR-BS.

Usage:
    python examples/scaling_study.py [instructions-per-thread]
"""

import sys

from repro import ExperimentRunner, baseline_system, random_mixes


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000

    for cores in (4, 8, 16):
        workload = random_mixes(cores, count=1, seed=11)[0]
        runner = ExperimentRunner(baseline_system(cores), instructions=instructions)
        print(f"\n{cores}-core system ({cores // 4 or 1} DRAM channel(s)):")
        print(f"  workload: {', '.join(workload)}")
        for name in ("FR-FCFS", "STFM", "PAR-BS"):
            result = runner.run_workload(workload, name)
            print(
                f"  {name:<8} unfairness={result.unfairness:5.2f}  "
                f"wspeedup={result.weighted_speedup:5.2f}  "
                f"worst-case latency={result.worst_case_latency}"
            )


if __name__ == "__main__":
    main()
