#!/usr/bin/env python3
"""Plugging a custom scheduling policy into the simulator.

The controller's arbitration interface (:class:`repro.schedulers.Scheduler`)
is three hooks and one ``select``: anything expressible as a priority over
the per-bank candidate list can be evaluated against the paper's policies
in a few lines.  This example implements *thread round-robin* — banks take
requests from threads in rotating order — and compares it with FR-FCFS and
PAR-BS on a mixed workload.

It also demonstrates composing the batching framework with a custom
within-batch policy, the "batching is orthogonal" claim of the paper.

Usage:
    python examples/custom_scheduler.py [instructions-per-thread]
"""

import sys
from typing import Sequence

from repro import ExperimentRunner
from repro.dram.request import MemoryRequest
from repro.schedulers.base import BankKey, Scheduler


class ThreadRoundRobinScheduler(Scheduler):
    """Rotates service across threads per bank; FCFS within a thread."""

    name = "RR"

    def __init__(self, num_threads: int) -> None:
        super().__init__()
        self.num_threads = num_threads
        self._next_turn: dict[BankKey, int] = {}

    def select(
        self, candidates: Sequence[MemoryRequest], bank: BankKey, now: int
    ) -> MemoryRequest:
        turn = self._next_turn.get(bank, 0)

        def distance(request: MemoryRequest) -> int:
            return (request.thread_id - turn) % self.num_threads

        choice = min(candidates, key=lambda r: (distance(r), r.arrival_time, r.request_id))
        self._next_turn[bank] = (choice.thread_id + 1) % self.num_threads
        return choice


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    runner = ExperimentRunner(instructions=instructions)
    workload = ["libquantum", "mcf", "omnetpp", "hmmer"]

    print(f"workload: {workload}\n")
    print(f"{'scheduler':<10} {'unfairness':>10} {'w-speedup':>10} {'h-speedup':>10}")
    rows = [
        ("FR-FCFS", runner.run_workload(workload, "FR-FCFS")),
        ("RR", runner.run_workload(workload, ThreadRoundRobinScheduler(4))),
        ("PAR-BS", runner.run_workload(workload, "PAR-BS")),
    ]
    for name, result in rows:
        print(
            f"{name:<10} {result.unfairness:>10.2f} "
            f"{result.weighted_speedup:>10.2f} {result.hmean_speedup:>10.3f}"
        )
    print(
        "\nRound-robin is fair-ish but throughput-blind: it ignores both"
        "\nrow-buffer locality and bank-level parallelism, which is exactly"
        "\nthe gap PAR-BS's within-batch ranking closes."
    )


if __name__ == "__main__":
    main()
