#!/usr/bin/env python3
"""Quickstart: compare the five DRAM schedulers on one 4-core workload.

Runs the paper's Case Study I (three memory-intensive benchmarks plus mcf,
which has very high bank-level parallelism) under FR-FCFS, FCFS, NFQ, STFM
and PAR-BS, and prints each scheduler's fairness and throughput.

Usage:
    python examples/quickstart.py [instructions-per-thread]
"""

import sys

from repro import CASE_STUDY_1, ExperimentRunner


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    runner = ExperimentRunner(instructions=instructions)

    print(f"workload: {CASE_STUDY_1} ({instructions} instructions/thread)\n")
    print(f"{'scheduler':<10} {'unfairness':>10} {'w-speedup':>10} {'h-speedup':>10}")
    for name, result in runner.compare_schedulers(CASE_STUDY_1).items():
        print(
            f"{name:<10} {result.unfairness:>10.2f} "
            f"{result.weighted_speedup:>10.2f} {result.hmean_speedup:>10.3f}"
        )

    print("\nper-thread memory slowdowns under PAR-BS:")
    parbs = runner.run_workload(CASE_STUDY_1, "PAR-BS")
    for thread in parbs.threads:
        print(
            f"  {thread.benchmark:<12} slowdown={thread.memory_slowdown:5.2f}  "
            f"BLP {thread.blp_alone:.2f} alone -> {thread.blp_shared:.2f} shared"
        )
    print(
        "\nPAR-BS preserves mcf's bank-level parallelism, so the thread with"
        "\nthe most memory-level parallelism is hurt the least."
    )


if __name__ == "__main__":
    main()
