#!/usr/bin/env python3
"""A resumable Marking-Cap campaign, driven from Python.

Campaigns make the paper's big scheduler x mix grids durable: the spec
expands to content-hash-keyed jobs, finished results land in a SQLite
store, and re-running only simulates what is missing.  Kill this script
at any point and run it again — it picks up where it stopped, and the
final report comes straight from the store.

The same spec could live in a TOML file (see campaign_smoke.toml) and be
driven by the CLI:

    python -m repro campaign run spec.toml
    python -m repro campaign report spec.toml

Usage:
    python examples/campaign_sweep.py [instructions-per-thread]
"""

import sys
import tempfile
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    Variant,
    campaign_report,
    run_campaign,
    status_report,
)


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000

    # Figure 11 in miniature: PAR-BS under three Marking-Caps, with
    # FR-FCFS as the unbatched reference, over two seeded random mixes.
    spec = CampaignSpec(
        name="cap-sweep-example",
        description="Marking-Cap ablation (Figure 11 in miniature)",
        variants=(
            Variant("FR-FCFS", "FR-FCFS"),
            Variant("c=1", "PAR-BS", (("marking_cap", 1),)),
            Variant("c=5", "PAR-BS", (("marking_cap", 5),)),
            Variant("no-c", "PAR-BS", (("marking_cap", None),)),
        ),
        mix_count=2,
        mix_seed=42,
        instructions=instructions,
    )
    print(spec.describe())

    db = Path(tempfile.gettempdir()) / "repro-campaign-example.sqlite"
    with ResultStore(db) as store:
        # First pass: simulate only half the grid, as if interrupted.
        half = len(spec.expand()) // 2
        stats = run_campaign(spec, store, limit=half)
        print(f"\nafter an 'interrupted' run:  {stats.summary_line(spec.name)}")
        print(status_report(spec, store))

        # Second pass: resume.  Stored cells are skipped, never re-run.
        stats = run_campaign(spec, store)
        print(f"\nafter resuming:  {stats.summary_line(spec.name)}")

        print()
        print(campaign_report(spec, store))
    print(f"(store kept at {db}; re-running this script skips all jobs)")


if __name__ == "__main__":
    main()
