#!/usr/bin/env python3
"""Memory performance "attack": a streaming hog vs. ordinary threads.

The paper's motivation cites denial-of-memory-service: under FR-FCFS, a
thread with a high row-buffer hit rate and high memory intensity (here,
libquantum — a pure streaming kernel, 98% row hits) keeps winning the
row-hit-first rule and effectively captures DRAM banks, starving other
threads and inflating their worst-case request latencies.

This example pits one hog against three ordinary applications and shows
how each scheduler divides the damage.  Request batching bounds how long
any request can be deferred, so PAR-BS caps both the victims' slowdowns
and the worst-case latency.

Usage:
    python examples/memory_hog_attack.py [instructions-per-thread]
"""

import sys

from repro import ExperimentRunner

HOG = "libquantum"
VICTIMS = ["omnetpp", "h264ref", "hmmer"]


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    runner = ExperimentRunner(instructions=instructions)
    workload = [HOG] + VICTIMS

    print(f"hog: {HOG}; victims: {', '.join(VICTIMS)}\n")
    header = f"{'scheduler':<10} {'hog slow':>9} {'worst victim':>13} {'WC latency':>11}"
    print(header)
    print("-" * len(header))
    for name, result in runner.compare_schedulers(workload).items():
        hog_slowdown = result.threads[0].memory_slowdown
        victim_slowdowns = [t.memory_slowdown for t in result.threads[1:]]
        print(
            f"{name:<10} {hog_slowdown:>9.2f} {max(victim_slowdowns):>13.2f} "
            f"{result.worst_case_latency:>11d}"
        )

    print(
        "\nUnder FR-FCFS the hog is barely slowed while victims stall far"
        "\nlonger; batching (PAR-BS) bounds the deferral of every request,"
        "\nso no victim can be starved regardless of the hog's access pattern."
    )


if __name__ == "__main__":
    main()
