"""Unit tests for the PAR-BS scheduler's prioritization rules."""

import pytest

from repro.config import DramConfig
from repro.core.batcher import OPPORTUNISTIC
from repro.core.parbs import ParBsScheduler
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest
from repro.dram.rqindex import BankReadIndex
from repro.events import EventQueue


def setup(**kwargs):
    queue = EventQueue()
    scheduler = ParBsScheduler(4, **kwargs)
    controller = MemoryController(queue, DramConfig(), scheduler, 4)
    return queue, controller, scheduler


def req(thread=0, bank=0, row=0, arrival=0, marked=False, priority=1):
    r = MemoryRequest(thread_id=thread, address=0, channel=0, bank=bank, row=row)
    r.arrival_time = arrival
    r.marked = marked
    r.priority_level = priority
    return r


def test_marked_beats_unmarked_row_hit():
    queue, controller, s = setup()
    controller.channels[0].banks[0].open_row = 7
    marked_conflict = req(row=1, marked=True, arrival=10)
    unmarked_hit = req(row=7, marked=False, arrival=0)
    assert s.select([unmarked_hit, marked_conflict], (0, 0), 20) is marked_conflict


def test_row_hit_beats_rank_within_batch():
    queue, controller, s = setup()
    controller.channels[0].banks[0].open_row = 7
    s._ranks = {0: 1, 1: 0}  # thread 1 ranked higher
    hit_low_rank = req(thread=0, row=7, marked=True)
    conflict_high_rank = req(thread=1, row=2, marked=True)
    assert s.select([conflict_high_rank, hit_low_rank], (0, 0), 0) is hit_low_rank


def test_rank_decides_between_equal_row_state():
    queue, controller, s = setup()
    s._ranks = {0: 1, 1: 0}
    a = req(thread=0, row=1, marked=True, arrival=0)
    b = req(thread=1, row=2, marked=True, arrival=5)
    assert s.select([a, b], (0, 0), 10) is b  # higher rank wins despite age


def test_age_breaks_final_ties():
    queue, controller, s = setup()
    s._ranks = {0: 0}
    older = req(thread=0, row=1, marked=True, arrival=0)
    younger = req(thread=0, row=2, marked=True, arrival=5)
    assert s.select([younger, older], (0, 0), 10) is older


def test_priority_rule_sits_between_marked_and_row_hit():
    queue, controller, s = setup()
    controller.channels[0].banks[0].open_row = 7
    high_pri_conflict = req(thread=0, row=1, marked=True, priority=1)
    low_pri_hit = req(thread=1, row=7, marked=True, priority=2)
    assert s.select([low_pri_hit, high_pri_conflict], (0, 0), 0) is high_pri_conflict


def test_opportunistic_requests_lose_to_everyone():
    queue, controller, s = setup()
    normal_unmarked = req(thread=0, row=1, priority=1, arrival=50)
    opportunistic = req(thread=1, row=2, priority=OPPORTUNISTIC, arrival=0)
    assert s.select([opportunistic, normal_unmarked], (0, 0), 60) is normal_unmarked


def test_within_batch_frfcfs_ignores_rank():
    queue, controller, s = setup(within_batch="frfcfs")
    assert s.ranking is None
    s._ranks = {}
    controller.channels[0].banks[0].open_row = 7
    hit = req(thread=0, row=7, marked=True, arrival=9)
    old = req(thread=1, row=1, marked=True, arrival=0)
    assert s.select([old, hit], (0, 0), 10) is hit


def test_within_batch_fcfs_ignores_row_state():
    queue, controller, s = setup(within_batch="fcfs")
    controller.channels[0].banks[0].open_row = 7
    hit = req(thread=0, row=7, marked=True, arrival=9)
    old = req(thread=1, row=1, marked=True, arrival=0)
    assert s.select([hit, old], (0, 0), 10) is old


def test_invalid_within_batch_rejected():
    with pytest.raises(ValueError):
        ParBsScheduler(4, within_batch="lifo")


def test_name_reflects_configuration():
    assert "max-total" in ParBsScheduler(4).name
    assert "frfcfs" in ParBsScheduler(4, within_batch="frfcfs").name
    assert "eslot" in ParBsScheduler(4, batching="eslot").name


def test_priorities_stamped_on_requests():
    queue, controller, s = setup(priorities={2: 8})
    r = MemoryRequest(thread_id=2, address=0, channel=0, bank=0, row=0)
    controller.enqueue(r)
    assert r.priority_level == 8


def bank_index(*requests):
    index = BankReadIndex()
    for r in requests:
        index.add(r)
    return index


def test_ranking_computed_over_full_backlog():
    queue, controller, s = setup()
    # Thread 0 spreads over banks; thread 1 piles into one bank.
    controller._reads[(0, 0)] = bank_index(req(thread=0, bank=0, row=0))
    controller._reads[(0, 1)] = bank_index(req(thread=0, bank=1, row=1))
    controller._reads[(0, 5)] = bank_index(
        *[req(thread=1, bank=5, row=i) for i in range(3)]
    )
    s._on_new_batch([])
    assert sorted(s._ranks) == [0, 1, 2, 3]
    assert s.rank_of(0) < s.rank_of(1)  # lower max-bank-load ranks higher
    # Threads with no backlog are the shortest jobs of all.
    assert s.rank_of(2) < s.rank_of(0)
    assert s.rank_of(3) < s.rank_of(0)


def test_end_to_end_completion():
    queue, controller, s = setup()
    done = []
    for i in range(20):
        r = req(thread=i % 4, bank=i % 8, row=i)
        r.on_complete = lambda _r: done.append(1)
        controller.enqueue(r)
    queue.run()
    assert len(done) == 20
    assert s.batcher.total_marked == 0
