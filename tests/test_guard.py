"""Runtime invariant guard: clean runs stay clean, broken schedulers get
caught with structured context, and the watchdog converts livelocks into
diagnosable failures."""

import pytest

from repro.config import SystemConfig
from repro.cpu.trace import Trace, TraceEntry
from repro.envknobs import EnvKnobError
from repro.events import SimulationStalled
from repro.guard import GUARD_MODES, Guard, InvariantViolation, guard_from_env
from repro.schedulers.frfcfs import FrFcfsScheduler
from repro.sim.factory import SCHEDULER_NAMES, make_scheduler
from repro.sim.system import System


def _traces(num_cores: int, length: int = 80) -> list[Trace]:
    # Mixed stride pattern: same-row runs (hits) interleaved with large
    # jumps (conflicts), different banks per thread.
    return [
        Trace(
            [
                TraceEntry(8, (i % 4) * 64 + (i // 4) * (1 << 16) + t * (1 << 21))
                for i in range(length)
            ]
        )
        for t in range(num_cores)
    ]


def _run_guarded(scheduler_name: str, mode: str = "strict") -> Guard:
    guard = Guard(mode)
    config = SystemConfig(num_cores=2)
    system = System(
        config, make_scheduler(scheduler_name, 2), _traces(2), guard=guard
    )
    system.run()
    return guard


def test_guard_from_env_modes():
    assert guard_from_env({}) is None
    assert guard_from_env({"REPRO_GUARD": "off"}) is None
    assert guard_from_env({"REPRO_GUARD": "check"}).mode == "check"
    assert guard_from_env({"REPRO_GUARD": "STRICT"}).mode == "strict"
    with pytest.raises(EnvKnobError):
        guard_from_env({"REPRO_GUARD": "paranoid"})
    assert GUARD_MODES == ("off", "check", "strict")


def test_guard_rejects_unknown_mode():
    with pytest.raises(ValueError):
        Guard("off")  # "off" means no Guard at all, not a silent one


@pytest.mark.parametrize("name", sorted(SCHEDULER_NAMES))
def test_all_schedulers_pass_strict_guard(name):
    guard = _run_guarded(name, mode="strict")  # strict: violations raise
    assert guard.violations == []
    summary = guard.summary()
    assert summary["enqueues"] > 0
    assert summary["issues"] > 0
    assert summary["completions"] > 0
    assert summary["violations"] == 0


def test_parbs_guard_checks_batching_invariants():
    guard = _run_guarded("PAR-BS", mode="strict")
    summary = guard.summary()
    assert summary["batches"] > 0
    assert summary["rankings"] > 0
    assert summary["violations"] == 0


class DoubleIssuingScheduler(FrFcfsScheduler):
    """Deliberately broken: re-selects a request it already issued."""

    name = "BROKEN-DOUBLE-ISSUE"

    def __init__(self) -> None:
        super().__init__()
        self._replay = None
        self._armed = False

    def on_issue(self, request, now):
        super().on_issue(request, now)
        if self._replay is None:
            self._replay = request
            self._armed = True

    def select_indexed(self, index, bank, now, open_row):
        if self._armed:
            self._armed = False
            return self._replay
        return super().select_indexed(index, bank, now, open_row)


def test_double_issue_caught_with_context():
    guard = Guard("strict")
    system = System(
        SystemConfig(num_cores=2), DoubleIssuingScheduler(), _traces(2),
        guard=guard,
    )
    with pytest.raises(InvariantViolation) as exc_info:
        system.run()
    violation = exc_info.value
    assert violation.kind == "conservation"
    assert "issued twice" in str(violation)
    # Structured context: the violation names when and where.
    assert violation.cycle >= 0
    assert violation.bank is not None
    assert violation.request_id is not None
    assert f"cycle={violation.cycle}" in str(violation)
    assert f"bank={violation.bank}" in str(violation)


def test_check_mode_collects_instead_of_raising():
    guard = Guard("check")
    # Drive the conservation hooks directly: a request that completes
    # without ever being enqueued must be recorded, not raised.
    from repro.dram.request import MemoryRequest, RequestType

    ghost = MemoryRequest(
        thread_id=0, address=0, channel=0, bank=3, row=1,
        type=RequestType.READ,
    )
    guard.on_complete(ghost, now=42)
    assert len(guard.violations) == 1
    assert guard.violations[0].kind == "conservation"
    assert guard.violations[0].cycle == 42
    assert guard.summary()["violations"] == 1


def test_watchdog_detects_livelock():
    system = System(
        SystemConfig(num_cores=1),
        make_scheduler("FR-FCFS", 1),
        _traces(1, length=40),
    )
    # Sever the memory system: loads are swallowed, responses never
    # arrive, the core stalls forever while a ticker keeps sim time
    # advancing — a livelock, not a drained queue.
    system.controller.enqueue = lambda request: None

    def tick():
        system.queue.schedule(system.queue.now + 1000, tick)

    system.queue.schedule(1, tick)
    with pytest.raises(SimulationStalled) as exc_info:
        system.run(max_events=None, watchdog_cycles=100_000)
    stalled = exc_info.value
    assert "livelocked" in str(stalled)
    # The diagnostic dump names the stuck machinery.
    assert stalled.report
    assert "core" in stalled.report


def test_watchdog_disabled_falls_back_to_event_budget():
    system = System(
        SystemConfig(num_cores=1),
        make_scheduler("FR-FCFS", 1),
        _traces(1, length=40),
    )
    system.controller.enqueue = lambda request: None

    def tick():
        system.queue.schedule(system.queue.now + 1, tick)

    system.queue.schedule(1, tick)
    from repro.events import SimulationError

    with pytest.raises(SimulationError):
        system.run(max_events=50_000, watchdog_cycles=None)


def test_guard_results_match_unguarded_run():
    # The guard observes; it must never perturb simulation results.
    def finish_time(guard):
        system = System(
            SystemConfig(num_cores=2),
            make_scheduler("PAR-BS", 2),
            _traces(2),
            guard=guard,
        )
        return system.run()

    assert finish_time(None) == finish_time(Guard("strict"))
