"""Unit tests for the two-level cache hierarchy."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.events import EventQueue


class RecordingDram:
    """Records DRAM accesses and completes reads after a fixed delay."""

    def __init__(self, queue, latency=100):
        self.queue = queue
        self.latency = latency
        self.reads = []
        self.writes = []

    def access(self, thread_id, address, is_write, on_complete):
        if is_write:
            self.writes.append(address)
            return
        self.reads.append(address)
        if on_complete is not None:
            self.queue.schedule_in(self.latency, on_complete)


def setup_hierarchy(**kwargs):
    queue = EventQueue()
    dram = RecordingDram(queue)
    hierarchy = CacheHierarchy(0, queue, dram, **kwargs)
    return queue, dram, hierarchy


def test_cold_miss_goes_to_dram():
    queue, dram, h = setup_hierarchy()
    done = []
    h.access(0, 0, False, lambda: done.append(queue.now))
    queue.run()
    assert dram.reads == [0]
    assert done and done[0] >= 100


def test_second_access_hits_in_l1():
    queue, dram, h = setup_hierarchy()
    h.access(0, 0, False, None)
    queue.run()
    done = []
    h.access(0, 0, False, lambda: done.append(queue.now))
    queue.run()
    assert dram.reads == [0]  # no second DRAM access
    assert done[0] - queue.now <= 0  # already completed
    assert h.l1.stats.hits == 1


def test_l1_hit_latency_applied():
    queue, dram, h = setup_hierarchy()
    h.access(0, 0, False, None)
    queue.run()
    start = queue.now
    done = []
    h.access(0, 0, False, lambda: done.append(queue.now))
    queue.run()
    assert done[0] == start + h.l1.latency


def test_l2_hit_after_l1_eviction():
    queue, dram, h = setup_hierarchy(l1_size=128, l1_assoc=1, l2_size=64 * 1024)
    h.access(0, 0, False, None)
    queue.run()
    # Evict line 0 from the 2-set L1 by touching another line in its set.
    h.access(0, 128, False, None)
    queue.run()
    assert h.l1.lookup(0) is False
    done = []
    h.access(0, 0, False, lambda: done.append(1))
    queue.run()
    assert dram.reads.count(0) == 1  # satisfied by L2
    assert h.l2.stats.hits >= 1


def test_mshr_merges_concurrent_misses_to_same_line():
    queue, dram, h = setup_hierarchy()
    done = []
    h.access(0, 0, False, lambda: done.append("a"))
    h.access(0, 32, False, lambda: done.append("b"))  # same 64B line
    queue.run()
    assert dram.reads == [0]
    assert sorted(done) == ["a", "b"]


def test_distinct_lines_issue_distinct_requests():
    queue, dram, h = setup_hierarchy()
    h.access(0, 0, False, None)
    h.access(0, 64, False, None)
    queue.run()
    assert sorted(dram.reads) == [0, 64]


def test_dirty_l2_eviction_writes_back_to_dram():
    queue, dram, h = setup_hierarchy(
        l1_size=128, l1_assoc=1, l2_size=256, l2_assoc=1
    )
    h.access(0, 0, True, None)  # write-allocate, dirty in L1
    queue.run()
    # Force the dirty line down and out: touch conflicting lines.
    h.access(0, 128, False, None)  # evicts 0 from L1 into L2 (dirty)
    queue.run()
    h.access(0, 256, False, None)  # evicts 0 from L2 -> DRAM write
    queue.run()
    assert 0 in dram.writes
    assert h.dram_writes >= 1


def test_write_miss_allocates():
    queue, dram, h = setup_hierarchy()
    h.access(0, 0, True, None)
    queue.run()
    assert h.l1.lookup(0) or h.l2.lookup(0)


def test_counters_track_dram_traffic():
    queue, dram, h = setup_hierarchy()
    for i in range(4):
        h.access(0, i * 64, False, None)
    queue.run()
    assert h.dram_reads == 4
