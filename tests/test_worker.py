"""Distributed drain tests: N workers, one store, exactly-once results.

The acceptance bar for the work-queue engine:

* two independent workers (own connections, own queues) drain one
  campaign to the same bytes a single golden worker produces — no job
  runs twice, no job is lost;
* a ``leasekill`` chaos fault (worker dies right after claiming) costs
  nothing: the in-process drain retries and the campaign still matches
  the golden export;
* the resurrection scenario: a worker whose heartbeats are frozen
  (``hbfreeze``) loses its lease mid-simulation, a peer reclaims and
  commits, and the original worker's late commit is fenced off — the
  final export is still byte-identical to the golden run.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.campaign.report import export_text
from repro.campaign.spec import CampaignSpec, Variant
from repro.campaign.store import ResultStore
from repro.campaign.worker import drain_campaign
from repro.guard.chaos import ChaosPlan


def _spec(**overrides) -> CampaignSpec:
    base = dict(
        name="drains",
        variants=(Variant("FCFS", "FCFS"), Variant("FR-FCFS", "FR-FCFS")),
        mix_count=2,
        instructions=20_000,
    )
    base.update(overrides)
    return CampaignSpec(**base)


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """The single-worker export every distributed scenario must match."""
    spec = _spec()
    path = tmp_path_factory.mktemp("golden") / "golden.sqlite"
    with ResultStore(path) as store:
        stats = drain_campaign(spec, store, worker_id="golden")
        assert stats.completed == len(spec.expand())
        return export_text(spec, store, fmt="csv")


def _drain_in_thread(path, spec, worker_id, results, **kwargs):
    """One worker with its own connection (sqlite connections are
    thread-bound), collecting its WorkerStats into ``results``."""

    def run() -> None:
        with ResultStore(path) as store:
            results[worker_id] = drain_campaign(
                spec, store, worker_id=worker_id, **kwargs
            )

    thread = threading.Thread(target=run, name=worker_id)
    thread.start()
    return thread


def test_two_workers_drain_to_golden_bytes(tmp_path, golden):
    spec = _spec()
    path = tmp_path / "two.sqlite"
    results: dict[str, object] = {}
    threads = [
        _drain_in_thread(path, spec, wid, results) for wid in ("a", "b")
    ]
    for thread in threads:
        thread.join()
    a, b = results["a"], results["b"]
    # Every job ran exactly once, split between the two workers.
    assert a.completed + b.completed == len(spec.expand())
    assert a.failed == b.failed == 0
    assert a.fenced == b.fenced == 0
    # Both workers drained to completion: each saw the other's commits.
    assert a.completed + a.foreign_done == len(spec.expand())
    assert b.completed + b.foreign_done == len(spec.expand())
    with ResultStore(path) as store:
        assert export_text(spec, store, fmt="csv") == golden


def test_leasekill_chaos_is_retried_in_process(tmp_path, golden):
    """An in-process drain hit by leasekill faults (one per job) retries
    each job locally and still completes the campaign bit-for-bit."""
    spec = _spec()
    chaos = ChaosPlan.parse(f"leasekill=1,dir={tmp_path / 'markers'}")
    with ResultStore(tmp_path / "lk.sqlite") as store:
        stats = drain_campaign(
            spec, store, worker_id="victim", chaos=chaos, retries=2
        )
        assert stats.completed == len(spec.expand())
        assert stats.failed == 0
        assert stats.retried == len(spec.expand())  # one fault per job
        assert export_text(spec, store, fmt="csv") == golden


def test_frozen_worker_is_fenced_and_peer_wins(tmp_path):
    """Stale-worker resurrection, fully directed: worker A's heartbeats
    freeze, its 0.15s lease expires mid-simulation (the job takes ~0.5s
    and never reaches the in-sim heartbeat checkpoint), worker B reclaims
    and commits under a long lease, and A's late commit is rejected by
    the fencing token — exactly one result lands."""
    spec = _spec(
        variants=(Variant("FCFS", "FCFS"),),
        mix_count=1,
        instructions=50_000,
    )  # a single ~0.5s job
    (key,) = [job.key for job in spec.expand()]
    path = tmp_path / "freeze.sqlite"
    chaos = ChaosPlan.parse(f"hbfreeze=1,dir={tmp_path / 'markers'}")
    results: dict[str, object] = {}
    frozen = _drain_in_thread(
        path,
        spec,
        "frozen",
        results,
        chaos=chaos,
        lease_s=0.15,
        heartbeat_s=0.05,
        poll_s=0.05,
    )
    # Only start the rescuer once the frozen worker provably holds the
    # lease, so who-claims-first is not a race.
    with ResultStore(path) as reader:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            lease = reader.leases_for([key]).get(key)
            if lease is not None and lease["worker_id"] == "frozen":
                break
            time.sleep(0.01)
        else:
            pytest.fail("frozen worker never claimed the job")
    rescuer = _drain_in_thread(
        path, spec, "rescuer", results, lease_s=30.0, poll_s=0.02
    )
    frozen.join()
    rescuer.join()
    a, b = results["frozen"], results["rescuer"]
    # The rescuer reclaimed the expired lease and its commit stood.
    assert (b.reclaimed, b.completed, b.fenced) == (1, 1, 0)
    # The frozen worker lost the job to the fence and saw the peer's
    # result settle it.
    assert (a.completed, a.fenced, a.lost, a.foreign_done) == (0, 1, 1, 1)
    with ResultStore(path) as store:
        row = store._conn.execute(
            "SELECT status, attempts FROM jobs WHERE key = ?", (key,)
        ).fetchone()
        # Exactly-once: done, committed by exactly one worker (a fenced
        # double-commit would have bumped attempts to 2).
        assert (row["status"], row["attempts"]) == ("done", 1)
        assert store.leases_for([key]) == {}
        with ResultStore(tmp_path / "freeze-golden.sqlite") as gstore:
            drain_campaign(spec, gstore, worker_id="golden")
            assert export_text(spec, store, fmt="csv") == export_text(
                spec, gstore, fmt="csv"
            )
