"""Tests for the ASCII bar chart helper."""

from repro.experiments.reporting import ascii_bars


def test_bars_scale_to_peak():
    text = ascii_bars({"a": 1.0, "b": 2.0}, width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10


def test_bars_include_values():
    text = ascii_bars({"x": 1.234}, width=4)
    assert "1.234" in text


def test_bars_with_title():
    text = ascii_bars({"x": 1.0}, title="unfairness:")
    assert text.splitlines()[0] == "unfairness:"


def test_bars_empty_mapping():
    assert ascii_bars({}) == ""
    assert ascii_bars({}, title="t") == "t"


def test_bars_zero_values_render_without_crash():
    text = ascii_bars({"a": 0.0, "b": 0.0})
    assert "0.000" in text


def test_bars_labels_aligned():
    text = ascii_bars({"short": 1.0, "a-much-longer-label": 1.0}, width=5)
    starts = {line.index("#") for line in text.splitlines()}
    assert len(starts) == 1
