"""Unit tests for the synthetic trace generator."""

import pytest

from repro.dram.address import AddressMapping
from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.profiles import profile


@pytest.fixture(scope="module")
def generator():
    return TraceGenerator()


def test_deterministic_given_seed(generator):
    a = generator.generate(profile("mcf"), instructions=20_000, seed=1)
    b = generator.generate(profile("mcf"), instructions=20_000, seed=1)
    assert list(a) == list(b)


def test_different_seeds_differ(generator):
    a = generator.generate(profile("mcf"), instructions=20_000, seed=1)
    b = generator.generate(profile("mcf"), instructions=20_000, seed=2)
    assert list(a) != list(b)


def test_mpki_matches_target(generator):
    for name in ("mcf", "libquantum", "hmmer"):
        trace = generator.generate(profile(name), instructions=100_000, seed=0)
        assert trace.accesses_per_kilo_instruction() == pytest.approx(
            profile(name).mpki, rel=0.15
        )


def test_low_mpki_benchmarks_get_minimum_accesses(generator):
    trace = generator.generate(profile("povray"), instructions=50_000, seed=0)
    assert trace.memory_accesses >= 24


def test_write_fraction(generator):
    trace = generator.generate(profile("mcf"), instructions=100_000, seed=0)
    fraction = trace.writes / trace.memory_accesses
    assert fraction == pytest.approx(0.10, abs=0.03)


def test_streaming_benchmark_has_sequential_runs(generator):
    trace = generator.generate(profile("libquantum"), instructions=50_000, seed=0)
    reads = [e.address for e in trace]
    sequential = sum(
        1 for a, b in zip(reads, reads[1:]) if b - a == 64
    )
    assert sequential / len(reads) > 0.8  # almost a pure stream


def test_low_locality_benchmark_jumps_often(generator):
    trace = generator.generate(profile("GemsFDTD"), instructions=50_000, seed=0)
    addresses = [e.address for e in trace]
    sequential = sum(1 for a, b in zip(addresses, addresses[1:]) if b - a == 64)
    assert sequential / len(addresses) < 0.6


def test_chained_benchmark_has_dependencies(generator):
    trace = generator.generate(profile("hmmer"), instructions=50_000, seed=0)
    deps = sum(1 for e in trace if e.depends_on is not None)
    assert deps > 0.3 * len(trace)


def test_streaming_benchmark_has_few_dependencies(generator):
    trace = generator.generate(profile("libquantum"), instructions=50_000, seed=0)
    deps = sum(1 for e in trace if e.depends_on is not None)
    assert deps < 0.2 * len(trace)


def test_dependencies_point_backwards_to_reads(generator):
    trace = generator.generate(profile("mcf"), instructions=50_000, seed=0)
    for i, entry in enumerate(trace):
        if entry.depends_on is not None:
            assert entry.depends_on < i
            assert not trace[entry.depends_on].is_write


def test_high_blp_benchmark_spreads_banks(generator):
    mapping = AddressMapping()
    trace = generator.generate(profile("mcf"), instructions=50_000, seed=0)
    window_banks = set()
    for entry in list(trace)[:16]:
        coords = mapping.map(entry.address)
        window_banks.add((coords.channel, coords.bank))
    assert len(window_banks) >= 4


def test_instructions_too_small_rejected(generator):
    with pytest.raises(ValueError):
        generator.generate(profile("mcf"), instructions=10)


def test_write_fraction_validation():
    with pytest.raises(ValueError):
        TraceGenerator(write_fraction=1.0)


def test_generate_trace_convenience():
    trace = generate_trace(profile("astar"), instructions=30_000, seed=0)
    assert trace.name == "astar"
    assert len(trace) > 0


def test_total_instructions_close_to_target(generator):
    trace = generator.generate(profile("mcf"), instructions=100_000, seed=0)
    assert trace.total_instructions == pytest.approx(100_000, rel=0.2)


def test_knobs_table_covers_all_profiles(generator):
    from repro.workloads.generator import _CALIBRATED_KNOBS
    from repro.workloads.profiles import PROFILES

    assert set(_CALIBRATED_KNOBS) == set(PROFILES)
    for walkers, dep, cont in _CALIBRATED_KNOBS.values():
        assert walkers >= 1
        assert 0.0 <= dep <= 1.0
        assert 0.0 <= cont <= 1.0


def test_solve_run_length_monotonic(generator):
    low = generator._solve_run_length(0.2)
    high = generator._solve_run_length(0.9)
    assert high > low >= 1.0
