"""Unit tests for the abstract within-batch model (Figures 1-3)."""

from fractions import Fraction

import pytest

from repro.core.abstract_model import AbstractBatch, AbstractRequest
from repro.experiments.abstract_fig3 import FIG3_BATCH, run_fig3


def batch(*reqs):
    return AbstractBatch([AbstractRequest(*r) for r in reqs])


def test_single_request_costs_one_unit():
    b = batch((1, 0, 5))
    result = b.schedule("fcfs")
    assert result.completion[1] == Fraction(1)


def test_row_hit_costs_half():
    b = batch((1, 0, 5), (1, 0, 5))
    result = b.schedule("fcfs")
    assert result.completion[1] == Fraction(3, 2)


def test_different_rows_cost_full_units():
    b = batch((1, 0, 5), (1, 0, 6))
    assert batch((1, 0, 5), (1, 0, 6)).schedule("fcfs").completion[1] == Fraction(2)


def test_banks_operate_in_parallel():
    b = batch((1, 0, 5), (1, 1, 6), (1, 2, 7))
    result = b.schedule("fcfs")
    assert result.completion[1] == Fraction(1)  # all three banks in parallel


def test_fcfs_preserves_arrival_order():
    b = batch((1, 0, 5), (2, 0, 6), (1, 0, 7))
    order = b.schedule("fcfs").bank_order[0]
    assert [r.thread for r in order] == [1, 2, 1]


def test_frfcfs_reorders_row_hits_first():
    # Arrival: T1 row5, T2 row6, T1 row5 — FR-FCFS chains the row-5 hits.
    b = batch((1, 0, 5), (2, 0, 6), (1, 0, 5))
    order = b.schedule("fr-fcfs").bank_order[0]
    assert [r.thread for r in order] == [1, 1, 2]
    result = b.schedule("fr-fcfs")
    assert result.completion[1] == Fraction(3, 2)
    assert result.completion[2] == Fraction(5, 2)


def test_max_total_ranks_shortest_job_first():
    b = batch((1, 0, 1), (2, 0, 2), (2, 1, 3), (2, 2, 4), (2, 3, 5))
    ranks = b.max_total_ranks()
    assert ranks[1] < ranks[2]  # T1: one request; T2: four spread


def test_parbs_services_highest_rank_first():
    # T1 has one request per bank; T2 floods bank 0.
    b = batch((2, 0, 9), (2, 0, 9), (2, 0, 9), (1, 0, 1), (1, 1, 2))
    result = b.schedule("par-bs")
    assert result.completion[1] == Fraction(1)  # T1 first everywhere


def test_parbs_average_never_worse_than_fcfs_on_figure_layout():
    fcfs = FIG3_BATCH.schedule("fcfs").average_completion
    frfcfs = FIG3_BATCH.schedule("fr-fcfs").average_completion
    parbs = FIG3_BATCH.schedule("par-bs").average_completion
    assert parbs < frfcfs < fcfs


def test_fig3_thread1_completes_in_one_unit_under_parbs():
    result = FIG3_BATCH.schedule("par-bs")
    assert result.completion[1] == Fraction(1)


def test_fig3_row_hits_not_sacrificed_by_parbs():
    """PAR-BS achieves as many row hits as FR-FCFS within the batch."""

    def hits(result):
        count = 0
        for order in result.bank_order.values():
            open_row = None
            for r in order:
                if r.row == open_row:
                    count += 1
                open_row = r.row
        return count

    assert hits(FIG3_BATCH.schedule("par-bs")) >= hits(FIG3_BATCH.schedule("fr-fcfs"))


def test_explicit_ranks_override_max_total():
    b = batch((1, 0, 1), (2, 0, 2))
    result = b.schedule("par-bs", ranks={1: 1, 2: 0})
    order = result.bank_order[0]
    assert order[0].thread == 2


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        batch((1, 0, 1)).schedule("sjf")


def test_from_bank_columns_orders_bottom_up():
    b = AbstractBatch.from_bank_columns({0: [(1, 5), (2, 6)], 1: [(3, 7)]})
    orders = [(r.thread, r.bank, r.order) for r in b.requests]
    # Level 0 of each bank precedes level 1.
    t1 = next(r for r in b.requests if r.thread == 1)
    t2 = next(r for r in b.requests if r.thread == 2)
    assert t1.order < t2.order
    assert len(b.requests) == 3


def test_average_completion_empty_batch():
    assert AbstractBatch([]).schedule("fcfs").average_completion == Fraction(0)


def test_as_floats():
    result = batch((1, 0, 5)).schedule("fcfs")
    assert result.as_floats() == {1: 1.0}


def test_run_fig3_reports_all_policies():
    result = run_fig3()
    assert set(result.schedules) == {"fcfs", "fr-fcfs", "par-bs"}
    assert "Figure 3" in result.report()
