"""Unit tests for the memory controller."""

import pytest

from repro.config import DramConfig
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.events import EventQueue
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.frfcfs import FrFcfsScheduler


def make_controller(scheduler=None, **config_kwargs):
    queue = EventQueue()
    config = DramConfig(**config_kwargs)
    controller = MemoryController(queue, config, scheduler or FrFcfsScheduler(), 4)
    return queue, controller


def read(thread=0, bank=0, row=0, channel=0):
    return MemoryRequest(
        thread_id=thread, address=0, channel=channel, bank=bank, row=row
    )


def write(thread=0, bank=0, row=0, channel=0):
    return MemoryRequest(
        thread_id=thread,
        address=0,
        channel=channel,
        bank=bank,
        row=row,
        type=RequestType.WRITE,
    )


def test_single_read_completes_with_uncontended_latency():
    queue, controller = make_controller()
    done = []
    r = read(row=7)
    r.on_complete = lambda req: done.append(queue.now)
    controller.enqueue(r)
    queue.run()
    t = controller.timing
    # Closed-row access + response overhead.
    assert done == [t.tRCD + t.tCL + t.tBUS + t.overhead]


def test_row_hits_are_faster_than_conflicts():
    queue, controller = make_controller()
    for row in (1, 1, 2):
        controller.enqueue(read(row=row))
    queue.run()
    stats = controller.thread_stats[0]
    assert stats.row_hits == 1
    assert stats.row_conflicts == 2  # closed counts as non-hit


def test_requests_to_different_banks_overlap():
    queue, controller = make_controller()
    times = []
    for bank in range(4):
        r = read(bank=bank, row=1)
        r.on_complete = lambda req: times.append(queue.now)
        controller.enqueue(r)
    queue.run()
    t = controller.timing
    serial = 4 * (t.tRCD + t.tCL + t.tBUS)
    assert max(times) < serial  # parallel service beats serialization


def test_same_bank_requests_serialize():
    queue, controller = make_controller()
    completions = []
    for i in range(2):
        r = read(bank=0, row=i + 10)
        r.on_complete = lambda req: completions.append(queue.now)
        controller.enqueue(r)
    queue.run()
    t = controller.timing
    assert completions[1] - completions[0] >= t.tRP  # at least a precharge apart


def test_reads_prioritized_over_writes():
    queue, controller = make_controller()
    w = write(bank=0, row=1)
    r = read(bank=0, row=2)
    controller.enqueue(w)
    controller.enqueue(r)
    queue.run()
    assert r.issue_time is not None and w.issue_time is not None
    # Both arrive before arbitration; the read must win the first slot.
    assert r.issue_time <= w.issue_time


def test_write_drain_mode_triggers_at_watermark():
    queue, controller = make_controller(write_drain_high=4, write_drain_low=1)
    for i in range(6):
        controller.enqueue(write(bank=i % 2, row=i))
    assert controller._draining_writes is True
    queue.run()
    assert controller._draining_writes is False
    assert controller.total_writes == 6


def test_pending_reads_counts_by_thread():
    queue, controller = make_controller()
    controller.enqueue(read(thread=1, bank=0))
    controller.enqueue(read(thread=1, bank=1))
    controller.enqueue(read(thread=2, bank=2))
    assert controller.pending_reads() == 3
    assert controller.pending_reads(1) == 2
    assert controller.pending_reads(2) == 1
    assert controller.pending_reads(3) == 0


def test_latency_stats_accumulate():
    queue, controller = make_controller()
    for bank in range(3):
        controller.enqueue(read(bank=bank, row=1))
    queue.run()
    stats = controller.thread_stats[0]
    assert stats.reads == 3
    assert stats.latency_sum > 0
    assert stats.latency_max >= stats.latency_sum / 3
    assert controller.worst_case_latency() == stats.latency_max


def test_blp_measures_parallel_service():
    queue, controller = make_controller()
    for bank in range(4):
        controller.enqueue(read(bank=bank, row=1))
    queue.run()
    blp = controller.thread_stats[0].bank_level_parallelism
    assert blp > 1.5  # four banks largely overlapped


def test_blp_is_one_for_serialized_access():
    queue, controller = make_controller()

    def chain(i):
        if i >= 3:
            return
        r = read(bank=0, row=i)
        r.on_complete = lambda req: chain(i + 1)
        controller.enqueue(r)

    chain(0)
    queue.run()
    assert controller.thread_stats[0].bank_level_parallelism == pytest.approx(1.0)


def test_outstanding_counts_unissued_requests():
    queue, controller = make_controller()
    controller.enqueue(read(bank=0, row=1))
    controller.enqueue(read(bank=0, row=2))
    assert controller.outstanding() == 2
    queue.run()
    assert controller.outstanding() == 0


def test_fcfs_scheduler_services_in_arrival_order():
    queue, controller = make_controller(scheduler=FcfsScheduler())
    reqs = [read(bank=0, row=i) for i in range(3)]
    for r in reqs:
        controller.enqueue(r)
    queue.run()
    issues = [r.issue_time for r in reqs]
    assert issues == sorted(issues)


def test_multi_channel_requests_route_to_channels():
    queue, controller = make_controller(num_channels=2)
    r0 = read(bank=0, channel=0, row=1)
    r1 = read(bank=0, channel=1, row=1)
    controller.enqueue(r0)
    controller.enqueue(r1)
    queue.run()
    # Different channels: same-bank-index requests overlap fully.
    assert r0.issue_time == r1.issue_time


def test_completion_overhead_charged_on_response():
    queue, controller = make_controller()
    seen = []
    r = read(row=3)
    r.on_complete = lambda req: seen.append(queue.now)
    controller.enqueue(r)
    queue.run()
    assert seen[0] == r.completion_time + controller.timing.overhead
