"""Unit tests for benchmark profiles and workload mixes."""

import pytest

from repro.workloads.mixes import (
    CASE_STUDY_1,
    CASE_STUDY_2,
    CASE_STUDY_3,
    EIGHT_CORE_MIX,
    FIG8_SAMPLE_MIXES,
    SIXTEEN_CORE_MIXES,
    random_mixes,
)
from repro.workloads.profiles import PROFILES, by_category, category_bits, profile


def test_all_28_table3_benchmarks_present():
    assert len(PROFILES) == 28
    assert {p.number for p in PROFILES.values()} == set(range(1, 29))


def test_lookup_by_name_and_number():
    assert profile("mcf").number == 9
    assert profile(9).name == "mcf"
    with pytest.raises(KeyError):
        profile("doom")
    with pytest.raises(KeyError):
        profile(99)


def test_category_bits_composition():
    assert category_bits(True, True, True) == 7
    assert category_bits(True, False, True) == 5
    assert category_bits(False, False, False) == 0


def test_category_flags():
    mcf = profile("mcf")  # category 5 = 101
    assert mcf.memory_intensive
    assert not mcf.high_row_locality
    assert mcf.high_bank_parallelism
    sjeng = profile("sjeng")  # category 0
    assert not sjeng.memory_intensive


def test_by_category_partitions_profiles():
    total = sum(len(by_category(c)) for c in range(8))
    assert total == 28
    assert all(p.category == 7 for p in by_category(7))
    assert {p.name for p in by_category(7)} == {"leslie3d", "soplex", "lbm", "sphinx3"}


def test_table3_values_spot_check():
    libq = profile("libquantum")
    assert libq.mpki == 50.00
    assert libq.row_hit_rate == pytest.approx(0.984)
    assert libq.blp == 1.10
    assert libq.ast_per_req == 181
    assert profile("mcf").blp == 4.75


def test_case_study_compositions():
    assert CASE_STUDY_1 == ["libquantum", "mcf", "GemsFDTD", "xalancbmk"]
    assert CASE_STUDY_2 == ["matlab", "h264ref", "omnetpp", "hmmer"]
    assert CASE_STUDY_3 == ["lbm"] * 4
    assert len(EIGHT_CORE_MIX) == 8
    assert EIGHT_CORE_MIX[0] == "mcf"


def test_fig8_sample_mixes():
    assert len(FIG8_SAMPLE_MIXES) == 10
    assert all(len(m) == 4 for m in FIG8_SAMPLE_MIXES)
    assert FIG8_SAMPLE_MIXES[5] == ["leslie3d"] * 4
    for mix in FIG8_SAMPLE_MIXES:
        for name in mix:
            assert name in PROFILES


def test_sixteen_core_mixes_have_16_threads():
    assert len(SIXTEEN_CORE_MIXES) == 5
    for name, mix in SIXTEEN_CORE_MIXES.items():
        assert len(mix) == 16, name
        for bench in mix:
            assert bench in PROFILES


def test_intensive16_is_most_intensive():
    intensive = SIXTEEN_CORE_MIXES["intensive16"]
    nonintensive = SIXTEEN_CORE_MIXES["non-intensive16"]
    avg = lambda mix: sum(profile(b).mcpi for b in mix) / len(mix)
    assert avg(intensive) > avg(nonintensive)


def test_random_mixes_shape_and_determinism():
    a = random_mixes(4, count=10, seed=1)
    b = random_mixes(4, count=10, seed=1)
    assert a == b
    assert len(a) == 10
    assert all(len(m) == 4 for m in a)


def test_random_mixes_differ_across_seeds():
    assert random_mixes(4, count=10, seed=1) != random_mixes(4, count=10, seed=2)


def test_random_mixes_valid_benchmarks():
    for mix in random_mixes(8, count=5, seed=3):
        assert len(mix) == 8
        for name in mix:
            assert name in PROFILES


def test_random_mixes_are_unique():
    mixes = random_mixes(4, count=30, seed=4)
    keys = {tuple(sorted(m)) for m in mixes}
    assert len(keys) == len(mixes)


def test_random_mixes_validation():
    with pytest.raises(ValueError):
        random_mixes(0, count=5)
    with pytest.raises(ValueError):
        random_mixes(4, count=0)


def test_random_mixes_span_categories():
    mixes = random_mixes(4, count=20, seed=5)
    cats = {profile(b).category for m in mixes for b in m}
    assert len(cats) >= 6  # broad category coverage


# Golden sample pinning the mix-sampling algorithm.  Campaign job keys
# hash the sampled mixes, so a silent change to the sampling procedure
# (category order, RNG usage, dedup rule) would orphan every stored
# result; this literal makes such a change an explicit, visible choice.
GOLDEN_MIXES_4CORE_SEED42 = [
    ["omnetpp", "hmmer", "soplex", "cactusADM"],
    ["omnetpp", "mcf", "cactusADM", "hmmer"],
    ["sjeng", "mcf", "namd", "lbm"],
    ["gromacs", "lbm", "gobmk", "mcf"],
    ["mcf", "gromacs", "bzip2", "milc"],
]


def test_random_mixes_golden_sample():
    assert random_mixes(4, count=5, seed=42) == GOLDEN_MIXES_4CORE_SEED42


def test_random_mixes_prefix_stable():
    # Asking for more mixes extends the list; it must not reshuffle the
    # prefix (campaigns with different mix_count share job keys).
    assert random_mixes(4, count=12, seed=42)[:5] == GOLDEN_MIXES_4CORE_SEED42


def test_random_mixes_cross_process_determinism():
    """The sample is identical in a fresh interpreter (no hidden global
    state, no hash randomization dependence)."""
    import json
    import os
    import subprocess
    import sys

    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [
            sys.executable,
            "-c",
            "import json; from repro.workloads.mixes import random_mixes; "
            "print(json.dumps(random_mixes(4, count=5, seed=42)))",
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    assert json.loads(out.stdout) == GOLDEN_MIXES_4CORE_SEED42
