"""Unit tests for benchmark profiles and workload mixes."""

import pytest

from repro.workloads.mixes import (
    CASE_STUDY_1,
    CASE_STUDY_2,
    CASE_STUDY_3,
    EIGHT_CORE_MIX,
    FIG8_SAMPLE_MIXES,
    SIXTEEN_CORE_MIXES,
    random_mixes,
)
from repro.workloads.profiles import PROFILES, by_category, category_bits, profile


def test_all_28_table3_benchmarks_present():
    assert len(PROFILES) == 28
    assert {p.number for p in PROFILES.values()} == set(range(1, 29))


def test_lookup_by_name_and_number():
    assert profile("mcf").number == 9
    assert profile(9).name == "mcf"
    with pytest.raises(KeyError):
        profile("doom")
    with pytest.raises(KeyError):
        profile(99)


def test_category_bits_composition():
    assert category_bits(True, True, True) == 7
    assert category_bits(True, False, True) == 5
    assert category_bits(False, False, False) == 0


def test_category_flags():
    mcf = profile("mcf")  # category 5 = 101
    assert mcf.memory_intensive
    assert not mcf.high_row_locality
    assert mcf.high_bank_parallelism
    sjeng = profile("sjeng")  # category 0
    assert not sjeng.memory_intensive


def test_by_category_partitions_profiles():
    total = sum(len(by_category(c)) for c in range(8))
    assert total == 28
    assert all(p.category == 7 for p in by_category(7))
    assert {p.name for p in by_category(7)} == {"leslie3d", "soplex", "lbm", "sphinx3"}


def test_table3_values_spot_check():
    libq = profile("libquantum")
    assert libq.mpki == 50.00
    assert libq.row_hit_rate == pytest.approx(0.984)
    assert libq.blp == 1.10
    assert libq.ast_per_req == 181
    assert profile("mcf").blp == 4.75


def test_case_study_compositions():
    assert CASE_STUDY_1 == ["libquantum", "mcf", "GemsFDTD", "xalancbmk"]
    assert CASE_STUDY_2 == ["matlab", "h264ref", "omnetpp", "hmmer"]
    assert CASE_STUDY_3 == ["lbm"] * 4
    assert len(EIGHT_CORE_MIX) == 8
    assert EIGHT_CORE_MIX[0] == "mcf"


def test_fig8_sample_mixes():
    assert len(FIG8_SAMPLE_MIXES) == 10
    assert all(len(m) == 4 for m in FIG8_SAMPLE_MIXES)
    assert FIG8_SAMPLE_MIXES[5] == ["leslie3d"] * 4
    for mix in FIG8_SAMPLE_MIXES:
        for name in mix:
            assert name in PROFILES


def test_sixteen_core_mixes_have_16_threads():
    assert len(SIXTEEN_CORE_MIXES) == 5
    for name, mix in SIXTEEN_CORE_MIXES.items():
        assert len(mix) == 16, name
        for bench in mix:
            assert bench in PROFILES


def test_intensive16_is_most_intensive():
    intensive = SIXTEEN_CORE_MIXES["intensive16"]
    nonintensive = SIXTEEN_CORE_MIXES["non-intensive16"]
    avg = lambda mix: sum(profile(b).mcpi for b in mix) / len(mix)
    assert avg(intensive) > avg(nonintensive)


def test_random_mixes_shape_and_determinism():
    a = random_mixes(4, count=10, seed=1)
    b = random_mixes(4, count=10, seed=1)
    assert a == b
    assert len(a) == 10
    assert all(len(m) == 4 for m in a)


def test_random_mixes_differ_across_seeds():
    assert random_mixes(4, count=10, seed=1) != random_mixes(4, count=10, seed=2)


def test_random_mixes_valid_benchmarks():
    for mix in random_mixes(8, count=5, seed=3):
        assert len(mix) == 8
        for name in mix:
            assert name in PROFILES


def test_random_mixes_are_unique():
    mixes = random_mixes(4, count=30, seed=4)
    keys = {tuple(sorted(m)) for m in mixes}
    assert len(keys) == len(mixes)


def test_random_mixes_validation():
    with pytest.raises(ValueError):
        random_mixes(0, count=5)
    with pytest.raises(ValueError):
        random_mixes(4, count=0)


def test_random_mixes_span_categories():
    mixes = random_mixes(4, count=20, seed=5)
    cats = {profile(b).category for m in mixes for b in m}
    assert len(cats) >= 6  # broad category coverage
