"""Tests for campaign specs: validation, deterministic expansion, files."""

import json

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    Variant,
    job_key,
    load_spec,
    spec_from_dict,
)
from repro.config import baseline_system
from repro.workloads.mixes import CASE_STUDY_1, CASE_STUDY_2, random_mixes


def _spec(**overrides) -> CampaignSpec:
    base = dict(
        name="t",
        variants=(Variant("FCFS", "FCFS"), Variant("PAR-BS", "PAR-BS")),
        mix_count=2,
        instructions=20_000,
    )
    base.update(overrides)
    return CampaignSpec(**base)


# -- validation ---------------------------------------------------------------
def test_variant_validates_scheduler_name():
    with pytest.raises(ValueError, match="not instantiable"):
        Variant("bogus", "NO-SUCH-SCHEDULER")


def test_variant_validates_kwargs():
    with pytest.raises(ValueError, match="not instantiable"):
        Variant("bad", "PAR-BS", (("not_a_kwarg", 3),))


def test_variant_kwargs_sorted_for_hash_stability():
    a = Variant("x", "PAR-BS", (("marking_cap", 5), ("batching", "eslot")))
    b = Variant("x", "PAR-BS", (("batching", "eslot"), ("marking_cap", 5)))
    assert a == b


def test_spec_rejects_duplicate_labels():
    with pytest.raises(ValueError, match="duplicate"):
        _spec(variants=(Variant("x", "FCFS"), Variant("x", "NFQ")))


def test_spec_rejects_empty_variants():
    with pytest.raises(ValueError, match="at least one variant"):
        _spec(variants=())


def test_spec_rejects_unknown_benchmarks():
    with pytest.raises(ValueError, match="unknown benchmarks"):
        _spec(mixes=(("doom", "quake", "myst", "hexen"),))


def test_spec_rejects_empty_grid():
    with pytest.raises(ValueError, match="no mixes"):
        _spec(mix_count=0)


def test_spec_rejects_bad_cores_and_seeds():
    with pytest.raises(ValueError):
        _spec(num_cores=())
    with pytest.raises(ValueError):
        _spec(num_cores=(0,))
    with pytest.raises(ValueError):
        _spec(seeds=())


# -- mixes and expansion ------------------------------------------------------
def test_mixes_for_order_and_content():
    spec = _spec(
        include_case_studies=True,
        mixes=(tuple(CASE_STUDY_1),),  # explicit extra, 4 benchmarks
        mix_count=2,
        mix_seed=7,
    )
    mixes = spec.mixes_for(4)
    assert mixes[0] == list(CASE_STUDY_1)
    assert mixes[1] == list(CASE_STUDY_2)
    assert mixes[2] == list(CASE_STUDY_1)  # the explicit one
    assert mixes[3:] == random_mixes(4, count=2, seed=7)


def test_explicit_mixes_filtered_by_length():
    spec = _spec(num_cores=(4, 8), mixes=(tuple(CASE_STUDY_1),), mix_count=1)
    assert list(CASE_STUDY_1) in spec.mixes_for(4)
    assert list(CASE_STUDY_1) not in spec.mixes_for(8)


def test_expand_is_deterministic_and_ordered():
    spec = _spec(num_cores=(4, 8), seeds=(0, 1))
    a, b = spec.expand(), spec.expand()
    assert [j.key for j in a] == [j.key for j in b]
    # cores-major, then seed, then mix, then variant
    assert a[0].num_cores == 4 and a[-1].num_cores == 8
    labels = [j.variant for j in a]
    assert labels[: len(spec.variants)] == [v.label for v in spec.variants]
    # 2 cores x 2 seeds x 2 mixes x 2 variants
    assert len(a) == 16
    assert len({j.key for j in a}) == 16


def test_job_keys_are_full_content_hashes():
    spec = _spec()
    for job in spec.expand():
        assert len(job.key) == 64
        int(job.key, 16)  # hex


def test_job_key_matches_runner_job_key():
    """The campaign and the runner must name the same simulation
    identically (the runner truncates its key for trace filenames), or
    the store and trace layers would silently diverge."""
    from repro.sim.runner import ExperimentRunner

    config = baseline_system(4)
    runner = ExperimentRunner(config, instructions=20_000, seed=0)
    workload = list(CASE_STUDY_1)
    kwargs = {"marking_cap": 5}
    full = job_key(config, workload, "PAR-BS", kwargs, 20_000, 0)
    assert full[:20] == runner._job_key(workload, "PAR-BS", kwargs)


def test_fingerprint_changes_with_contents():
    assert _spec().fingerprint() != _spec(mix_seed=43).fingerprint()
    assert _spec().fingerprint() != _spec(instructions=30_000).fingerprint()
    assert _spec().fingerprint() == _spec().fingerprint()


def test_describe_mentions_shape():
    text = _spec().describe()
    assert "2 mixes" in text
    assert "total: 4 jobs" in text


# -- spec files ---------------------------------------------------------------
def test_spec_from_dict_scheduler_shorthand():
    spec = spec_from_dict(
        {"name": "s", "schedulers": ["FCFS", "NFQ"], "mix_count": 1}
    )
    assert [v.label for v in spec.variants] == ["FCFS", "NFQ"]
    assert all(v.kwargs == () for v in spec.variants)


def test_spec_from_dict_marking_caps_expand_parbs():
    spec = spec_from_dict(
        {
            "name": "caps",
            "schedulers": ["FR-FCFS", "PAR-BS"],
            "marking_caps": [1, 5, "none"],
            "mix_count": 1,
        }
    )
    assert [v.label for v in spec.variants] == ["FR-FCFS", "c=1", "c=5", "no-c"]
    assert dict(spec.variants[3].kwargs) == {"marking_cap": None}


def test_spec_from_dict_marking_caps_require_parbs():
    with pytest.raises(ValueError, match="marking_caps"):
        spec_from_dict(
            {"name": "x", "schedulers": ["FCFS"], "marking_caps": [1]}
        )


def test_spec_from_dict_explicit_variants():
    spec = spec_from_dict(
        {
            "name": "v",
            "mix_count": 1,
            "variants": [
                {"label": "eslot", "scheduler": "PAR-BS", "kwargs": {"batching": "eslot"}},
                {"scheduler": "STFM"},
            ],
        }
    )
    assert [v.label for v in spec.variants] == ["eslot", "STFM"]
    assert dict(spec.variants[0].kwargs) == {"batching": "eslot"}


def test_spec_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown campaign spec keys"):
        spec_from_dict({"name": "x", "schedulers": ["FCFS"], "turbo": True})


def test_spec_from_dict_scalar_coercion():
    spec = spec_from_dict(
        {"name": "x", "schedulers": ["FCFS"], "num_cores": 8, "seeds": 3, "mix_count": 1}
    )
    assert spec.num_cores == (8,)
    assert spec.seeds == (3,)


def test_load_spec_toml_and_json_agree(tmp_path):
    data = {
        "name": "file",
        "schedulers": ["FCFS", "PAR-BS"],
        "mix_count": 2,
        "instructions": 20000,
    }
    json_path = tmp_path / "c.json"
    json_path.write_text(json.dumps(data))
    toml_path = tmp_path / "c.toml"
    toml_path.write_text(
        'name = "file"\nschedulers = ["FCFS", "PAR-BS"]\n'
        "mix_count = 2\ninstructions = 20000\n"
    )
    assert load_spec(json_path).fingerprint() == load_spec(toml_path).fingerprint()


def test_to_dict_round_trips():
    spec = _spec(include_case_studies=True, seeds=(0, 1))
    clone = spec_from_dict(spec.to_dict())
    assert clone.fingerprint() == spec.fingerprint()
    assert [j.key for j in clone.expand()] == [j.key for j in spec.expand()]
