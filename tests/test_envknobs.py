"""Tests for centralized environment-knob parsing."""

import pytest

from repro.envknobs import (
    EnvKnobError,
    read_float,
    read_int,
    read_optional_float,
    read_optional_int,
)


def test_read_int_default_when_unset():
    assert read_int("REPRO_TEST_KNOB", 7, environ={}) == 7


def test_read_int_empty_string_is_unset():
    assert read_int("REPRO_TEST_KNOB", 7, environ={"REPRO_TEST_KNOB": ""}) == 7


def test_read_int_parses():
    assert read_int("REPRO_TEST_KNOB", 7, environ={"REPRO_TEST_KNOB": "12"}) == 12


def test_read_int_floor_clamps():
    env = {"REPRO_TEST_KNOB": "0"}
    assert read_int("REPRO_TEST_KNOB", 7, floor=1, environ=env) == 1


def test_read_int_error_names_variable():
    with pytest.raises(EnvKnobError) as exc:
        read_int("REPRO_JOBS", 1, environ={"REPRO_JOBS": "many"})
    message = str(exc.value)
    assert "REPRO_JOBS" in message
    assert "many" in message
    assert "\n" not in message  # one-line, printable as-is by the CLI


def test_read_int_rejects_float_text():
    with pytest.raises(EnvKnobError):
        read_int("REPRO_WORKLOADS", 1, environ={"REPRO_WORKLOADS": "2.5"})


def test_read_float_parses_and_errors():
    env = {"REPRO_SCALE": "0.5"}
    assert read_float("REPRO_SCALE", 1.0, environ=env) == 0.5
    with pytest.raises(EnvKnobError) as exc:
        read_float("REPRO_SCALE", 1.0, environ={"REPRO_SCALE": "big"})
    assert "REPRO_SCALE" in str(exc.value)


def test_read_optional_int():
    assert read_optional_int("REPRO_TEST_KNOB", environ={}) is None
    env = {"REPRO_TEST_KNOB": "3"}
    assert read_optional_int("REPRO_TEST_KNOB", environ=env) == 3
    with pytest.raises(EnvKnobError):
        read_optional_int("REPRO_TEST_KNOB", environ={"REPRO_TEST_KNOB": "x"})


def test_read_optional_float_floor():
    env = {"REPRO_CACHE_MAX_MB": "-5"}
    assert read_optional_float("REPRO_CACHE_MAX_MB", floor=0.0, environ=env) == 0.0


def test_envknob_error_is_value_error():
    # Callers that caught ValueError from the old int() parsing still work.
    assert issubclass(EnvKnobError, ValueError)


def test_default_jobs_uses_knobs(monkeypatch):
    from repro.sim.pool import default_jobs

    monkeypatch.setenv("REPRO_JOBS", "4")
    assert default_jobs() == 4
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1  # floor preserved from the legacy max(1, ...)
    monkeypatch.setenv("REPRO_JOBS", "nope")
    with pytest.raises(EnvKnobError):
        default_jobs()


def test_default_workload_count_uses_knobs(monkeypatch):
    from repro.experiments.aggregate import default_workload_count

    monkeypatch.setenv("REPRO_WORKLOADS", "9")
    assert default_workload_count(4) == 9
    monkeypatch.delenv("REPRO_WORKLOADS")
    assert default_workload_count(4) == 12
