"""Tests for the Table 1 hardware cost model."""

import pytest

from repro.core.hardware import hardware_cost


def test_paper_configuration_totals_1412_bits():
    # Section 6: "Assuming an 8-core CMP, 128-entry request buffer and 8
    # DRAM banks, the extra hardware state ... is 1412 bits."
    assert hardware_cost(8, 128, 8).total_bits == 1412


def test_paper_configuration_breakdown():
    cost = hardware_cost(8, 128, 8)
    assert cost.per_request_bits == 128 * (1 + 3 + 3)
    assert cost.per_thread_per_bank_bits == 8 * 8 * 7
    assert cost.per_thread_bits == 8 * 7
    assert cost.individual_bits == 7 + 5


def test_cost_scales_with_threads():
    assert hardware_cost(16, 128, 8).total_bits > hardware_cost(4, 128, 8).total_bits


def test_cost_scales_with_buffer():
    assert hardware_cost(8, 256, 8).total_bits > hardware_cost(8, 128, 8).total_bits


def test_breakdown_text():
    text = hardware_cost(8, 128, 8).breakdown()
    assert "total: 1412 bits" in text


def test_validation():
    with pytest.raises(ValueError):
        hardware_cost(1, 128, 8)
    with pytest.raises(ValueError):
        hardware_cost(8, 1, 8)
    with pytest.raises(ValueError):
        hardware_cost(8, 128, 0)
