"""Smoke tests for the experiment drivers (small scales)."""

import pytest

from repro.config import baseline_system
from repro.experiments.abstract_fig3 import FIG3_BATCH, run_fig3
from repro.experiments.ablations import (
    batching_choice_sweep,
    marking_cap_sweep,
    ranking_scheme_sweep,
)
from repro.experiments.aggregate import default_workload_count, run_aggregate
from repro.experiments.case_studies import CASE_STUDIES, run_case_study
from repro.experiments.characterization import run_characterization
from repro.experiments.paper_values import SCHEDULERS, TABLE4
from repro.experiments.priorities import run_opportunistic, run_weighted_lbm
from repro.experiments.reporting import format_metric_block, format_table
from repro.sim.runner import ExperimentRunner

INSTRUCTIONS = 25_000


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instructions=INSTRUCTIONS)


def test_fig3_policy_ordering():
    result = run_fig3()
    fcfs = result.schedules["fcfs"].average_completion
    frfcfs = result.schedules["fr-fcfs"].average_completion
    parbs = result.schedules["par-bs"].average_completion
    assert parbs < frfcfs < fcfs


def test_fig3_layout_matches_paper_constraints():
    from repro.core.ranking import batch_loads

    loads_by_thread = {}
    per_bank = {}
    for r in FIG3_BATCH.requests:
        per_bank.setdefault((r.thread, r.bank), 0)
        per_bank[(r.thread, r.bank)] += 1
    max_load = {}
    for (t, _b), n in per_bank.items():
        max_load[t] = max(max_load.get(t, 0), n)
    assert max_load[1] == 1
    assert max_load[2] == 2
    assert max_load[3] == 2
    assert max_load[4] == 5


def test_case_study_driver_small(runner):
    result = run_case_study("fig5_case_study_1", runner=runner)
    assert set(result.results) == set(SCHEDULERS)
    assert "unfairness" in result.report()


def test_case_study_unknown_name():
    with pytest.raises(ValueError):
        run_case_study("fig99")


def test_case_studies_registry():
    assert set(CASE_STUDIES) == {
        "fig5_case_study_1",
        "fig6_case_study_2",
        "fig7_case_study_3",
        "fig9_8core_mix",
    }


def test_aggregate_driver_small(runner):
    result = run_aggregate(4, count=2, runner=runner)
    summary = result.summary()
    assert set(summary) == set(SCHEDULERS)
    for vals in summary.values():
        assert vals["unfairness"] >= 1.0
        assert vals["wspeedup"] > 0
    assert "aggregate" in result.report()


def test_default_workload_count_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKLOADS", "3")
    assert default_workload_count(4) == 3
    monkeypatch.delenv("REPRO_WORKLOADS")
    assert default_workload_count(4) > 0


def test_marking_cap_sweep_small(runner):
    result = marking_cap_sweep(
        caps=[1, 5], count=1, runner=runner, include_case_studies=False
    )
    assert set(result.variants) == {"c=1", "c=5"}
    assert "c=1" in result.report("caps")


def test_batching_choice_sweep_small(runner):
    result = batching_choice_sweep(
        durations=[3200], count=1, runner=runner, include_case_studies=False
    )
    assert set(result.variants) == {"st-3200", "eslot", "full"}


def test_ranking_sweep_small(runner):
    result = ranking_scheme_sweep(count=1, runner=runner)
    assert "max-total(PAR-BS)" in result.variants
    assert "STFM" in result.variants
    assert "no-rank(FCFS)" in result.variants


def test_priority_scenarios_small(runner):
    lbm = run_weighted_lbm(runner=runner)
    slowdowns = lbm.slowdowns("PAR-BS-pri-1-1-2-8")
    assert slowdowns[3] > slowdowns[0]  # priority 8 slower than priority 1
    opportunistic = run_opportunistic(runner=runner)
    parbs = opportunistic.slowdowns("PAR-BS-L-L-0-L")
    assert parbs[2] == min(parbs)


def test_characterization_small(runner):
    result = run_characterization(runner=runner, benchmarks=["mcf", "libquantum"])
    assert len(result.rows) == 2
    report = result.report()
    assert "mcf" in report and "libquantum" in report


def test_paper_values_complete():
    for cores in (4, 8, 16):
        assert set(TABLE4[cores]) == set(SCHEDULERS)
        for vals in TABLE4[cores].values():
            assert set(vals) == {"unfairness", "wspeedup", "hspeedup", "ast", "wc_latency"}


def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3.25]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")


def test_format_metric_block_with_paper():
    text = format_metric_block(
        {"X": {"unf": 1.5}}, paper={"X": {"unf": 1.2}}
    )
    assert "unf(paper)" in text
