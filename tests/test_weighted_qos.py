"""End-to-end tests for weighted / prioritized QoS across schedulers."""

import pytest

from repro.sim.runner import ExperimentRunner

INSTRUCTIONS = 40_000


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instructions=INSTRUCTIONS, seed=0)


def test_nfq_weights_shift_service(runner):
    workload = ["lbm"] * 4
    weights = {0: 8.0, 1: 1.0, 2: 1.0, 3: 1.0}
    result = runner.run_workload(workload, "NFQ", weights=weights)
    slowdowns = result.slowdowns()
    assert slowdowns[0] < min(slowdowns[t] for t in (1, 2, 3))


def test_stfm_weights_shift_service(runner):
    workload = ["lbm"] * 4
    weights = {0: 8.0, 1: 1.0, 2: 1.0, 3: 1.0}
    result = runner.run_workload(workload, "STFM", weights=weights)
    slowdowns = result.slowdowns()
    assert slowdowns[0] < min(slowdowns[t] for t in (1, 2, 3))


def test_parbs_priority_levels_shift_service(runner):
    workload = ["lbm"] * 4
    result = runner.run_workload(
        workload, "PAR-BS", priorities={0: 1, 1: 4, 2: 4, 3: 4}
    )
    slowdowns = result.slowdowns()
    assert slowdowns[0] < min(slowdowns[t] for t in (1, 2, 3))


def test_equal_weights_behave_like_unweighted(runner):
    workload = ["hmmer", "astar", "gromacs", "sjeng"]
    weighted = runner.run_workload(
        workload, "NFQ", weights={t: 2.0 for t in range(4)}
    )
    unweighted = runner.run_workload(workload, "NFQ")
    # Equal weights normalize to equal shares: identical scheduling.
    assert weighted.slowdowns() == pytest.approx(unweighted.slowdowns())


def test_priority_based_marking_cadence_end_to_end(runner):
    # A level-4 thread joins every 4th batch only; its throughput share
    # must drop relative to running at level 1.
    workload = ["milc", "milc", "milc", "milc"]
    base = runner.run_workload(workload, "PAR-BS")
    demoted = runner.run_workload(workload, "PAR-BS", priorities={3: 4})
    assert demoted.slowdowns()[3] > base.slowdowns()[3]
