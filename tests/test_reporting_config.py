"""Unit tests for reporting helpers and configuration presets."""

import pytest

from repro.config import CoreConfig, DramConfig, SystemConfig, baseline_system
from repro.experiments.reporting import format_metric_block, format_table
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import BenchmarkProfile


def test_format_table_basic():
    text = format_table(["name", "value"], [["a", 1.5], ["bb", 200.0]])
    lines = text.splitlines()
    assert lines[0].split() == ["name", "value"]
    assert "1.500" in lines[2]
    assert "200" in lines[3]


def test_format_table_with_title():
    text = format_table(["x"], [[1]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_format_table_pads_columns():
    text = format_table(["long-header", "y"], [["a", "b"]])
    header, sep, row = text.splitlines()
    assert len(header) == len(sep)


def test_format_metric_block_without_paper():
    text = format_metric_block({"S": {"unf": 1.0, "ws": 2.0}})
    assert "unf" in text and "ws" in text
    assert "paper" not in text


def test_dram_config_mapping_consistent():
    config = DramConfig(num_channels=2, num_banks=16)
    mapping = config.mapping()
    assert mapping.num_channels == 2
    assert mapping.num_banks == 16


def test_scaled_channels():
    config = SystemConfig(num_cores=16).scaled_channels()
    assert config.dram.num_channels == 4
    assert SystemConfig(num_cores=2).scaled_channels().dram.num_channels == 1


def test_baseline_core_parameters_match_table2():
    core = baseline_system(4).core
    assert core.window_size == 128
    assert core.width == 3
    assert core.mshrs == 32


def test_baseline_dram_parameters_match_table2():
    dram = baseline_system(4).dram
    assert dram.num_banks == 8
    assert dram.row_bytes == 2048
    assert dram.request_buffer_size == 128
    assert dram.write_buffer_size == 64


def test_configs_are_frozen():
    with pytest.raises(AttributeError):
        baseline_system(4).num_cores = 8


def test_generator_fallback_knobs_for_unknown_profile():
    custom = BenchmarkProfile(
        number=1,
        name="custom-app",
        kind="INT",
        mcpi=1.0,
        mpki=10.0,
        row_hit_rate=0.5,
        blp=2.0,
        ast_per_req=150,
        category=1,
    )
    generator = TraceGenerator()
    walkers, dep, cont = generator.parallelism_knobs(custom)
    assert walkers == 2  # round(blp)
    assert 0.0 <= dep <= 1.0 and cont == 0.0
    trace = generator.generate(custom, instructions=80_000, seed=0)
    assert trace.accesses_per_kilo_instruction() == pytest.approx(10.0, rel=0.25)


def test_profile_validation():
    with pytest.raises(ValueError):
        BenchmarkProfile(1, "x", "INT", 1, 1, 0.5, 1, 1, category=9)
    with pytest.raises(ValueError):
        BenchmarkProfile(1, "x", "INT", 1, 1, 1.5, 1, 1, category=0)
