"""Unit tests for the request batching engine (PAR-BS core component)."""

import pytest

from repro.config import DramConfig
from repro.core.batcher import OPPORTUNISTIC, EslotBatcher, FullBatcher, StaticBatcher
from repro.core.parbs import ParBsScheduler
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.events import EventQueue


def setup(scheduler):
    queue = EventQueue()
    controller = MemoryController(queue, DramConfig(), scheduler, 4)
    return queue, controller


def read(thread=0, bank=0, row=0):
    return MemoryRequest(thread_id=thread, address=0, channel=0, bank=bank, row=row)


def write(thread=0, bank=0, row=0):
    return MemoryRequest(
        thread_id=thread, address=0, channel=0, bank=bank, row=row,
        type=RequestType.WRITE,
    )


def test_marking_cap_validation():
    with pytest.raises(ValueError):
        FullBatcher(marking_cap=0)


def test_first_arrival_forms_batch_and_marks():
    scheduler = ParBsScheduler(4)
    queue, controller = setup(scheduler)
    r = read()
    controller.enqueue(r)
    assert r.marked is True
    assert scheduler.batcher.total_marked == 1
    assert scheduler.batcher.batches_formed == 1


def test_requests_arriving_mid_batch_are_unmarked():
    scheduler = ParBsScheduler(4)
    queue, controller = setup(scheduler)
    controller.enqueue(read(bank=0, row=1))
    late = read(bank=0, row=2)
    controller.enqueue(late)
    assert late.marked is False


def test_marking_cap_limits_per_thread_per_bank():
    scheduler = ParBsScheduler(4, marking_cap=2)
    queue, controller = setup(scheduler)
    batcher = scheduler.batcher
    # Preload the queue before the batch forms: trick by enqueueing writes
    # first (writes don't trigger batching), then many reads at once via a
    # drained batch.  Simpler: enqueue reads from a fresh controller whose
    # first read forms the batch containing only itself, then complete it
    # with more reads queued.
    first = read(thread=0, bank=0, row=1)
    controller.enqueue(first)
    extra = [read(thread=0, bank=0, row=i + 2) for i in range(4)]
    for r in extra:
        controller.enqueue(r)
    assert batcher.total_marked == 1  # only the first was marked
    queue.run()
    # When the first batch drained, a new batch formed with cap=2.
    assert all(r.completion_time is not None for r in extra)


def test_batch_reforms_when_all_marked_complete():
    scheduler = ParBsScheduler(4)
    queue, controller = setup(scheduler)
    controller.enqueue(read(thread=0, bank=0, row=1))
    controller.enqueue(read(thread=1, bank=1, row=2))
    queue.run()
    # Both marked in batch 1 (second joined batch? No: batch forms on first
    # arrival; the second request arrived while marked outstanding).
    assert scheduler.batcher.total_marked == 0
    assert scheduler.batcher.batches_formed >= 1


def test_writes_never_marked():
    scheduler = ParBsScheduler(4)
    queue, controller = setup(scheduler)
    w = write()
    controller.enqueue(w)
    assert w.marked is False
    assert scheduler.batcher.total_marked == 0


def test_priority_based_marking_every_other_batch():
    batcher = FullBatcher(priorities={5: 2})
    batcher.batch_index = 1
    assert batcher._thread_markable(5) is False  # batch 1: 1 % 2 != 0
    batcher.batch_index = 2
    assert batcher._thread_markable(5) is True


def test_opportunistic_threads_never_markable():
    batcher = FullBatcher(priorities={3: OPPORTUNISTIC})
    for index in range(1, 10):
        batcher.batch_index = index
        assert batcher._thread_markable(3) is False


def test_priority_one_marked_every_batch():
    batcher = FullBatcher()
    for index in range(1, 5):
        batcher.batch_index = index
        assert batcher._thread_markable(0) is True


def test_eslot_late_arrival_joins_batch_with_room():
    scheduler = ParBsScheduler(4, batching="eslot", marking_cap=5)
    queue, controller = setup(scheduler)
    controller.enqueue(read(thread=0, bank=0, row=1))
    late = read(thread=0, bank=0, row=2)
    controller.enqueue(late)
    assert late.marked is True  # thread 0 used 1 of 5 slots in bank 0


def test_eslot_respects_cap():
    scheduler = ParBsScheduler(4, batching="eslot", marking_cap=2)
    queue, controller = setup(scheduler)
    reqs = [read(thread=0, bank=0, row=i) for i in range(4)]
    for r in reqs:
        controller.enqueue(r)
    assert [r.marked for r in reqs] == [True, True, False, False]


def test_static_batching_requires_duration():
    with pytest.raises(ValueError):
        ParBsScheduler(4, batching="static")


def test_static_batching_marks_periodically():
    scheduler = ParBsScheduler(4, batching="static", batch_duration=1000)
    queue, controller = setup(scheduler)
    controller.enqueue(read(thread=0, bank=0, row=1))
    queue.run(until=10_000)
    assert scheduler.batcher.batches_formed >= 1


def test_static_batcher_duration_validation():
    with pytest.raises(ValueError):
        StaticBatcher(batch_duration=0)


def test_unknown_batching_rejected():
    with pytest.raises(ValueError):
        ParBsScheduler(4, batching="magic")


def test_starvation_freedom_under_aggressor():
    """A single victim request among a flood of aggressor requests must be
    serviced within a bounded number of batches (here: it simply completes
    while the flood continues)."""
    scheduler = ParBsScheduler(2, marking_cap=3)
    queue, controller = setup(scheduler)

    victim_done = []
    victim = read(thread=1, bank=0, row=99)
    victim.on_complete = lambda r: victim_done.append(queue.now)

    # Aggressor: refills bank 0 with row hits forever (up to 200 requests).
    issued = [0]

    def refill(_req=None):
        if issued[0] >= 200:
            return
        issued[0] += 1
        r = read(thread=0, bank=0, row=1)
        r.on_complete = refill
        controller.enqueue(r)

    for _ in range(8):
        refill()
    controller.enqueue(victim)
    queue.run(max_events=100_000)
    assert victim_done, "victim request starved"
    # The victim cannot be deferred behind the entire flood.
    assert victim_done[0] < 50_000


def test_batch_duration_statistics():
    scheduler = ParBsScheduler(4)
    queue, controller = setup(scheduler)
    for i in range(6):
        controller.enqueue(read(thread=i % 2, bank=i % 4, row=i))
    queue.run()
    assert scheduler.batcher.avg_batch_duration > 0
