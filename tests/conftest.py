"""Suite-wide fixtures.

The experiment runner persists alone-run baselines and traces to an
on-disk cache by default; point it at a per-session temporary directory
so tests never read or pollute the user's real cache (and every test
session starts cold).
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_disk_cache(tmp_path_factory):
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    # Observability must never leak into the suite from the invoking shell:
    # an inherited REPRO_TRACE would make every runner write trace files
    # (and change what the determinism tests compare).
    saved_trace = {
        name: os.environ.pop(name, None)
        for name in (
            "REPRO_TRACE",
            "REPRO_TRACE_EVENTS",
            "REPRO_SAMPLE_INTERVAL",
            "REPRO_TRACE_PERFETTO",
            # An inherited trace directory would make sample-trace tests
            # read (or generate into) the user's files.
            "REPRO_TRACE_DIR",
            # An inherited campaign store or cache bound would make tests
            # read/pollute the user's results or prune mid-suite.
            "REPRO_CAMPAIGN_DB",
            "REPRO_CACHE_MAX_MB",
            # Inherited guard/chaos/timeout knobs would change scheduler
            # hot-path behavior or inject faults into unrelated tests.
            "REPRO_GUARD",
            "REPRO_CHAOS",
            "REPRO_JOB_TIMEOUT_S",
            # An inherited backend would silently re-run the whole suite
            # on the fast (or verify) path instead of what each test pins.
            "REPRO_BACKEND",
            # An inherited REPRO_METRICS=0 would disable every registry
            # site the metrics tests assert on.
            "REPRO_METRICS",
            # Inherited work-queue knobs would change lease lifetimes the
            # distributed-drain tests pin with injected clocks.
            "REPRO_LEASE_S",
            "REPRO_HEARTBEAT_S",
            "REPRO_STORE_BUSY_TIMEOUT_S",
        )
    }
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
    for name, value in saved_trace.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
