"""Tests for the incremental arbitration index (:mod:`repro.dram.rqindex`).

Three layers:

* unit tests for :class:`BankReadIndex` / :class:`WriteFifo` mechanics
  (membership, lazy deletion, the epoch protocol);
* controller-level tests for the wake bookkeeping and the ``verify``
  arbitration mode's divergence detection;
* the golden equivalence harness: every scheduler the paper evaluates
  (plus the PAR-BS within-batch/batching ablations) run end-to-end on a
  seeded 4-core workload under scan and index arbitration, asserting the
  two produce bit-identical simulations.
"""

import pytest

from repro.config import DramConfig, baseline_system
from repro.core.parbs import ParBsScheduler
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.rqindex import BankReadIndex, WriteFifo
from repro.events import EventQueue, SimulationError
from repro.schedulers.frfcfs import FrFcfsScheduler
from repro.sim.factory import make_scheduler
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System


def read(thread=0, bank=0, row=0, arrival=0):
    r = MemoryRequest(thread_id=thread, address=0, channel=0, bank=bank, row=row)
    r.arrival_time = arrival
    return r


def write(thread=0, bank=0, row=0, arrival=0):
    r = MemoryRequest(
        thread_id=thread,
        address=0,
        channel=0,
        bank=bank,
        row=row,
        type=RequestType.WRITE,
    )
    r.arrival_time = arrival
    return r


class ArrivalKeys:
    """Minimal stand-in for a scheduler in index unit tests."""

    index_epoch = 0

    @staticmethod
    def index_key(r):
        return (r.arrival_time, r.request_id)


# --------------------------------------------------------- BankReadIndex


def test_membership_tracks_rows_threads_and_size():
    index = BankReadIndex()
    a, b, c = read(thread=0, row=1), read(thread=1, row=1), read(thread=0, row=2)
    for r in (a, b, c):
        index.add(r)
    assert index.size == 3
    assert sorted(index.rows) == [1, 2]
    assert index.thread_counts == {0: 2, 1: 1}
    assert sorted(r.request_id for r in index.requests()) == sorted(
        r.request_id for r in (a, b, c)
    )

    index.remove(a)  # swap-pop inside row 1's bucket
    assert index.size == 2
    assert index.rows[1] == [b]
    assert b.buf_pos == 0 and a.buf_pos == -1
    assert index.thread_counts == {0: 1, 1: 1}

    index.remove(c)  # last request of row 2: bucket disappears
    assert sorted(index.rows) == [1]
    assert index.thread_counts == {1: 1}


def test_peek_returns_minimum_live_entry_and_lazily_deletes():
    scheduler = ArrivalKeys()
    index = BankReadIndex()
    old = read(row=1, arrival=0)
    new = read(row=2, arrival=10)
    index.add(old)
    index.add(new)
    index.ensure(scheduler)
    assert index.peek()[1] is old
    assert index.peek_row(2)[1] is new
    index.remove(old)
    # The dead heap entry is skipped (and popped) at the next peek.
    assert index.peek()[1] is new
    assert index.peek_row(1) is None
    assert len(index.heap) == 1


def test_push_keeps_fresh_heaps_incremental():
    scheduler = ArrivalKeys()
    index = BankReadIndex()
    index.add(read(row=1, arrival=5))
    index.ensure(scheduler)
    urgent = read(row=1, arrival=1)
    index.add(urgent)
    index.push(urgent, scheduler)
    assert index.peek()[1] is urgent
    assert index.peek_row(1)[1] is urgent


def test_stale_push_is_skipped_and_ensure_rebuilds():
    scheduler = ArrivalKeys()
    index = BankReadIndex()
    index.add(read(row=1, arrival=5))
    index.ensure(scheduler)

    scheduler.index_epoch = 1  # global priority state changed
    late = read(row=1, arrival=0)
    index.add(late)
    index.push(late, scheduler)
    assert len(index.heap) == 1  # push skipped: heaps are stale anyway

    index.ensure(scheduler)
    assert index.heap_epoch == 1
    assert len(index.heap) == 2
    assert index.peek()[1] is late


def test_emptied_row_bucket_drops_its_heap():
    scheduler = ArrivalKeys()
    index = BankReadIndex()
    r = read(row=7)
    index.add(r)
    index.ensure(scheduler)
    assert 7 in index.row_heaps
    index.remove(r)
    assert 7 not in index.row_heaps
    # A later request to the same row starts a fresh bucket and heap.
    fresh = read(row=7, arrival=99)
    index.add(fresh)
    index.push(fresh, scheduler)
    assert index.peek_row(7)[1] is fresh


# ------------------------------------------------------------- WriteFifo


def test_write_fifo_drains_oldest_first_with_lazy_deletion():
    fifo = WriteFifo()
    first = write(arrival=0)
    second = write(arrival=5)
    fifo.push(second)
    fifo.push(first)
    assert fifo.size == 2
    assert fifo.peek() is first
    fifo.remove(first)
    assert fifo.peek() is second
    assert list(fifo.requests()) == [second]
    fifo.remove(second)
    assert fifo.size == 0
    with pytest.raises(IndexError):
        fifo.peek()


# ------------------------------------------------- controller wake logic


def make_controller(scheduler=None, **kwargs):
    queue = EventQueue()
    controller = MemoryController(
        queue, DramConfig(), scheduler or FrFcfsScheduler(), 4, **kwargs
    )
    return queue, controller


def test_superseded_wake_neither_issues_nor_leaks():
    queue, controller = make_controller()
    key = (0, 0)
    r = read(row=3)
    controller.enqueue(r)  # schedules the real wake at t=0
    # Inject a duplicate wake event for the same bank, imitating a stale
    # leftover from a superseded reschedule.
    queue.schedule(0, lambda: controller._wake(key), priority=1)
    queue.run()
    assert controller.channels[0].banks[0].accesses == 1  # no double issue
    assert controller._bank_wake == {}  # no stale bookkeeping left behind


def test_earlier_wake_supersedes_later_one():
    queue, controller = make_controller()
    key = (0, 0)
    controller._schedule_wake(key, 10)
    controller._schedule_wake(key, 5)
    assert controller._bank_wake[key] == 5
    queue.run()  # both events fire; the t=10 leftover must be a no-op
    assert controller._bank_wake == {}


# ------------------------------------------------------------ verify mode


class LyingFrFcfs(FrFcfsScheduler):
    """Scan policy contradicting its own index key: newest-first."""

    def select(self, candidates, bank, now):
        return max(candidates, key=lambda r: r.request_id)


def test_verify_mode_detects_divergence():
    queue, controller = make_controller(
        scheduler=LyingFrFcfs(), arbitration="verify"
    )
    controller.enqueue(read(row=1))
    controller.enqueue(read(row=2))
    with pytest.raises(SimulationError, match="divergence"):
        queue.run()


def test_verify_mode_passes_for_consistent_scheduler():
    queue, controller = make_controller(arbitration="verify")
    done = []
    for row in (1, 2, 1, 3):
        r = read(row=row)
        r.on_complete = lambda _r: done.append(queue.now)
        controller.enqueue(r)
    queue.run()
    assert len(done) == 4


# ------------------------------------------------- golden equivalence


WORKLOAD = ("libquantum", "mcf", "GemsFDTD", "xalancbmk")
INSTRUCTIONS = 5_000

VARIANTS = {
    "FCFS": lambda: make_scheduler("FCFS", 4),
    "FR-FCFS": lambda: make_scheduler("FR-FCFS", 4),
    "NFQ": lambda: make_scheduler("NFQ", 4),
    "STFM": lambda: make_scheduler("STFM", 4),
    "PAR-BS": lambda: make_scheduler("PAR-BS", 4),
    "PAR-BS-within-frfcfs": lambda: ParBsScheduler(4, within_batch="frfcfs"),
    "PAR-BS-within-fcfs": lambda: ParBsScheduler(4, within_batch="fcfs"),
    "PAR-BS-eslot": lambda: ParBsScheduler(4, batching="eslot"),
    "PAR-BS-nocap": lambda: ParBsScheduler(4, marking_cap=None),
}


def run_variant(make, arbitration):
    config = baseline_system(len(WORKLOAD))
    runner = ExperimentRunner(
        config, instructions=INSTRUCTIONS, seed=0, cache_dir=None
    )
    traces = [runner.trace_for(b) for b in WORKLOAD]
    system = System(config, make(), traces, arbitration=arbitration)
    system.run()
    return snapshot(system)


def snapshot(system):
    """Everything observable: timing, event count, per-thread memory and
    core statistics — any arbitration difference shows up in here."""
    state = {
        "cycles": system.queue.now,
        "events": system.events_processed,
    }
    for thread_id, s in sorted(system.controller.thread_stats.items()):
        state[thread_id] = (
            s.reads,
            s.writes,
            s.row_hits,
            s.row_conflicts,
            s.latency_sum,
            s.latency_max,
            s.blp_integral,
            s.busy_time,
        )
    for core in system.cores:
        state[f"core{core.thread_id}"] = (
            core.finish_time,
            core.stall_cycles,
            core.loads_issued,
            core.stores_issued,
            core.instructions_retired,
        )
    return state


@pytest.mark.parametrize("name", sorted(VARIANTS))
def test_index_arbitration_matches_scan_bit_for_bit(name):
    make = VARIANTS[name]
    assert run_variant(make, "index") == run_variant(make, "scan")


def test_verify_mode_full_run_parbs():
    """Both paths live side by side for a whole PAR-BS simulation."""
    make = VARIANTS["PAR-BS"]
    assert run_variant(make, "verify") == run_variant(make, "scan")
