"""Fuzz tests: random traces through the full system under every scheduler.

The invariant under test is liveness + accounting consistency: every run
terminates, every load completes exactly once, and the controller's
counters reconcile with the cores'.
"""

import random

import pytest

from repro.config import CoreConfig, DramConfig, SystemConfig
from repro.cpu.trace import Trace, TraceEntry
from repro.sim.factory import SCHEDULER_NAMES, make_scheduler
from repro.sim.system import System


def random_trace(rng, accesses=120):
    entries = []
    last_read = None
    for i in range(accesses):
        gap = rng.choice([0, 1, 2, 5, 20, 200])
        address = rng.randrange(1 << 22) * 64
        is_write = rng.random() < 0.15
        depends_on = None
        if last_read is not None and rng.random() < 0.3:
            depends_on = last_read
        entries.append(
            TraceEntry(gap=gap, address=address, is_write=is_write, depends_on=depends_on)
        )
        if not is_write:
            last_read = i
    return Trace(entries)


@pytest.mark.parametrize("scheduler_name", SCHEDULER_NAMES)
@pytest.mark.parametrize("seed", [0, 1])
def test_random_traces_complete(scheduler_name, seed):
    rng = random.Random(seed)
    cores = 4
    traces = [random_trace(rng) for _ in range(cores)]
    config = SystemConfig(
        num_cores=cores,
        core=CoreConfig(window_size=64, width=3, mshrs=16),
        dram=DramConfig(num_banks=8),
    )
    system = System(config, make_scheduler(scheduler_name, cores), traces)
    finish = system.run(max_events=5_000_000)
    assert finish > 0
    for core, trace in zip(system.cores, traces):
        snap = core.snapshot
        assert snap is not None
        assert snap.loads == trace.reads
        assert snap.stores == trace.writes
        assert snap.instructions == trace.total_instructions
    # Controller accounting: every serviced request has consistent stats.
    total_reads = sum(s.reads for s in system.controller.thread_stats.values())
    assert total_reads >= sum(t.reads for t in traces)


@pytest.mark.parametrize("scheduler_name", ["PAR-BS", "STFM"])
def test_fuzz_with_tiny_window_and_mshrs(scheduler_name):
    rng = random.Random(7)
    traces = [random_trace(rng, accesses=60) for _ in range(2)]
    config = SystemConfig(
        num_cores=2,
        core=CoreConfig(window_size=8, width=1, mshrs=2),
    )
    system = System(config, make_scheduler(scheduler_name, 2), traces)
    system.run(max_events=5_000_000)
    for core in system.cores:
        assert core.snapshot is not None


def test_fuzz_single_bank_contention():
    # All requests to one bank: maximum contention, strict serialization.
    rng = random.Random(3)
    entries = [TraceEntry(1, rng.randrange(32) * 64) for _ in range(80)]
    traces = [Trace(entries), Trace(list(reversed(entries)))]
    config = SystemConfig(num_cores=2)
    system = System(config, make_scheduler("PAR-BS", 2), traces)
    system.run(max_events=5_000_000)
    assert all(c.snapshot is not None for c in system.cores)
