"""Tests for the observability layer (:mod:`repro.obs`).

Layers:

* unit tests for the trace bus (probe filtering, sinks, JSONL round
  trips), the latency histogram math, and the periodic event-queue task;
* controller-level tests for the write-drain flip events;
* end-to-end traced PAR-BS runs asserting the acceptance criterion: the
  ``batch.formed`` event stream matches the live batcher/scheduler state
  (per-thread marked counts, Max-Total ranking), epoch bumps and index
  rebuilds appear, and tracing changes nothing about the simulation;
* Perfetto/Chrome-trace export structure.
"""

import json

import pytest

from repro.config import baseline_system
from repro.events import EventQueue
from repro.obs import (
    CATEGORIES,
    JsonlSink,
    LatencyHistogram,
    RingBufferSink,
    Telemetry,
    TraceConfig,
    Tracer,
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
)
from repro.sim.factory import make_scheduler
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System

WORKLOAD = ["libquantum", "mcf", "GemsFDTD", "xalancbmk"]
INSTRUCTIONS = 5_000


# ------------------------------------------------------------- trace bus


def test_probe_filtering_returns_none_for_disabled_categories():
    tracer = Tracer([RingBufferSink()], events=("batch", "sched"))
    assert tracer.probe("request") is None
    assert tracer.probe("batch") is not None
    assert tracer.probe("sched") is not None


def test_unknown_categories_rejected():
    with pytest.raises(ValueError, match="unknown trace event categor"):
        Tracer([RingBufferSink()], events=("batch", "typo"))
    tracer = Tracer([RingBufferSink()])
    with pytest.raises(ValueError):
        tracer.probe("nonsense")


def test_probe_emits_to_all_sinks_with_stable_field_order():
    ring_a, ring_b = RingBufferSink(), RingBufferSink()
    tracer = Tracer([ring_a, ring_b])
    probe = tracer.probe("dram")
    probe.emit(7, "dram.cmd", cmd="ACT", ch=0, bank=3)
    assert list(ring_a) == [{"t": 7, "ev": "dram.cmd", "cmd": "ACT", "ch": 0, "bank": 3}]
    assert list(ring_b) == list(ring_a)
    # Insertion order is pinned: t, ev, then fields in emit order.
    assert list(ring_a.events[0]) == ["t", "ev", "cmd", "ch", "bank"]


def test_ring_buffer_capacity_and_of_type():
    ring = RingBufferSink(capacity=2)
    for i in range(5):
        ring.emit({"t": i, "ev": "core.stall" if i % 2 else "core.unstall"})
    assert len(ring) == 2
    assert ring.emitted == 5
    assert [e["t"] for e in ring] == [3, 4]
    assert [e["t"] for e in ring.of_type("core.stall")] == [3]
    assert len(ring.of_type("core")) == 2


def test_jsonl_sink_round_trip(tmp_path):
    path = tmp_path / "sub" / "trace.jsonl"
    sink = JsonlSink(path)
    events = [
        {"t": 0, "ev": "request.enqueue", "req": 0, "thread": 1},
        {"t": 5, "ev": "request.complete", "req": 0, "latency": 5},
    ]
    for event in events:
        sink.emit(event)
    sink.close()
    assert read_jsonl(path) == events
    # Compact separators, one object per line.
    text = path.read_text()
    assert text == (
        '{"t":0,"ev":"request.enqueue","req":0,"thread":1}\n'
        '{"t":5,"ev":"request.complete","req":0,"latency":5}\n'
    )


def test_jsonl_sink_lazy_open_leaves_nothing_for_empty_runs(tmp_path):
    path = tmp_path / "empty.jsonl"
    sink = JsonlSink(path)
    sink.close()
    assert not path.exists()


# ------------------------------------------------------- latency histogram


def test_latency_histogram_quantiles_and_max():
    hist = LatencyHistogram()
    for value in [1, 2, 3, 100, 200, 300, 400, 500, 1000, 5000]:
        hist.record(value)
    assert hist.count == 10
    assert hist.max == 5000
    assert hist.total == sum([1, 2, 3, 100, 200, 300, 400, 500, 1000, 5000])
    # p50 falls in the bucket holding 100..255 → upper edge 255.
    assert hist.percentile(0.50) == 255
    # The top quantiles are clamped to the exact maximum.
    assert hist.percentile(1.0) == 5000
    summary = hist.summary()
    assert summary["count"] == 10
    assert summary["p95"] <= summary["p99"] <= summary["max"] == 5000


def test_latency_histogram_empty_and_zero():
    hist = LatencyHistogram()
    assert hist.percentile(0.5) == 0
    assert hist.mean == 0.0
    hist.record(0)
    assert hist.percentile(0.99) == 0
    assert hist.max == 0
    with pytest.raises(ValueError):
        hist.percentile(0.0)


def test_latency_histogram_quantile_upper_bound_property():
    # The reported quantile never underestimates the true quantile and
    # overestimates by less than 2x (power-of-two buckets).
    values = [3, 7, 12, 64, 65, 120, 999, 1024, 4097]
    hist = LatencyHistogram()
    for v in values:
        hist.record(v)
    for p in (0.5, 0.9, 0.95, 0.99):
        exact = sorted(values)[min(len(values) - 1, int(p * len(values)))]
        reported = hist.percentile(p)
        assert reported >= exact * 0.5
        assert reported <= hist.max


# ---------------------------------------------------------- periodic task


def test_schedule_every_fires_and_cancels():
    queue = EventQueue()
    ticks = []
    task = queue.schedule_every(10, lambda: ticks.append(queue.now))
    stop = []
    queue.schedule(35, lambda: stop.append(task.cancel()) and None)
    # Drive manually: run until the heap drains (cancel makes that happen).
    while queue.step():
        pass
    assert ticks == [10, 20, 30]
    assert task.fired == 3
    assert task.cancelled


def test_schedule_every_rejects_bad_interval():
    with pytest.raises(ValueError):
        EventQueue().schedule_every(0, lambda: None)


# --------------------------------------------------------------- config


def test_trace_config_from_env_roundtrip():
    assert TraceConfig.from_env({}) is None
    cfg = TraceConfig.from_env(
        {
            "REPRO_TRACE": "/tmp/tr",
            "REPRO_TRACE_EVENTS": "batch, sched",
            "REPRO_SAMPLE_INTERVAL": "500",
            "REPRO_TRACE_PERFETTO": "1",
        }
    )
    assert cfg == TraceConfig(
        dir="/tmp/tr", events=("batch", "sched"), sample_interval=500, perfetto=True
    )
    assert cfg.active and cfg.wants_events
    sampler_only = TraceConfig.from_env({"REPRO_SAMPLE_INTERVAL": "100"})
    assert sampler_only.active and not sampler_only.wants_events
    assert not TraceConfig().active


def test_trace_config_validates_interval():
    with pytest.raises(ValueError):
        TraceConfig(sample_interval=0)


# ------------------------------------------------- end-to-end traced runs


def _traced_system(ring, events=None, sample_interval=None, scheduler=None):
    config = baseline_system(len(WORKLOAD))
    runner = ExperimentRunner(
        config, instructions=INSTRUCTIONS, seed=0, cache_dir=None
    )
    traces = [runner.trace_for(b) for b in WORKLOAD]
    tracer = Tracer([ring], events=events)
    telemetry = (
        Telemetry(sample_interval, probe=tracer.probe("sample"))
        if sample_interval
        else None
    )
    scheduler = scheduler or make_scheduler("PAR-BS", len(WORKLOAD))
    system = System(
        config, scheduler, traces, tracer=tracer, telemetry=telemetry
    )
    return system, scheduler, telemetry


def test_parbs_batch_events_match_live_batcher_state():
    """Acceptance: every ``batch.formed`` event's per-thread marked counts
    and ranking equal the batcher/scheduler state at formation time."""
    ring = RingBufferSink()
    system, scheduler, _ = _traced_system(ring)
    batcher = scheduler.batcher

    live = []
    original = batcher.on_new_batch

    def recording_hook(marked, now):
        original(marked, now)
        if marked:
            per_thread = {}
            for request in marked:
                per_thread[request.thread_id] = per_thread.get(request.thread_id, 0) + 1
            live.append(
                {
                    "index": batcher.batch_index,
                    "marked": len(marked),
                    "per_thread": per_thread,
                    "ranks": dict(scheduler._ranks),
                }
            )

    batcher.on_new_batch = recording_hook
    system.run()

    formed = ring.of_type("batch.formed")
    assert len(formed) == batcher.batches_formed == len(live)
    assert sum(e["marked"] for e in formed) == batcher.marked_cum
    for event, expected in zip(formed, live):
        assert event["index"] == expected["index"]
        assert event["marked"] == expected["marked"]
        assert event["per_thread"] == dict(sorted(expected["per_thread"].items()))
        assert event["ranks"] == dict(sorted(expected["ranks"].items()))
        assert sum(event["per_thread"].values()) == event["marked"]
        # Marking-Cap: at most cap marks per thread per bank; baseline has
        # cap 5 and 8 banks.
        cap = batcher.marking_cap * system.config.dram.num_banks
        assert all(n <= cap for n in event["per_thread"].values())

    completed = ring.of_type("batch.completed")
    assert completed, "batches completed during the run"
    for event in completed:
        assert event["duration"] >= 0


def test_parbs_traced_run_emits_all_categories():
    ring = RingBufferSink()
    system, scheduler, telemetry = _traced_system(ring, sample_interval=1000)
    system.run()

    kinds = {e["ev"] for e in ring}
    assert {
        "request.enqueue",
        "request.issue",
        "request.complete",
        "dram.cmd",
        "batch.formed",
        "batch.completed",
        "sched.epoch",
        "sched.rqindex_rebuild",
        "core.stall",
        "core.unstall",
        "sample.tick",
    } <= kinds

    # Epoch events mirror the scheduler's epoch counter one-for-one.
    assert len(ring.of_type("sched.epoch")) == scheduler.index_epoch

    # Request lifecycle: completes pair with enqueues via run-relative ids.
    enqueued = {e["req"] for e in ring.of_type("request.enqueue")}
    issued = [e for e in ring.of_type("request.issue")]
    completed = [e for e in ring.of_type("request.complete")]
    assert {e["req"] for e in issued} <= enqueued
    assert {e["req"] for e in completed} <= enqueued
    assert min(enqueued) == 0  # run-relative, not process-global

    controller = system.controller
    assert len(enqueued) == controller.total_reads + controller.total_writes

    # Issue events carry the row result; DRAM commands carry the hit flag.
    assert {e["result"] for e in issued} <= {"hit", "closed", "conflict"}
    cas = [e for e in ring.of_type("dram.cmd") if e["cmd"] in ("RD", "WR")]
    assert len(cas) == len(issued)
    assert sum(e["row_hit"] for e in cas) == sum(
        s.row_hits for s in controller.thread_stats.values()
    )

    # Stall/unstall edges alternate per thread.
    for thread_id in range(len(WORKLOAD)):
        edges = [
            e["ev"]
            for e in ring.of_type("core")
            if e["thread"] == thread_id
        ]
        for first, second in zip(edges, edges[1:]):
            assert first != second, "stall edges must alternate"

    # The telemetry recorder sampled and collected latencies.
    assert telemetry is not None
    assert telemetry.samples
    total_completes = len(completed)
    assert sum(h.count for h in telemetry.histograms.values()) == total_completes
    summary = telemetry.summary()
    assert summary.bus["transfers"] > 0
    assert summary.latency  # per-thread digests present
    for digest in summary.latency.values():
        assert digest["p50"] <= digest["p95"] <= digest["p99"] <= digest["max"]


def test_tracing_does_not_change_the_simulation():
    """Probes observe; they must never perturb timing or statistics."""

    def run(traced):
        config = baseline_system(len(WORKLOAD))
        runner = ExperimentRunner(
            config, instructions=INSTRUCTIONS, seed=0, cache_dir=None
        )
        traces = [runner.trace_for(b) for b in WORKLOAD]
        tracer = Tracer([RingBufferSink()]) if traced else None
        telemetry = Telemetry(500) if traced else None
        system = System(
            config,
            make_scheduler("PAR-BS", len(WORKLOAD)),
            traces,
            tracer=tracer,
            telemetry=telemetry,
        )
        system.run()
        state = {
            "cycles": system.queue.now,
            "events": system.events_processed,
        }
        for thread_id, s in sorted(system.controller.thread_stats.items()):
            state[thread_id] = (
                s.reads, s.writes, s.row_hits, s.row_conflicts,
                s.latency_sum, s.latency_max, s.blp_integral, s.busy_time,
            )
        for core in system.cores:
            state[f"core{core.thread_id}"] = (
                core.finish_time, core.stall_cycles, core.loads_issued,
                core.stores_issued, core.instructions_retired,
            )
        return state

    untraced = run(traced=False)
    traced = run(traced=True)
    # The sampler adds its own events to the queue; everything else —
    # timing and every statistic — must be identical.
    untraced.pop("events")
    traced.pop("events")
    assert traced == untraced


def test_write_drain_flip_events():
    """Drive a bare controller across the drain watermarks and check the
    ``dram.drain`` edge events (exactly one per mode flip, with the
    occupancy that triggered it)."""
    from repro.config import DramConfig
    from repro.dram.controller import MemoryController
    from repro.dram.request import MemoryRequest, RequestType
    from repro.schedulers.frfcfs import FrFcfsScheduler

    ring = RingBufferSink()
    tracer = Tracer([ring], events=("dram",))
    queue = EventQueue()
    config = DramConfig(write_drain_high=3, write_drain_low=1)
    controller = MemoryController(
        queue, config, FrFcfsScheduler(), 1, tracer=tracer
    )
    for i in range(6):
        controller.enqueue(
            MemoryRequest(
                thread_id=0, address=0, channel=0, bank=0, row=i,
                type=RequestType.WRITE,
            )
        )
    assert controller.draining_writes  # 6 > high watermark
    queue.run()
    assert controller.write_occupancy == 0
    assert not controller.draining_writes
    flips = ring.of_type("dram.drain")
    states = [e["on"] for e in flips]
    # One on-flip when occupancy crossed high, one off-flip at low; the
    # edge guards must not re-emit while already in the mode.
    assert states == [1, 0]
    assert flips[0]["writes"] == 4  # first enqueue above high=3
    assert flips[1]["writes"] == config.write_drain_low


def test_category_filtering_end_to_end():
    ring = RingBufferSink()
    system, _, _ = _traced_system(ring, events=("batch",))
    system.run()
    assert ring.events, "batch events recorded"
    assert {e["ev"].split(".")[0] for e in ring} == {"batch"}


# ------------------------------------------------------------ perfetto


def test_chrome_trace_structure():
    ring = RingBufferSink()
    system, _, _ = _traced_system(ring, sample_interval=2000)
    system.run()
    doc = chrome_trace(ring)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "X", "i", "C"} <= phases
    # Process metadata names all four track groups.
    names = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {"cores", "DRAM banks", "scheduler", "counters"}
    # Batch slices exist and carry the ranking args.
    batch_slices = [
        e for e in events if e["ph"] == "X" and e["name"].startswith("batch ")
    ]
    assert batch_slices
    assert all("per_thread" in e["args"] for e in batch_slices)
    # Slices have non-negative durations and µs timestamps.
    for e in events:
        if e["ph"] == "X":
            assert e["dur"] >= 0
    # The whole document serializes to JSON (Perfetto-loadable).
    json.dumps(doc)


def test_write_chrome_trace_survives_jsonl_round_trip(tmp_path):
    """The exporter must accept events re-read from JSONL (string keys)."""
    ring = RingBufferSink()
    system, _, _ = _traced_system(ring, sample_interval=2000)
    system.run()
    jsonl = tmp_path / "run.jsonl"
    sink = JsonlSink(jsonl)
    for event in ring:
        sink.emit(event)
    sink.close()
    out = write_chrome_trace(tmp_path / "run.perfetto.json", read_jsonl(jsonl))
    with out.open() as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]
    direct = chrome_trace(ring)
    assert len(doc["traceEvents"]) == len(direct["traceEvents"])


def test_all_categories_constant_matches_tracer():
    # Every probe the simulator requests must be a declared category.
    tracer = Tracer([RingBufferSink()])
    for category in CATEGORIES:
        assert tracer.probe(category) is not None
