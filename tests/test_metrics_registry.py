"""Tests for the probe-or-None metrics registry and its exporters.

The contracts under test: exactly ``None`` when disabled, snapshot
round-trips, order-independent merges (counters sum, gauges max,
histograms bucket-wise), pickling across process boundaries, and the
JSON/Prometheus export shapes.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.envknobs import EnvKnobError
from repro.obs.export import to_json, to_prometheus, write_snapshot
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    collect_process_metrics,
    job_metrics,
    merge_job_metrics,
    metrics_enabled,
    metrics_from_env,
    reset_metrics,
)


# -- enablement ---------------------------------------------------------------
def test_metrics_default_on_and_knob_off():
    assert metrics_enabled({}) is True
    assert metrics_enabled({"REPRO_METRICS": "1"}) is True
    assert metrics_enabled({"REPRO_METRICS": "0"}) is False
    assert metrics_enabled({"REPRO_METRICS": "off"}) is False
    assert metrics_from_env({"REPRO_METRICS": "0"}) is None
    assert isinstance(metrics_from_env({}), MetricsRegistry)
    with pytest.raises(EnvKnobError):
        metrics_enabled({"REPRO_METRICS": "maybe"})


def test_registry_is_process_global():
    assert metrics_from_env({}) is metrics_from_env({})


# -- metric semantics ---------------------------------------------------------
def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(2.5)
    registry.gauge("g").max(1.0)  # lower: no effect
    registry.gauge("g").max(9.0)
    for v in (0, 0.5, 1.0, 2.0, 3.0, 1024.0):
        registry.histogram("h").observe(v)
    snap = registry.snapshot()
    assert snap["counters"] == {"c": 5}
    assert snap["gauges"] == {"g": 9.0}
    h = snap["histograms"]["h"]
    assert h["count"] == 6
    assert h["sum"] == pytest.approx(1030.5)
    assert h["max"] == 1024.0
    # 0, 0.5, 1.0 -> bucket 0 (<= 2**0); 2.0 -> 1; 3.0 -> 2; 1024 -> 10.
    assert h["buckets"] == {"0": 3, "1": 1, "2": 1, "10": 1}


def test_histogram_rejects_negative():
    with pytest.raises(ValueError):
        Histogram().observe(-1.0)


def test_empty_registry_is_falsy():
    registry = MetricsRegistry()
    assert not registry
    registry.counter("x")
    assert registry


# -- merge --------------------------------------------------------------------
def _worker_registry(jobs: int, wall: float) -> MetricsRegistry:
    registry = MetricsRegistry()
    for i in range(jobs):
        registry.counter("jobs").inc()
        registry.histogram("wall").observe(wall * (i + 1))
    registry.gauge("high_water").max(jobs)
    return registry


def test_merge_is_order_independent():
    parts = [_worker_registry(2, 0.5), _worker_registry(3, 2.0), _worker_registry(1, 7.0)]
    forward = MetricsRegistry()
    for part in parts:
        forward.merge(part)
    backward = MetricsRegistry()
    for part in reversed(parts):
        backward.merge(part)
    assert forward.snapshot() == backward.snapshot()
    assert forward.snapshot()["counters"] == {"jobs": 6}
    assert forward.snapshot()["gauges"] == {"high_water": 3}


def test_merge_accepts_snapshot_dicts_and_round_trips():
    source = _worker_registry(4, 1.5)
    snap = source.snapshot()
    rebuilt = MetricsRegistry.from_snapshot(snap)
    assert rebuilt.snapshot() == snap
    # Merging a snapshot (the serialized form) equals merging the registry.
    a = MetricsRegistry().merge(snap)
    b = MetricsRegistry().merge(source)
    assert a.snapshot() == b.snapshot()


def test_registry_pickles_across_process_boundary_shape():
    source = _worker_registry(3, 0.25)
    clone = pickle.loads(pickle.dumps(source))
    assert clone.snapshot() == source.snapshot()


# -- job metrics --------------------------------------------------------------
def test_job_metrics_and_merge(monkeypatch):
    from repro.config import baseline_system
    from repro.sim.runner import ExperimentRunner

    runner = ExperimentRunner(
        baseline_system(4), instructions=8_000, seed=0, cache_dir=None
    )
    result = runner.run_workload(
        ["libquantum", "mcf", "GemsFDTD", "xalancbmk"], "FR-FCFS"
    )
    blob = job_metrics(result)
    assert set(blob) == {
        "sim.cycles",
        "sim.events_elided",
        "sim.events_logical",
        "sim.events_processed",
        "sim.min_rebuilds",
        "sim.row_conflicts",
        "sim.row_hits",
    }
    assert blob["sim.events_logical"] == (
        blob["sim.events_processed"] + blob["sim.events_elided"]
    )
    doubled = merge_job_metrics([blob, blob])
    assert doubled == {name: 2 * value for name, value in blob.items()}


def test_collect_process_metrics_namespaces():
    reset_metrics()
    registry = metrics_from_env({})
    registry.counter("campaign.jobs_ran").inc(3)
    snap = collect_process_metrics().snapshot()
    assert snap["counters"]["campaign.jobs_ran"] == 3
    # Pull-style collection folds the operational layers' native dicts in.
    for name in (
        "cache.hits",
        "cache.misses",
        "cache.pruned",
        "pool.jobs_executed",
        "pool.respawns",
        "pool.serial_fallbacks",
        "pool.timeouts",
        "store.commit_retries",
    ):
        assert name in snap["counters"]
    reset_metrics()


# -- exporters ----------------------------------------------------------------
def test_to_json_is_stable_and_parseable():
    snap = _worker_registry(2, 1.0).snapshot()
    text = to_json(snap, indent=2)
    assert text.endswith("\n")
    assert json.loads(text) == snap


def test_to_prometheus_shape():
    registry = MetricsRegistry()
    registry.counter("pool.respawns").inc(2)
    registry.gauge("queue.depth").set(7)
    registry.histogram("wall.job_s").observe(3.0)
    text = to_prometheus(registry.snapshot())
    assert "# TYPE repro_pool_respawns_total counter" in text
    assert "repro_pool_respawns_total 2" in text
    assert "repro_queue_depth 7" in text
    # Histograms render cumulative buckets with a +Inf terminator.
    assert 'repro_wall_job_s_bucket{le="+Inf"} 1' in text
    assert "repro_wall_job_s_count 1" in text


def test_write_snapshot_picks_format_by_suffix(tmp_path):
    snap = _worker_registry(1, 1.0).snapshot()
    json_path = tmp_path / "deep" / "m.json"
    prom_path = tmp_path / "m.prom"
    write_snapshot(json_path, snap)
    write_snapshot(prom_path, snap)
    assert json.loads(json_path.read_text()) == snap
    assert prom_path.read_text().startswith("# TYPE")
