"""Tests for the SQLite result store: round-trips, migrations, sharing."""

import sqlite3

import pytest

from repro.campaign.serde import result_from_json, result_to_json
from repro.campaign.spec import CampaignSpec, Variant
from repro.campaign.store import SCHEMA_VERSION, ResultStore, default_db_path
from repro.config import baseline_system
from repro.obs.config import TraceConfig
from repro.sim.runner import ExperimentRunner
from repro.workloads.mixes import CASE_STUDY_1


@pytest.fixture(scope="module")
def sample_result():
    runner = ExperimentRunner(baseline_system(4), instructions=20_000)
    return runner.run_workload(list(CASE_STUDY_1), "FCFS")


@pytest.fixture(scope="module")
def telemetry_result():
    runner = ExperimentRunner(
        baseline_system(4),
        instructions=20_000,
        trace=TraceConfig(sample_interval=1_000),
    )
    return runner.run_workload(list(CASE_STUDY_1), "FCFS")


def _spec(**overrides) -> CampaignSpec:
    base = dict(
        name="t",
        variants=(Variant("FCFS", "FCFS"), Variant("PAR-BS", "PAR-BS")),
        mix_count=2,
        instructions=20_000,
    )
    base.update(overrides)
    return CampaignSpec(**base)


# -- serde --------------------------------------------------------------------
def test_result_json_round_trip_is_exact(sample_result):
    clone = result_from_json(result_to_json(sample_result))
    assert clone == sample_result  # dataclass equality, floats bit-exact


def test_result_round_trip_preserves_telemetry(telemetry_result):
    assert telemetry_result.telemetry is not None
    clone = result_from_json(result_to_json(telemetry_result))
    assert clone == telemetry_result
    # JSON stringifies int dict keys; the revival must restore them.
    assert all(
        isinstance(k, int) for k in clone.telemetry.latency
    )


# -- store basics -------------------------------------------------------------
def test_register_and_statuses(tmp_path):
    spec = _spec()
    grid = spec.expand()
    with ResultStore(tmp_path / "db.sqlite") as store:
        assert store.register(spec, grid) == len(grid)
        # Idempotent: re-registering inserts nothing and touches nothing.
        assert store.register(spec, grid) == 0
        statuses = store.statuses(j.key for j in grid)
        assert set(statuses.values()) == {"pending"}
        counts = store.counts(spec.fingerprint())
        assert counts["total"] == len(grid)
        assert counts["pending"] == len(grid)


def test_record_result_round_trip(tmp_path, sample_result):
    spec = _spec()
    grid = spec.expand()
    with ResultStore(tmp_path / "db.sqlite") as store:
        store.register(spec, grid)
        store.record_result(grid[0].key, sample_result, wall_time_s=1.25)
        assert store.result(grid[0].key) == sample_result
        assert store.result(grid[1].key) is None
        assert store.counts(spec.fingerprint())["done"] == 1
        row = store._conn.execute(
            "SELECT attempts, wall_time_s FROM jobs WHERE key = ?",
            (grid[0].key,),
        ).fetchone()
        assert row["attempts"] == 1
        assert row["wall_time_s"] == 1.25


def test_record_failure_then_success(tmp_path, sample_result):
    spec = _spec()
    grid = spec.expand()
    with ResultStore(tmp_path / "db.sqlite") as store:
        store.register(spec, grid)
        store.record_failure(grid[0].key, "RuntimeError: boom")
        assert store.failures(spec.fingerprint()) == {grid[0].key: "RuntimeError: boom"}
        assert store.counts(spec.fingerprint())["failed"] == 1
        # A later success clears the failure.
        store.record_result(grid[0].key, sample_result)
        assert store.failures(spec.fingerprint()) == {}
        assert store.statuses([grid[0].key]) == {grid[0].key: "done"}


def test_results_for_crosses_campaigns(tmp_path, sample_result):
    """A cell two campaigns share (same content hash) is stored once,
    under the first campaign, but visible to both through results_for."""
    spec_a = _spec(name="a")
    spec_b = _spec(name="b", variants=(Variant("FCFS", "FCFS"),))
    shared_keys = {j.key for j in spec_b.expand()}
    assert shared_keys <= {j.key for j in spec_a.expand()}
    with ResultStore(tmp_path / "db.sqlite") as store:
        store.register(spec_a, spec_a.expand())
        assert store.register(spec_b, spec_b.expand()) == 0  # all shared
        key = next(iter(shared_keys))
        store.record_result(key, sample_result)
        # Campaign-scoped query sees it only under a; key-scoped sees it.
        assert key not in store.results(spec_b.fingerprint())
        assert store.results_for([key])[key] == sample_result
        assert store.statuses([key]) == {key: "done"}


def test_store_persists_across_connections(tmp_path, sample_result):
    spec = _spec()
    grid = spec.expand()
    path = tmp_path / "db.sqlite"
    with ResultStore(path) as store:
        store.register(spec, grid)
        store.record_result(grid[0].key, sample_result)
    with ResultStore(path) as store:
        assert store.result(grid[0].key) == sample_result
        assert store.counts(spec.fingerprint())["done"] == 1


def test_campaigns_listing(tmp_path):
    spec = _spec()
    with ResultStore(tmp_path / "db.sqlite") as store:
        store.register(spec, spec.expand())
        rows = store.campaigns()
        assert len(rows) == 1
        assert rows[0]["name"] == "t"
        assert rows[0]["total"] == len(spec.expand())


# -- schema migrations --------------------------------------------------------
def _create_v1_db(path) -> None:
    """A database exactly as schema v1 code would have left it."""
    conn = sqlite3.connect(path)
    with conn:
        conn.execute("CREATE TABLE schema_version (version INTEGER NOT NULL)")
        conn.execute("INSERT INTO schema_version (version) VALUES (1)")
        conn.execute(
            """CREATE TABLE campaigns (
                fingerprint TEXT PRIMARY KEY,
                name        TEXT NOT NULL,
                spec_json   TEXT NOT NULL,
                instructions INTEGER NOT NULL
            )"""
        )
        conn.execute(
            """CREATE TABLE jobs (
                key         TEXT PRIMARY KEY,
                campaign    TEXT NOT NULL REFERENCES campaigns(fingerprint),
                num_cores   INTEGER NOT NULL,
                mix_index   INTEGER NOT NULL,
                variant     TEXT NOT NULL,
                scheduler   TEXT NOT NULL,
                workload_json TEXT NOT NULL,
                kwargs_json TEXT NOT NULL,
                seed        INTEGER NOT NULL,
                instructions INTEGER NOT NULL,
                status      TEXT NOT NULL DEFAULT 'pending'
                            CHECK (status IN ('pending', 'done', 'failed')),
                attempts    INTEGER NOT NULL DEFAULT 0,
                error       TEXT,
                result_json TEXT
            )"""
        )
        conn.execute("CREATE INDEX jobs_by_campaign ON jobs (campaign, status)")
        conn.execute(
            "INSERT INTO campaigns VALUES ('fp1', 'old', '{}', 20000)"
        )
        conn.execute(
            "INSERT INTO jobs (key, campaign, num_cores, mix_index, variant, "
            "scheduler, workload_json, kwargs_json, seed, instructions, status) "
            "VALUES ('k1', 'fp1', 4, 0, 'FCFS', 'FCFS', '[]', '{}', 0, 20000, 'done')"
        )
    conn.close()


def test_v1_database_migrates_to_current(tmp_path):
    path = tmp_path / "old.sqlite"
    _create_v1_db(path)
    with ResultStore(path) as store:
        assert store.schema_version() == SCHEMA_VERSION
        # Pre-migration rows survive, with NULL in the new column.
        row = store._conn.execute(
            "SELECT status, wall_time_s FROM jobs WHERE key = 'k1'"
        ).fetchone()
        assert row["status"] == "done"
        assert row["wall_time_s"] is None


def test_newer_schema_refused(tmp_path):
    path = tmp_path / "future.sqlite"
    conn = sqlite3.connect(path)
    with conn:
        conn.execute("CREATE TABLE schema_version (version INTEGER NOT NULL)")
        conn.execute(
            "INSERT INTO schema_version (version) VALUES (?)",
            (SCHEMA_VERSION + 1,),
        )
    conn.close()
    with pytest.raises(RuntimeError, match="newer than this code"):
        ResultStore(path)


def test_fresh_db_is_current_version(tmp_path):
    with ResultStore(tmp_path / "new.sqlite") as store:
        assert store.schema_version() == SCHEMA_VERSION


# -- default path -------------------------------------------------------------
def test_default_db_path_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CAMPAIGN_DB", str(tmp_path / "x.sqlite"))
    assert default_db_path() == str(tmp_path / "x.sqlite")


def test_default_db_path_next_to_cache(monkeypatch):
    monkeypatch.delenv("REPRO_CAMPAIGN_DB", raising=False)
    assert default_db_path().endswith("campaigns.sqlite")


def test_default_db_path_memory_when_cache_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_CAMPAIGN_DB", raising=False)
    monkeypatch.setenv("REPRO_CACHE", "0")
    assert default_db_path() == ":memory:"
